//! Resilience tests for the solve supervisor: sabotaged incremental
//! engines must trip their circuit breakers and self-heal onto the
//! from-scratch engines without changing the result; budgets must
//! degrade gracefully to a feasible retiming; checkpoint/resume must
//! reach the same answer as an uninterrupted run.

use std::io;
use std::sync::{Arc, Mutex};

use minobswin::algorithm::SolverConfig;
use minobswin::closure_inc::ClosureEngine;
use minobswin::supervisor::{Sabotage, TripCause};
use minobswin::verify::check_feasible;
use minobswin::{
    Checkpoint, CheckpointSink, Problem, SolveBudget, SolveError, SolveOutcome, SolverSession,
    StopReason, Supervision,
};
use netlist::{samples, DelayModel};
use proptest::prelude::*;
use retime::{ElwParams, RetimeGraph};

fn instance(phi: i64) -> (RetimeGraph, Problem) {
    let c = samples::pipeline(9, 3);
    let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
    let counts = vec![1i64; g.num_vertices()];
    let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(phi), 1);
    (g, p)
}

/// The incremental engines enabled, with the dirty cap lifted so they
/// actually run on the small test instance.
fn incremental_config() -> SolverConfig {
    SolverConfig::default().with_max_dirty_percent(100)
}

fn all_fresh_config() -> SolverConfig {
    SolverConfig::default()
        .with_incremental(false)
        .with_closure_engine(ClosureEngine::Fresh)
}

/// A checkpoint sink whose contents outlive the solver run.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<Checkpoint>>>);

impl SharedSink {
    fn last(&self) -> Option<Checkpoint> {
        self.0.lock().unwrap().last().cloned()
    }

    fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }
}

impl CheckpointSink for SharedSink {
    fn save(&mut self, checkpoint: &Checkpoint) -> io::Result<()> {
        self.0.lock().unwrap().push(checkpoint.clone());
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Panic isolation and self-healing fallback
// ---------------------------------------------------------------------

#[test]
fn closure_panic_trips_breaker_and_matches_all_fresh() {
    let (g, p) = instance(10);
    let baseline = SolverSession::new(&g, &p)
        .config(all_fresh_config())
        .run()
        .unwrap();
    let outcome = SolverSession::new(&g, &p)
        .config(incremental_config().with_sabotage(Sabotage::PanicClosure { at: 1 }))
        .run_supervised(Supervision::new().audit_every(1))
        .unwrap();
    let sol = outcome.into_solution();
    let trip = sol
        .stats
        .degradation
        .closure_trip
        .expect("forced panic must trip the closure breaker");
    assert_eq!(trip.cause, TripCause::Panic);
    assert!(sol.stats.perf.breaker_trips >= 1);
    assert_eq!(sol.retiming, baseline.retiming);
    assert_eq!(sol.objective_gain, baseline.objective_gain);
    assert!(check_feasible(&g, &p, &sol.retiming).is_ok());
}

#[test]
fn closure_divergence_is_caught_by_audit_and_matches_all_fresh() {
    let (g, p) = instance(10);
    let baseline = SolverSession::new(&g, &p)
        .config(all_fresh_config())
        .run()
        .unwrap();
    let outcome = SolverSession::new(&g, &p)
        .config(incremental_config().with_sabotage(Sabotage::WrongClosure { at: 1 }))
        .run_supervised(Supervision::new().audit_every(1))
        .unwrap();
    let sol = outcome.into_solution();
    let trip = sol
        .stats
        .degradation
        .closure_trip
        .expect("a corrupted closure must be caught by the every-call audit");
    assert_eq!(trip.cause, TripCause::Divergence);
    assert_eq!(sol.retiming, baseline.retiming);
    assert_eq!(sol.objective_gain, baseline.objective_gain);
}

#[test]
fn checker_panic_trips_breaker_and_matches_all_fresh() {
    let (g, p) = instance(10);
    let baseline = SolverSession::new(&g, &p)
        .config(all_fresh_config())
        .run()
        .unwrap();
    let outcome = SolverSession::new(&g, &p)
        .config(incremental_config().with_sabotage(Sabotage::PanicChecker { at: 1 }))
        .run_supervised(Supervision::new().audit_every(1))
        .unwrap();
    let sol = outcome.into_solution();
    let trip = sol
        .stats
        .degradation
        .checker_trip
        .expect("forced panic must trip the checker breaker");
    assert_eq!(trip.cause, TripCause::Panic);
    assert_eq!(sol.retiming, baseline.retiming);
    assert_eq!(sol.objective_gain, baseline.objective_gain);
}

proptest! {
    /// Whatever engine is poisoned and whenever the poison fires, the
    /// every-call audit guarantees the final answer is bit-identical
    /// to an all-from-scratch run, and any trip is recorded.
    #[test]
    fn sabotage_never_changes_the_answer(
        kind in prop::sample::select(vec![0usize, 1, 2, 3]),
        at in 1u64..6,
    ) {
        let sabotage = match kind {
            0 => Sabotage::PanicClosure { at },
            1 => Sabotage::WrongClosure { at },
            2 => Sabotage::PanicChecker { at },
            _ => Sabotage::WrongChecker { at },
        };
        let (g, p) = instance(10);
        let baseline = SolverSession::new(&g, &p)
            .config(all_fresh_config())
            .run()
            .unwrap();
        let outcome = SolverSession::new(&g, &p)
            .config(incremental_config().with_sabotage(sabotage))
            .run_supervised(Supervision::new().audit_every(1))
            .unwrap();
        let sol = outcome.into_solution();
        prop_assert_eq!(&sol.retiming, &baseline.retiming);
        prop_assert_eq!(sol.objective_gain, baseline.objective_gain);
        let report = sol.stats.degradation;
        // A recorded trip must name the engine the sabotage targeted.
        if kind < 2 {
            prop_assert!(report.checker_trip.is_none());
        } else {
            prop_assert!(report.closure_trip.is_none());
        }
        // The per-engine counters agree with the report.
        let trips = u64::from(report.closure_trip.is_some())
            + u64::from(report.checker_trip.is_some());
        prop_assert_eq!(sol.stats.perf.breaker_trips, trips);
    }
}

// ---------------------------------------------------------------------
// Budgets and graceful degradation
// ---------------------------------------------------------------------

#[test]
fn zero_iteration_budget_degrades_to_feasible_start() {
    let (g, p) = instance(20);
    let outcome = SolverSession::new(&g, &p)
        .run_supervised(Supervision::new().budget(SolveBudget::new().with_max_iterations(Some(0))))
        .unwrap();
    match &outcome {
        SolveOutcome::Degraded(d) => {
            assert_eq!(d.reason, StopReason::Iterations);
            assert!(check_feasible(&g, &p, &d.solution.retiming).is_ok());
            assert_eq!(
                d.solution.stats.degradation.budget_stop,
                Some(StopReason::Iterations)
            );
        }
        other => panic!("expected a degraded outcome, got {other:?}"),
    }
    assert!(outcome.is_degraded());
}

#[test]
fn zero_wall_time_budget_degrades() {
    let (g, p) = instance(20);
    let outcome = SolverSession::new(&g, &p)
        .run_supervised(
            Supervision::new()
                .budget(SolveBudget::new().with_wall_time(Some(std::time::Duration::ZERO))),
        )
        .unwrap();
    assert_eq!(outcome.stop_reason(), Some(StopReason::WallTime));
    let sol = outcome.into_solution();
    assert!(check_feasible(&g, &p, &sol.retiming).is_ok());
}

#[test]
fn tiny_memory_budget_degrades() {
    let (g, p) = instance(20);
    let outcome = SolverSession::new(&g, &p)
        .run_supervised(
            Supervision::new().budget(SolveBudget::new().with_max_memory_estimate(Some(1))),
        )
        .unwrap();
    assert_eq!(outcome.stop_reason(), Some(StopReason::Memory));
}

#[test]
fn cancelled_token_stops_the_solve() {
    let (g, p) = instance(20);
    let budget = SolveBudget::new();
    budget.token().cancel();
    let outcome = SolverSession::new(&g, &p)
        .run_supervised(Supervision::new().budget(budget))
        .unwrap();
    assert_eq!(outcome.stop_reason(), Some(StopReason::Cancelled));
}

#[test]
fn unlimited_budget_is_complete_and_identical_to_run() {
    let (g, p) = instance(20);
    let plain = SolverSession::new(&g, &p).run().unwrap();
    let outcome = SolverSession::new(&g, &p)
        .run_supervised(Supervision::default())
        .unwrap();
    assert!(!outcome.is_degraded());
    let sol = outcome.into_solution();
    assert_eq!(sol.retiming, plain.retiming);
    assert_eq!(sol.objective_gain, plain.objective_gain);
    assert!(sol.stats.degradation.is_clean());
}

// ---------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------

#[test]
fn interrupted_solve_resumes_to_the_same_answer() {
    let (g, p) = instance(10);
    let baseline = SolverSession::new(&g, &p).run().unwrap();

    // Truncate the solve after 2 iterations, checkpointing every one.
    let sink = SharedSink::default();
    let outcome = SolverSession::new(&g, &p)
        .run_supervised(
            Supervision::new()
                .budget(SolveBudget::new().with_max_iterations(Some(2)))
                .checkpoint_to(sink.clone())
                .checkpoint_every(1),
        )
        .unwrap();
    assert!(outcome.is_degraded());
    assert!(sink.len() > 0, "the truncated run must have checkpointed");
    let checkpoint = sink.last().unwrap();
    assert!(!checkpoint.complete);

    // Resume without a budget: same final answer as never stopping.
    let resumed = SolverSession::new(&g, &p)
        .run_supervised(Supervision::new().resume_from(checkpoint))
        .unwrap();
    assert!(!resumed.is_degraded());
    let sol = resumed.into_solution();
    assert_eq!(sol.retiming, baseline.retiming);
    assert_eq!(sol.objective_gain, baseline.objective_gain);
}

#[test]
fn completed_solve_writes_a_terminal_checkpoint_that_resumes_instantly() {
    let (g, p) = instance(10);
    let sink = SharedSink::default();
    let first = SolverSession::new(&g, &p)
        .run_supervised(
            Supervision::new()
                .checkpoint_to(sink.clone())
                .checkpoint_every(1),
        )
        .unwrap()
        .into_solution();
    let last = sink.last().expect("a completed run leaves a checkpoint");
    assert!(last.complete);

    let resumed = SolverSession::new(&g, &p)
        .run_supervised(Supervision::new().resume_from(last))
        .unwrap();
    let sol = resumed.into_solution();
    assert_eq!(sol.retiming, first.retiming);
    assert_eq!(sol.objective_gain, first.objective_gain);
    assert_eq!(sol.stats.iterations, first.stats.iterations);
}

#[test]
fn checkpoint_from_another_instance_is_rejected() {
    let (g10, p10) = instance(10);
    let (g20, p20) = instance(20);
    let sink = SharedSink::default();
    SolverSession::new(&g10, &p10)
        .run_supervised(
            Supervision::new()
                .checkpoint_to(sink.clone())
                .checkpoint_every(1),
        )
        .unwrap();
    let foreign = sink.last().unwrap();
    let err = SolverSession::new(&g20, &p20)
        .run_supervised(Supervision::new().resume_from(foreign))
        .unwrap_err();
    match err {
        SolveError::Checkpoint(why) => assert!(why.contains("instance"), "{why}"),
        other => panic!("expected a checkpoint error, got {other}"),
    }
}

#[test]
fn checkpoint_serialization_round_trips_through_text() {
    let (g, p) = instance(10);
    let sink = SharedSink::default();
    SolverSession::new(&g, &p)
        .run_supervised(
            Supervision::new()
                .checkpoint_to(sink.clone())
                .checkpoint_every(1),
        )
        .unwrap();
    let cp = sink.last().unwrap();
    let reparsed = Checkpoint::parse(&cp.serialize()).unwrap();
    assert_eq!(reparsed, cp);
}
