//! End-to-end test of the `retimer` command line tool: write a
//! netlist, run the binary, check the outputs it produces.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_retimer")
}

fn workdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("retimer_cli_{}_{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn retimer_round_trips_a_bench_file() {
    let dir = workdir("bench");
    let input = dir.join("demo.bench");
    let output = dir.join("demo_retimed.bench");
    let report = dir.join("report.csv");

    let circuit = netlist::generator::GeneratorConfig::new("cli_demo", 31)
        .gates(120)
        .registers(24)
        .build();
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    let status = Command::new(bin())
        .args([
            input.to_str().unwrap(),
            "--out",
            output.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
            "--vectors",
            "256",
            "--frames",
            "6",
        ])
        .output()
        .expect("run retimer");
    assert!(
        status.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&status.stdout),
        String::from_utf8_lossy(&status.stderr)
    );
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(stdout.contains("minobswin"), "{stdout}");
    assert!(stdout.contains("SER_ref / SER_new"), "{stdout}");

    // The retimed netlist parses and has registers.
    let rebuilt = netlist::bench_format::read_file(&output).expect("re-read output");
    assert!(rebuilt.num_registers() > 0);

    // The CSV report has a header and one row.
    let csv = std::fs::read_to_string(&report).expect("read report");
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 2, "{csv}");
    assert!(lines[0].starts_with("circuit,"));
    assert!(lines[1].starts_with("demo"), "{csv}"); // circuit named from the file stem

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retimer_writes_verilog_output() {
    let dir = workdir("verilog");
    let input = dir.join("demo2.bench");
    let output = dir.join("demo2.v");
    let circuit = netlist::samples::pipeline(9, 3);
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    let status = Command::new(bin())
        .args([
            input.to_str().unwrap(),
            "--method",
            "minobswin",
            "--out",
            output.to_str().unwrap(),
            "--vectors",
            "256",
            "--frames",
            "6",
            "--no-equiv",
        ])
        .output()
        .expect("run retimer");
    assert!(status.status.success());
    let rebuilt = netlist::verilog::read_file(&output).expect("verilog parses back");
    assert!(rebuilt.num_registers() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retimer_fault_sim_scores_before_and_after() {
    let dir = workdir("faultsim");
    let input = dir.join("fs_demo.bench");
    let circuit = netlist::generator::GeneratorConfig::new("fs_demo", 17)
        .gates(80)
        .registers(12)
        .build();
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    let run = |args: &[&str]| {
        Command::new(bin())
            .arg("fault-sim")
            .arg(input.to_str().unwrap())
            .args(args)
            .args(["--vectors", "256", "--frames", "6", "--injections", "20000"])
            .output()
            .expect("run retimer fault-sim")
    };

    let out = run(&["--workers", "2", "--campaign-seed", "7"]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("== original =="), "{stdout}");
    assert!(stdout.contains("== retimed (minobswin) =="), "{stdout}");
    assert!(stdout.contains("cross-check"), "{stdout}");
    assert!(stdout.contains("empirical SER change"), "{stdout}");

    // Same seed and worker count ⇒ identical output (the campaign is
    // deterministic; the analytic side already is).
    let again = run(&["--workers", "2", "--campaign-seed", "7"]);
    assert_eq!(stdout, String::from_utf8_lossy(&again.stdout));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retimer_fault_sim_rejects_bad_method() {
    let status = Command::new(bin())
        .args(["fault-sim", "whatever.bench", "--method", "bogus"])
        .output()
        .expect("run retimer");
    assert!(!status.status.success());
}

#[test]
fn retimer_rejects_unknown_format() {
    let status = Command::new(bin())
        .arg("nonexistent.xyz")
        .output()
        .expect("run retimer");
    assert!(!status.status.success());
}

#[test]
fn retimer_exits_one_on_infeasible_instance() {
    // The stable-exit-code contract: 1 = infeasible instance. §V always
    // derives a bound the starting retiming satisfies, so the --r-min
    // override is the supported lever for driving the solver into
    // infeasibility on a perfectly valid netlist.
    let dir = workdir("infeasible");
    let input = dir.join("infeasible.bench");
    let circuit = netlist::samples::pipeline(9, 3);
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    let out = Command::new(bin())
        .args([
            input.to_str().unwrap(),
            "--vectors",
            "64",
            "--frames",
            "4",
            "--r-min",
            "1000000",
        ])
        .output()
        .expect("run retimer");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("infeasible"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retimer_exits_two_on_usage_error() {
    // 2 = usage error: an unknown flag.
    let out = Command::new(bin())
        .args(["input.bench", "--definitely-not-a-flag"])
        .output()
        .expect("run retimer");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));

    // 2 also covers a missing input argument entirely.
    let out = Command::new(bin()).output().expect("run retimer");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn retimer_exits_four_when_the_iteration_budget_expires() {
    // 4 = budget exceeded: a degraded-but-feasible retiming was still
    // emitted. One iteration is never enough to reach local optimality
    // on this instance, so the stop is deterministic.
    let dir = workdir("budget_iters");
    let input = dir.join("budget.bench");
    let output = dir.join("budget_out.bench");
    let circuit = netlist::generator::GeneratorConfig::new("budget", 53)
        .gates(200)
        .registers(30)
        .build();
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    let out = Command::new(bin())
        .args([
            "solve", // the explicit subcommand alias
            input.to_str().unwrap(),
            "--method",
            "minobswin",
            "--out",
            output.to_str().unwrap(),
            "--max-iters",
            "1",
            "--vectors",
            "64",
            "--frames",
            "4",
            "--no-equiv",
        ])
        .output()
        .expect("run retimer");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exceeded"), "{stderr}");
    // The degraded retiming is still a valid netlist.
    let rebuilt = netlist::bench_format::read_file(&output).expect("re-read degraded output");
    assert!(rebuilt.num_registers() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retimer_exits_four_when_the_time_budget_expires() {
    let dir = workdir("budget_time");
    let input = dir.join("budget_t.bench");
    let circuit = netlist::samples::pipeline(9, 3);
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    let out = Command::new(bin())
        .args([
            input.to_str().unwrap(),
            "--time-budget",
            "0",
            "--vectors",
            "64",
            "--frames",
            "4",
            "--no-equiv",
        ])
        .output()
        .expect("run retimer");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retimer_rejects_resume_without_checkpoint() {
    let out = Command::new(bin())
        .args(["input.bench", "--resume"])
        .output()
        .expect("run retimer");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--checkpoint"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn retimer_exits_two_on_missing_input_file() {
    // 2 = I/O error: a well-formed invocation pointing at a file that
    // does not exist.
    let out = Command::new(bin())
        .arg("/definitely/not/a/real/path.bench")
        .output()
        .expect("run retimer");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
