//! Kill-and-resume integration test for the `retimer` CLI: a solve
//! interrupted by SIGKILL must leave a valid checkpoint behind, and
//! `--resume` must carry it to the same final netlist an uninterrupted
//! run produces.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_retimer")
}

fn workdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("retimer_resume_{}_{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The shared argument tail: one method (one checkpoint file), small
/// simulation so the solve dominates, no equivalence check.
fn solve_args(input: &std::path::Path, out: &std::path::Path) -> Vec<String> {
    [
        input.to_str().unwrap(),
        "--method",
        "minobswin",
        "--out",
        out.to_str().unwrap(),
        "--vectors",
        "64",
        "--frames",
        "4",
        "--no-equiv",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn killed_solve_resumes_to_the_uninterrupted_result() {
    let dir = workdir("kill");
    let input = dir.join("resume_demo.bench");
    let circuit = netlist::generator::GeneratorConfig::new("resume_demo", 97)
        .gates(600)
        .registers(90)
        .build();
    netlist::bench_format::write_file(&circuit, &input).expect("write input");

    // Uninterrupted baseline.
    let base_out = dir.join("baseline.bench");
    let status = Command::new(bin())
        .args(solve_args(&input, &base_out))
        .output()
        .expect("run retimer");
    assert!(
        status.status.success(),
        "baseline failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&status.stdout),
        String::from_utf8_lossy(&status.stderr)
    );
    let baseline = std::fs::read_to_string(&base_out).expect("baseline output");

    // Checkpointed run, SIGKILLed as soon as the checkpoint file
    // appears. `minobswin::experiment::checkpoint_path`: the prefix
    // becomes `<prefix>.minobswin.ckpt`.
    let prefix = dir.join("state");
    let ckpt = dir.join("state.minobswin.ckpt");
    let killed_out = dir.join("killed.bench");
    let mut child = Command::new(bin())
        .args(solve_args(&input, &killed_out))
        .args(["--checkpoint", prefix.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn retimer");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if ckpt.exists() {
            // Mid-solve with high probability; if the child already
            // finished, the checkpoint is terminal and the resume
            // below simply returns the identical result instantly —
            // the test stays sound either way.
            child.kill().ok();
            break;
        }
        if let Some(code) = child.try_wait().expect("poll child") {
            panic!("child exited ({code}) before writing a checkpoint");
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("no checkpoint appeared within the deadline");
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    child.wait().expect("reap child");
    assert!(ckpt.exists(), "checkpoint must survive the kill");

    // Resume from the orphaned checkpoint and run to completion.
    let resumed_out = dir.join("resumed.bench");
    let status = Command::new(bin())
        .args(solve_args(&input, &resumed_out))
        .args(["--checkpoint", prefix.to_str().unwrap(), "--resume"])
        .output()
        .expect("run retimer --resume");
    assert!(
        status.status.success(),
        "resume failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&status.stdout),
        String::from_utf8_lossy(&status.stderr)
    );
    let resumed = std::fs::read_to_string(&resumed_out).expect("resumed output");
    assert_eq!(
        resumed, baseline,
        "resumed solve must produce the uninterrupted netlist"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_a_checkpoint_from_another_instance() {
    let dir = workdir("foreign");
    let a = dir.join("a.bench");
    let b = dir.join("b.bench");
    netlist::bench_format::write_file(
        &netlist::generator::GeneratorConfig::new("a", 1)
            .gates(80)
            .registers(12)
            .build(),
        &a,
    )
    .expect("write a");
    netlist::bench_format::write_file(
        &netlist::generator::GeneratorConfig::new("b", 2)
            .gates(90)
            .registers(14)
            .build(),
        &b,
    )
    .expect("write b");

    let prefix = dir.join("state");
    let common = [
        "--vectors",
        "64",
        "--frames",
        "4",
        "--no-equiv",
        "--method",
        "minobswin",
    ];
    let status = Command::new(bin())
        .arg(a.to_str().unwrap())
        .args(common)
        .args(["--checkpoint", prefix.to_str().unwrap()])
        .output()
        .expect("run retimer on a");
    assert!(status.status.success());

    // Resuming circuit B from A's checkpoint must fail cleanly with
    // the checkpoint exit code (2), not a panic or a silent restart.
    let out = Command::new(bin())
        .arg(b.to_str().unwrap())
        .args(common)
        .args(["--checkpoint", prefix.to_str().unwrap(), "--resume"])
        .output()
        .expect("run retimer on b");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("digest"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}
