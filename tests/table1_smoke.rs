//! Smoke test of the Table I harness on heavily scaled twins: the
//! experiment must run end to end and reproduce the qualitative shape
//! (register reductions, MinObsWin never structurally invalid).

use bench_harness::{format_table, run_table1, summarize, Table1Options};

#[test]
fn scaled_suite_runs_and_has_shape() {
    let options = Table1Options {
        scale: 96,
        giant_extra_scale: 8,
        filter: None,
        num_vectors: 256,
        frames: 6,
        threads: 0,
    };
    let rows = run_table1(&options);
    assert!(
        rows.len() >= 18,
        "most of the 21 circuits should run, got {}",
        rows.len()
    );

    let s = summarize(&rows);
    // Qualitative shape of the paper's results: both methods reduce
    // registers strongly on average; SER ratio ref/new is finite.
    assert!(
        s.avg_dff_ref < 0.0,
        "MinObs should reduce registers on average, got {:+.2}%",
        s.avg_dff_ref * 100.0
    );
    assert!(s.avg_ratio.is_finite() && s.avg_ratio > 0.0);
    // The exact-closure solver front-loads its gains, so #J is small
    // (often 1, vs. the paper's incremental 1..9); most circuits must
    // still commit at least once.
    let committed = rows
        .iter()
        .filter(|r| r.run.minobswin.stats.commits >= 1)
        .count();
    assert!(
        committed * 2 >= rows.len(),
        "only {committed}/{} circuits committed a move",
        rows.len()
    );

    let table = format_table(&rows);
    assert!(table.contains("s13207"));
    assert!(table.contains("b22_opt"));
    assert!(table.contains("paper AVG."));
}

#[test]
fn single_circuit_row_fields_consistent() {
    let options = Table1Options {
        filter: Some("b15_1".into()),
        ..Table1Options::tiny()
    };
    let rows = run_table1(&options);
    assert_eq!(rows.len(), 1);
    let r = &rows[0].run;
    // Ratio consistency.
    let ratio = r.minobs.ser / r.minobswin.ser;
    assert!((r.ser_ratio() - ratio).abs() < 1e-12);
    // ΔSER consistency with the absolute values.
    let recomputed = r.minobswin.ser / r.ser_original - 1.0;
    assert!((r.minobswin.delta_ser - recomputed).abs() < 1e-12);
}
