//! Golden regression lock on the Table I pipeline.
//!
//! Runs the full Table I harness at the tiny deterministic scale and
//! compares every *deterministic* field — graph sizes, Φ, R_min,
//! setup/hold path, eq. (4) SER of the original circuit, the
//! propagation-probability second opinion, and the per-method register
//! counts / SER / `#J` commit counters — against a committed golden
//! file, field by field, with a readable diff on mismatch.
//!
//! Wall-clock fields (`solve_seconds`) are deliberately excluded: they
//! are the only non-deterministic part of a row (PR 5 made everything
//! else bit-identical across thread counts).
//!
//! To regenerate after an *intentional* pipeline change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q --test table1_golden
//! ```
//!
//! and commit the updated `tests/fixtures/table1_golden.txt` alongside
//! the change that moved the numbers.

use std::fmt::Write as _;
use std::path::PathBuf;

use bench_harness::table1::{run_table1, Table1Options, Table1Row};

const FIELDS: [&str; 15] = [
    "v",
    "e",
    "ff",
    "phi",
    "r_min",
    "used_setup_hold",
    "ser_original",
    "ser_propprob",
    "minobs.registers",
    "minobs.ser",
    "minobs.commits",
    "minobswin.registers",
    "minobswin.ser",
    "minobswin.commits",
    "ser_ratio",
];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/table1_golden.txt")
}

/// One `name|field=value|...` line per circuit, full float precision.
fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("# Table I golden lock (tiny scale); regenerate with UPDATE_GOLDEN=1\n");
    out.push_str(&format!("# fields: {}\n", FIELDS.join(" ")));
    for row in rows {
        let r = &row.run;
        let values: [String; 15] = [
            r.v.to_string(),
            r.e.to_string(),
            r.ff.to_string(),
            r.phi.to_string(),
            r.r_min.to_string(),
            r.used_setup_hold.to_string(),
            format!("{:e}", r.ser_original),
            format!("{:e}", r.ser_propprob),
            r.minobs.registers.to_string(),
            format!("{:e}", r.minobs.ser),
            r.minobs.stats.commits.to_string(),
            r.minobswin.registers.to_string(),
            format!("{:e}", r.minobswin.ser),
            r.minobswin.stats.commits.to_string(),
            format!("{:e}", r.ser_ratio()),
        ];
        write!(out, "{}", row.paper_name).unwrap();
        for (field, value) in FIELDS.iter().zip(values.iter()) {
            write!(out, "|{field}={value}").unwrap();
        }
        out.push('\n');
    }
    out
}

/// Parses a golden file into `(name, [(field, value)])` records.
fn parse(text: &str) -> Vec<(String, Vec<(String, String)>)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut parts = line.split('|');
            let name = parts.next().unwrap().to_string();
            let fields = parts
                .map(|p| {
                    let (k, v) = p.split_once('=').expect("field=value");
                    (k.to_string(), v.to_string())
                })
                .collect();
            (name, fields)
        })
        .collect()
}

#[test]
fn table1_matches_the_committed_golden_file() {
    let rows = run_table1(&Table1Options::tiny());
    assert!(
        rows.len() >= 20,
        "Table I harness produced only {} rows",
        rows.len()
    );
    let rendered = render(&rows);
    let path = golden_path();

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("table1_golden: regenerated {}", path.display());
        return;
    }

    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = parse(&golden_text);
    let got = parse(&rendered);

    // Build the readable per-field diff before judging anything.
    let mut diff = String::new();
    let golden_names: Vec<&str> = golden.iter().map(|(n, _)| n.as_str()).collect();
    let got_names: Vec<&str> = got.iter().map(|(n, _)| n.as_str()).collect();
    for name in &golden_names {
        if !got_names.contains(name) {
            writeln!(diff, "  {name}: present in golden, missing from this run").unwrap();
        }
    }
    for name in &got_names {
        if !golden_names.contains(name) {
            writeln!(diff, "  {name}: produced by this run, absent from golden").unwrap();
        }
    }
    for (name, want_fields) in &golden {
        let Some((_, got_fields)) = got.iter().find(|(n, _)| n == name) else {
            continue;
        };
        for (field, want) in want_fields {
            match got_fields.iter().find(|(f, _)| f == field) {
                Some((_, have)) if have == want => {}
                Some((_, have)) => {
                    writeln!(diff, "  {name}.{field}: golden {want} vs got {have}").unwrap()
                }
                None => writeln!(diff, "  {name}.{field}: missing from this run").unwrap(),
            }
        }
    }

    assert!(
        diff.is_empty(),
        "Table I drifted from {}:\n{diff}\
         If the change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and commit the new golden file.",
        path.display()
    );
}
