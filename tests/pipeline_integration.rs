//! Cross-crate integration: netlist → retiming graph → SER analysis →
//! MinObsWin → rebuilt netlist, checking end-to-end invariants.

use minobswin::experiment::{Experiment, RunConfig};
use netlist::generator::GeneratorConfig;
use netlist::{bench_format, blif, samples, DelayModel};
use retime::apply::apply_retiming;
use retime::timing::clock_period;
use retime::{RetimeGraph, Retiming};
use ser_engine::{analyze, SerConfig};

fn small_run() -> RunConfig {
    RunConfig::small()
}

#[test]
fn full_pipeline_on_generated_circuit() {
    let circuit = GeneratorConfig::new("integration", 404)
        .gates(300)
        .registers(60)
        .inputs(12)
        .outputs(12)
        .target_edges(660)
        .build();
    let run = Experiment::new(&circuit)
        .config(small_run())
        .run()
        .expect("pipeline runs");

    // The rebuilt netlists are valid circuits with positive SER.
    assert!(run.minobs.ser > 0.0);
    assert!(run.minobswin.ser > 0.0);
    // The solver never worsens its own objective; #J is finite and the
    // iteration counters are coherent.
    assert!(run.minobswin.stats.commits <= run.minobswin.stats.iterations);
}

#[test]
fn retimed_circuits_meet_their_period() {
    let circuit = GeneratorConfig::new("period", 7)
        .gates(200)
        .registers(40)
        .build();
    let run = Experiment::new(&circuit)
        .config(small_run())
        .run()
        .expect("runs");
    let delays = DelayModel::default();
    for (label, method) in [("minobs", &run.minobs), ("minobswin", &run.minobswin)] {
        let graph = RetimeGraph::from_circuit(&circuit, &delays).expect("graph");
        let rebuilt = apply_retiming(&circuit, &graph, &method.retiming).expect("apply");
        let g2 = RetimeGraph::from_circuit(&rebuilt, &delays).expect("rebuilt graph");
        let cp = clock_period(&g2, &Retiming::zero(&g2)).expect("period");
        assert!(
            cp <= run.phi,
            "{label}: rebuilt period {cp} exceeds Phi {}",
            run.phi
        );
    }
}

#[test]
fn minobswin_never_loses_to_minobs_on_its_own_objective() {
    // Both start at the same point; MinObsWin has strictly more
    // constraints, so its objective gain is at most MinObs's.
    for seed in [1u64, 2, 3] {
        let circuit = GeneratorConfig::new("obj", seed)
            .gates(150)
            .registers(30)
            .build();
        let run = Experiment::new(&circuit)
            .config(small_run())
            .run()
            .expect("runs");
        // Register observability is what the objective models; compare
        // the measured registers count as a proxy sanity check only.
        assert!(run.minobs.registers > 0 && run.minobswin.registers > 0);
    }
}

#[test]
fn bench_round_trip_preserves_experiment() {
    // Export to .bench, re-import, and run the same experiment: results
    // must be bit-identical (determinism through the text format).
    let circuit = samples::s27_like();
    let text = bench_format::write(&circuit);
    let reparsed = bench_format::parse(&text, "s27_like").expect("parse");
    let a = Experiment::new(&circuit)
        .config(small_run())
        .run()
        .expect("original");
    let b = Experiment::new(&reparsed)
        .config(small_run())
        .run()
        .expect("reparsed");
    assert_eq!(a.ser_original, b.ser_original);
    assert_eq!(a.minobswin.ser, b.minobswin.ser);
}

#[test]
fn blif_round_trip_preserves_experiment() {
    let circuit = samples::s27_like();
    let text = blif::write(&circuit);
    let reparsed = blif::parse(&text).expect("parse");
    let a = Experiment::new(&circuit)
        .config(small_run())
        .run()
        .expect("original");
    let b = Experiment::new(&reparsed)
        .config(small_run())
        .run()
        .expect("reparsed");
    assert_eq!(a.ser_original, b.ser_original);
}

#[test]
fn retimed_circuit_reanalysis_is_consistent() {
    // Analyzing the rebuilt netlist directly gives the same SER the
    // experiment reported.
    let circuit = samples::pipeline(9, 3);
    let run = Experiment::new(&circuit)
        .config(small_run())
        .run()
        .expect("runs");
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays).expect("graph");
    let rebuilt = apply_retiming(&circuit, &graph, &run.minobswin.retiming).expect("apply");
    let config = SerConfig {
        sim: small_run().sim,
        delays,
        elw: retime::ElwParams::with_phi(run.phi),
        ..SerConfig::with_phi(run.phi)
    };
    let report = analyze(&rebuilt, &config).expect("analyze");
    assert_eq!(report.ser, run.minobswin.ser);
}
