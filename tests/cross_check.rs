//! Optimality cross-checks: the paper's incremental algorithm against
//! the exact W/D-matrix + min-cost-flow reference, and against
//! exhaustive enumeration on tiny instances (including the
//! P2-constrained problem, where no convex reference exists).

use minobswin::algorithm::SolverConfig;
use minobswin::verify::check_feasible;
use minobswin::{Problem, SolverSession};
use netlist::generator::GeneratorConfig;
use netlist::rng::Xoshiro256;
use netlist::{samples, DelayModel};
use retime::minarea_ref::{exhaustive_minimize, solve_exact};
use retime::timing::clock_period;
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming, VertexId};

fn objective(graph: &RetimeGraph, b: &[i64], r: &Retiming) -> i64 {
    (1..graph.num_vertices())
        .map(|v| b[v] * r.get(VertexId::new(v)))
        .sum()
}

#[test]
fn minobs_matches_exact_reference_on_many_circuits() {
    for seed in 0..10u64 {
        let circuit = GeneratorConfig::new("xc", seed)
            .gates(60)
            .registers(14)
            .inputs(4)
            .outputs(4)
            .target_edges(130)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let phi = clock_period(&graph, &Retiming::zero(&graph)).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(seed * 31 + 5);
        let counts: Vec<i64> = (0..graph.num_vertices())
            .map(|i| {
                if i == 0 {
                    128
                } else {
                    rng.gen_range(129) as i64
                }
            })
            .collect();
        let problem =
            Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(phi), 1);
        let sol = SolverSession::new(&graph, &problem)
            .config(SolverConfig::default().with_p2(false))
            .run()
            .unwrap();
        let exact = solve_exact(&graph, &problem.b, Some(phi)).unwrap();
        assert_eq!(
            objective(&graph, &problem.b, &sol.retiming),
            exact.objective,
            "seed {seed}: incremental MinObs must match the exact LP optimum"
        );
    }
}

#[test]
fn minobswin_matches_exhaustive_on_tiny_circuits() {
    // The P2-constrained problem is non-convex; exhaustively enumerate
    // retimings in a box and compare. The solver is a monotone-descent
    // method (the paper's), so we check (a) feasibility, (b) it never
    // beats the true optimum, and (c) it reaches it on these instances.
    let mut optimal_hits = 0;
    let mut cases = 0;
    for seed in 0..6u64 {
        let circuit = GeneratorConfig::new("tiny", seed)
            .gates(5)
            .registers(3)
            .inputs(1)
            .outputs(1)
            .target_edges(10)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
        if graph.num_vertices() > 10 {
            continue;
        }
        let r0 = Retiming::zero(&graph);
        let phi = clock_period(&graph, &r0).unwrap() + 1;
        let params = ElwParams::with_phi(phi);
        let labels = LrLabels::compute(&graph, &r0, params).unwrap();
        let Some(r_min) = labels.min_short_path(&graph, &r0) else {
            continue;
        };
        let mut rng = Xoshiro256::seed_from_u64(seed + 1000);
        let counts: Vec<i64> = (0..graph.num_vertices())
            .map(|i| if i == 0 { 16 } else { rng.gen_range(17) as i64 })
            .collect();
        let problem = Problem::from_observability_counts(&graph, &counts, params, r_min);
        let sol = SolverSession::new(&graph, &problem)
            .initial(r0.clone())
            .run()
            .unwrap();
        assert!(
            check_feasible(&graph, &problem, &sol.retiming).is_ok(),
            "seed {seed}"
        );

        let brute = exhaustive_minimize(
            &graph,
            2,
            |r| check_feasible(&graph, &problem, r).is_ok(),
            |r| objective(&graph, &problem.b, r),
        )
        .expect("r = 0 is feasible");
        let got = objective(&graph, &problem.b, &sol.retiming);
        assert!(
            got >= brute.1,
            "seed {seed}: solver objective {got} beats the exhaustive optimum {} — impossible",
            brute.1
        );
        cases += 1;
        if got == brute.1 {
            optimal_hits += 1;
        }
    }
    assert!(cases >= 3, "need enough comparable cases, got {cases}");
    // The paper claims optimality (Theorem 2, stated without proof),
    // but the P2-constrained feasible set is non-convex and the greedy
    // closed-set schedule can stop at a local optimum; with the
    // bidirectional schedule we observe 5/6 global hits on these
    // instances (see EXPERIMENTS.md, "optimality findings"). Guard the
    // current quality level without overclaiming.
    assert!(
        optimal_hits + 1 >= cases,
        "solver found the exhaustive optimum on only {optimal_hits}/{cases} tiny instances"
    );
}

#[test]
fn p2_never_binds_when_rmin_is_trivial() {
    // With R_min = minimal gate delay (the paper's fallback), MinObsWin
    // must behave exactly like MinObs (observed in the paper for
    // s15850.1 etc.).
    for seed in 0..4u64 {
        let circuit = GeneratorConfig::new("triv", seed)
            .gates(80)
            .registers(16)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
        let phi = clock_period(&graph, &Retiming::zero(&graph)).unwrap();
        let counts = vec![1i64; graph.num_vertices()];
        let problem =
            Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(phi), 1);
        let win = SolverSession::new(&graph, &problem).run().unwrap();
        let base = SolverSession::new(&graph, &problem)
            .config(SolverConfig::default().with_p2(false))
            .run()
            .unwrap();
        assert_eq!(
            win.objective_gain, base.objective_gain,
            "seed {seed}: with unit delays R_min = 1 never binds"
        );
    }
}

#[test]
fn descent_is_monotone_and_final_state_stable() {
    let circuit = samples::s27_like();
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
    let r0 = Retiming::zero(&graph);
    let phi = clock_period(&graph, &r0).unwrap() + 3;
    let params = ElwParams::with_phi(phi);
    let labels = LrLabels::compute(&graph, &r0, params).unwrap();
    let r_min = labels.min_short_path(&graph, &r0).unwrap();
    let counts = vec![7i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, params, r_min);
    // The paper-literal schedule (descent only).
    let paper_config = SolverConfig::default().with_bidirectional(false);
    let sol = SolverSession::new(&graph, &problem)
        .config(paper_config)
        .initial(r0.clone())
        .run()
        .unwrap();
    // Descent: r only decreases from the start.
    for v in graph.vertices() {
        assert!(sol.retiming.get(v) <= r0.get(v), "{v} increased");
    }
    // Re-running from the final point makes no further progress, and
    // the bidirectional schedule can only match or improve.
    let again = SolverSession::new(&graph, &problem)
        .config(paper_config)
        .initial(sol.retiming.clone())
        .run()
        .unwrap();
    assert_eq!(again.objective_gain, 0);
    let bidir = SolverSession::new(&graph, &problem)
        .initial(r0)
        .run()
        .unwrap();
    assert!(bidir.objective_gain >= sol.objective_gain);
}
