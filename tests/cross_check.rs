//! Optimality cross-checks: the paper's incremental algorithm against
//! the exact W/D-matrix + min-cost-flow reference, and against
//! exhaustive enumeration on tiny instances (including the
//! P2-constrained problem, where no convex reference exists) — plus
//! the three-way SER estimator agreement suite over the Table I twin
//! circuits, including a sabotage test proving the suite actually
//! fails when an estimator is wrong.

use faultsim::{check_agreement, MonteCarloEstimator, ToleranceBands};
use minobswin::algorithm::SolverConfig;
use minobswin::experiment::RunConfig;
use minobswin::verify::check_feasible;
use minobswin::{Problem, SolverSession};
use netlist::generator::{table1_twin, GeneratorConfig, TABLE1_ROWS};
use netlist::rng::Xoshiro256;
use netlist::{samples, Circuit, DelayModel};
use retime::minarea_ref::{exhaustive_minimize, solve_exact};
use retime::timing::clock_period;
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming, VertexId};
use ser_engine::sim::SimConfig;
use ser_engine::{EngineKind, SerConfig, SABOTAGE_ESTIMATE_SEED};

fn objective(graph: &RetimeGraph, b: &[i64], r: &Retiming) -> i64 {
    (1..graph.num_vertices())
        .map(|v| b[v] * r.get(VertexId::new(v)))
        .sum()
}

#[test]
fn minobs_matches_exact_reference_on_many_circuits() {
    for seed in 0..10u64 {
        let circuit = GeneratorConfig::new("xc", seed)
            .gates(60)
            .registers(14)
            .inputs(4)
            .outputs(4)
            .target_edges(130)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let phi = clock_period(&graph, &Retiming::zero(&graph)).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(seed * 31 + 5);
        let counts: Vec<i64> = (0..graph.num_vertices())
            .map(|i| {
                if i == 0 {
                    128
                } else {
                    rng.gen_range(129) as i64
                }
            })
            .collect();
        let problem =
            Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(phi), 1);
        let sol = SolverSession::new(&graph, &problem)
            .config(SolverConfig::default().with_p2(false))
            .run()
            .unwrap();
        let exact = solve_exact(&graph, &problem.b, Some(phi)).unwrap();
        assert_eq!(
            objective(&graph, &problem.b, &sol.retiming),
            exact.objective,
            "seed {seed}: incremental MinObs must match the exact LP optimum"
        );
    }
}

#[test]
fn minobswin_matches_exhaustive_on_tiny_circuits() {
    // The P2-constrained problem is non-convex; exhaustively enumerate
    // retimings in a box and compare. The solver is a monotone-descent
    // method (the paper's), so we check (a) feasibility, (b) it never
    // beats the true optimum, and (c) it reaches it on these instances.
    let mut optimal_hits = 0;
    let mut cases = 0;
    for seed in 0..6u64 {
        let circuit = GeneratorConfig::new("tiny", seed)
            .gates(5)
            .registers(3)
            .inputs(1)
            .outputs(1)
            .target_edges(10)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
        if graph.num_vertices() > 10 {
            continue;
        }
        let r0 = Retiming::zero(&graph);
        let phi = clock_period(&graph, &r0).unwrap() + 1;
        let params = ElwParams::with_phi(phi);
        let labels = LrLabels::compute(&graph, &r0, params).unwrap();
        let Some(r_min) = labels.min_short_path(&graph, &r0) else {
            continue;
        };
        let mut rng = Xoshiro256::seed_from_u64(seed + 1000);
        let counts: Vec<i64> = (0..graph.num_vertices())
            .map(|i| if i == 0 { 16 } else { rng.gen_range(17) as i64 })
            .collect();
        let problem = Problem::from_observability_counts(&graph, &counts, params, r_min);
        let sol = SolverSession::new(&graph, &problem)
            .initial(r0.clone())
            .run()
            .unwrap();
        assert!(
            check_feasible(&graph, &problem, &sol.retiming).is_ok(),
            "seed {seed}"
        );

        let brute = exhaustive_minimize(
            &graph,
            2,
            |r| check_feasible(&graph, &problem, r).is_ok(),
            |r| objective(&graph, &problem.b, r),
        )
        .expect("r = 0 is feasible");
        let got = objective(&graph, &problem.b, &sol.retiming);
        assert!(
            got >= brute.1,
            "seed {seed}: solver objective {got} beats the exhaustive optimum {} — impossible",
            brute.1
        );
        cases += 1;
        if got == brute.1 {
            optimal_hits += 1;
        }
    }
    assert!(cases >= 3, "need enough comparable cases, got {cases}");
    // The paper claims optimality (Theorem 2, stated without proof),
    // but the P2-constrained feasible set is non-convex and the greedy
    // closed-set schedule can stop at a local optimum; with the
    // bidirectional schedule we observe 5/6 global hits on these
    // instances (see EXPERIMENTS.md, "optimality findings"). Guard the
    // current quality level without overclaiming.
    assert!(
        optimal_hits + 1 >= cases,
        "solver found the exhaustive optimum on only {optimal_hits}/{cases} tiny instances"
    );
}

#[test]
fn p2_never_binds_when_rmin_is_trivial() {
    // With R_min = minimal gate delay (the paper's fallback), MinObsWin
    // must behave exactly like MinObs (observed in the paper for
    // s15850.1 etc.).
    for seed in 0..4u64 {
        let circuit = GeneratorConfig::new("triv", seed)
            .gates(80)
            .registers(16)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
        let phi = clock_period(&graph, &Retiming::zero(&graph)).unwrap();
        let counts = vec![1i64; graph.num_vertices()];
        let problem =
            Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(phi), 1);
        let win = SolverSession::new(&graph, &problem).run().unwrap();
        let base = SolverSession::new(&graph, &problem)
            .config(SolverConfig::default().with_p2(false))
            .run()
            .unwrap();
        assert_eq!(
            win.objective_gain, base.objective_gain,
            "seed {seed}: with unit delays R_min = 1 never binds"
        );
    }
}

#[test]
fn descent_is_monotone_and_final_state_stable() {
    let circuit = samples::s27_like();
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
    let r0 = Retiming::zero(&graph);
    let phi = clock_period(&graph, &r0).unwrap() + 3;
    let params = ElwParams::with_phi(phi);
    let labels = LrLabels::compute(&graph, &r0, params).unwrap();
    let r_min = labels.min_short_path(&graph, &r0).unwrap();
    let counts = vec![7i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, params, r_min);
    // The paper-literal schedule (descent only).
    let paper_config = SolverConfig::default().with_bidirectional(false);
    let sol = SolverSession::new(&graph, &problem)
        .config(paper_config)
        .initial(r0.clone())
        .run()
        .unwrap();
    // Descent: r only decreases from the start.
    for v in graph.vertices() {
        assert!(sol.retiming.get(v) <= r0.get(v), "{v} increased");
    }
    // Re-running from the final point makes no further progress, and
    // the bidirectional schedule can only match or improve.
    let again = SolverSession::new(&graph, &problem)
        .config(paper_config)
        .initial(sol.retiming.clone())
        .run()
        .unwrap();
    assert_eq!(again.objective_gain, 0);
    let bidir = SolverSession::new(&graph, &problem)
        .initial(r0)
        .run()
        .unwrap();
    assert!(bidir.objective_gain >= sol.objective_gain);
}

// ---------------------------------------------------------------------------
// Three-way SER estimator agreement (PR 8)
// ---------------------------------------------------------------------------

/// A Φ-fitted estimation config for the agreement suite: small
/// deterministic simulation, Φ from the same initialization the
/// experiment pipeline uses.
fn agreement_config(circuit: &Circuit, vectors: usize, frames: usize) -> SerConfig {
    let defaults = RunConfig::default();
    let graph = RetimeGraph::from_circuit(circuit, &defaults.delays).unwrap();
    let init = defaults.init.initialize(&graph).unwrap();
    SerConfig {
        sim: SimConfig {
            num_vectors: vectors,
            frames,
            warmup: 4,
            seed: 0xC0FFEE,
            threads: 0,
        },
        delays: defaults.delays.clone(),
        rates: defaults.rates.clone(),
        elw: ElwParams {
            phi: init.phi,
            t_setup: defaults.init.t_setup,
            t_hold: defaults.init.t_hold,
        },
    }
}

/// Documented per-circuit tolerance bands for the Table I twins
/// (calibrated 2026-08 at scale 192, 256 vectors × 6 frames, 12k
/// injections, fixed seeds — the whole pipeline is bit-deterministic,
/// so the measured gaps below are reproducible, and each band carries
/// ≥ 1.2× headroom over its measured gap).
///
/// Two regimes:
///
/// * **Deterministic pairs** (analytic vs propprob): both engines make
///   the same independence approximation, so they track each other
///   tightly everywhere — worst measured gap 15.5% (b18 twin); the
///   default 25% band holds for all 21 circuits.
/// * **Sampled pairs** (anything vs Monte-Carlo): the gap *is* the
///   reconvergence error of the independence approximation, because
///   the campaign actually propagates each fault. On most twins it
///   stays under 25%, but dense arithmetic cones (XOR-heavy
///   reconvergent fanout in the `b`-series twins) make the analytic
///   observabilities saturate toward 1 where correlated paths really
///   cancel: measured 57% on the b21 twin and 83% on the b18_1 twin
///   (e.g. site n60: analytic latch probability 0.81, campaign 0.00).
///   Those circuits carry wide documented bands — the agreement check
///   there guards the order of magnitude, while the deterministic
///   pairs stay sharp.
fn bands_for(name: &str) -> ToleranceBands {
    let sampled_pair = match name {
        "b18_1_opt" => 0.90,            // measured 0.83
        "b21_opt" => 0.75,              // measured 0.57
        "b22_1_opt" => 0.45,            // measured 0.27
        "s13207" | "b17_1_opt" => 0.35, // measured 0.23
        _ => 0.30,                      // measured ≤ 0.19
    };
    ToleranceBands {
        sampled_pair,
        ..ToleranceBands::default()
    }
}

#[test]
fn table1_twins_three_way_agreement() {
    // Every Table I circuit (tiny twins, as in `table1_smoke`): the
    // analytic, Monte-Carlo and propagation-probability engines must
    // agree pairwise within the documented bands. The exact oracle
    // joins automatically on twins small enough to enumerate.
    let mut checked = 0usize;
    for row in &TABLE1_ROWS {
        let circuit = table1_twin(row, 192);
        let config = agreement_config(&circuit, 256, 6);
        let campaign = MonteCarloEstimator::new(12_000);
        let report = check_agreement(&circuit, &config, &campaign, bands_for(row.name)).unwrap();
        assert!(
            report.agrees(),
            "{}: estimators disagree\n{}",
            row.name,
            report.summary()
        );
        // All-vs-all: n engines yield n(n-1)/2 verdicts.
        let n = report.estimates.len();
        assert_eq!(report.pairs.len(), n * (n - 1) / 2, "{}", row.name);
        checked += 1;
    }
    assert_eq!(
        checked,
        TABLE1_ROWS.len(),
        "every Table I circuit must be judged"
    );
}

#[test]
fn sabotaged_estimator_is_caught_by_the_agreement_suite() {
    // Fault-hook drill for the suite itself: the magic simulation seed
    // activates a deliberate skew inside the propagation-probability
    // engine (obs ↦ 0.5·obs + 0.25). If the agreement oracle cannot
    // catch that, its bands are too loose to catch a real bug.
    //
    // The drill circuit is a deep AND chain with a fresh input per
    // stage: logical masking decays geometrically with depth, so the
    // early gates have true observability ~2^-29 (all engines report
    // ~0 there), while the sabotage floors every site at 0.25 —
    // inflating the propprob SER several-fold. Exactly the kind of
    // silent per-site corruption the oracle exists to catch. (A dead
    // cone would not work here: unobservable gates have an empty
    // error-latching window, so eq. (4) zeroes them no matter how the
    // observability is skewed.)
    let circuit = {
        let mut b = netlist::CircuitBuilder::new("sabotage_drill");
        b.input("i0");
        b.dff("q", "i0").unwrap();
        let mut prev = "q".to_string();
        for k in 0..30 {
            let input = format!("i{}", k + 1);
            b.input(&input);
            let name = format!("c{k}");
            b.gate(&name, netlist::GateKind::And, &[&prev, &input])
                .unwrap();
            prev = name;
        }
        b.output(&prev).unwrap();
        b.build().unwrap()
    };
    let mut config = agreement_config(&circuit, 256, 6);
    config.sim.seed = SABOTAGE_ESTIMATE_SEED;
    let campaign = MonteCarloEstimator::new(20_000);
    let report = check_agreement(&circuit, &config, &campaign, ToleranceBands::default()).unwrap();
    assert!(
        !report.agrees(),
        "sabotaged propprob engine slipped past the oracle\n{}",
        report.summary()
    );
    // The divergence must implicate the sabotaged engine specifically.
    assert!(
        report
            .divergent()
            .iter()
            .all(|p| p.a == EngineKind::PropProb || p.b == EngineKind::PropProb),
        "divergence blamed on the wrong engines\n{}",
        report.summary()
    );
    // And the healthy engines still agree with each other.
    assert!(
        report
            .pairs
            .iter()
            .filter(|p| p.a != EngineKind::PropProb && p.b != EngineKind::PropProb)
            .all(|p| p.agrees),
        "healthy pairs should stay in agreement\n{}",
        report.summary()
    );
    // Control: with the sabotage seed removed, the same circuit passes
    // — the divergence above is caused by the injected bug, nothing
    // else.
    let control_config = agreement_config(&circuit, 256, 6);
    let control = check_agreement(
        &circuit,
        &control_config,
        &campaign,
        ToleranceBands::default(),
    )
    .unwrap();
    assert!(
        control.agrees(),
        "control run without sabotage must agree\n{}",
        control.summary()
    );
}
