//! Differential testing of the SER estimators against each other and
//! against the exhaustive oracle.
//!
//! Three layers:
//!
//! * **Exactness** — on *deterministic-propagation* circuits (random
//!   fanout-free BUF/NOT/XOR/XNOR trees, optionally threaded through
//!   registers), every sensitization is 1, so the
//!   propagation-probability engine is exact by construction: its
//!   per-gate estimate must equal the exhaustive enumeration oracle
//!   bit for bit — including after a round-trip through each of the
//!   three netlist formats.
//! * **Statistical agreement** — on arbitrary random netlists the
//!   analytic eq. (4) total must fall inside the Monte-Carlo
//!   campaign's tolerance-widened Wilson interval at 2048 simulation
//!   vectors.
//! * **Adversarial corpus** — every estimator must either reject or
//!   cleanly process the parser-fuzz corpus; parseable corpus entries
//!   must never panic an engine.

use std::path::Path;

use faultsim::{run_campaign, CampaignConfig, CrossCheck};
use minobswin::experiment::RunConfig;
use netlist::generator::GeneratorConfig;
use netlist::{bench_format, blif, verilog, Circuit, CircuitBuilder, GateKind, ParseLimits};
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use retime::{ElwParams, RetimeGraph};
use ser_engine::exact::exact_observability;
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{analyze, exact_feasible, exact_report, propprob_report, PropProb, SerConfig};

/// Builds a random fanout-free deterministic-propagation circuit:
/// BUF/NOT/XOR/XNOR gates only, every signal consumed at most once, an
/// optional register splice, one primary output, and possibly dead
/// gates (which both engines must score exactly 0).
fn deterministic_circuit(seed: u64) -> Circuit {
    let mut rng = TestRng::for_case(0xDE7E_0001, seed as u32);
    let num_inputs = 2 + rng.gen_below(3) as usize; // 2..=4
    let num_gates = 2 + rng.gen_below(7) as usize; // 2..=8
    let mut b = CircuitBuilder::new("det");
    // The frontier holds every not-yet-consumed signal name.
    let mut frontier: Vec<String> = (0..num_inputs)
        .map(|i| {
            let name = format!("i{i}");
            b.input(&name);
            name
        })
        .collect();
    let mut registers = 0usize;
    for g in 0..num_gates {
        let name = format!("g{g}");
        let take = |frontier: &mut Vec<String>, rng: &mut TestRng| {
            frontier.swap_remove(rng.gen_below(frontier.len() as u64) as usize)
        };
        let a = take(&mut frontier, &mut rng);
        match rng.gen_below(6) {
            0 => {
                b.gate(&name, GateKind::Buf, &[&a]).unwrap();
            }
            1 => {
                b.gate(&name, GateKind::Not, &[&a]).unwrap();
            }
            2 | 3 if !frontier.is_empty() => {
                let c = take(&mut frontier, &mut rng);
                b.gate(&name, GateKind::Xor, &[&a, &c]).unwrap();
            }
            4 if !frontier.is_empty() => {
                let c = take(&mut frontier, &mut rng);
                b.gate(&name, GateKind::Xnor, &[&a, &c]).unwrap();
            }
            _ if registers < 2 => {
                // Splice a register into the cone: still deterministic
                // (register inputs of the last frame are observation
                // points for both engines).
                registers += 1;
                b.dff(&name, &a).unwrap();
            }
            _ => {
                b.gate(&name, GateKind::Not, &[&a]).unwrap();
            }
        }
        frontier.push(name);
    }
    let po = frontier.swap_remove(rng.gen_below(frontier.len() as u64) as usize);
    b.output(&po).unwrap();
    // Everything left on the frontier is dead: no path to the output.
    b.build().unwrap()
}

/// A `SerConfig` whose Φ actually fits the circuit (clock period plus
/// slack), with a small deterministic simulation.
fn fitted_config(circuit: &Circuit, vectors: usize, frames: usize) -> SerConfig {
    let defaults = RunConfig::default();
    let graph = RetimeGraph::from_circuit(circuit, &defaults.delays).unwrap();
    let init = defaults.init.initialize(&graph).unwrap();
    SerConfig {
        sim: SimConfig {
            num_vectors: vectors,
            frames,
            warmup: 4,
            seed: 0xC0FFEE,
            threads: 0,
        },
        delays: defaults.delays.clone(),
        rates: defaults.rates.clone(),
        elw: ElwParams {
            phi: init.phi,
            t_setup: defaults.init.t_setup,
            t_hold: defaults.init.t_hold,
        },
    }
}

proptest! {
    /// On deterministic-propagation circuits the propagation-
    /// probability engine equals the exhaustive oracle exactly — per
    /// gate and in the eq. (4) total.
    #[test]
    fn propprob_equals_exact_on_deterministic_circuits(seed in 0u64..40) {
        let circuit = deterministic_circuit(seed);
        let frames = 2;
        prop_assert!(
            exact_feasible(&circuit, frames, 16),
            "generator must stay under the enumeration cap"
        );
        let config = fitted_config(&circuit, 256, frames);
        let trace = FrameTrace::simulate(&circuit, config.sim);
        let pp = PropProb::compute(&circuit, &trace);
        let oracle = exact_observability(&circuit, frames, 16).unwrap();
        for (id, gate) in circuit.iter() {
            prop_assert_eq!(
                pp.prop(id),
                oracle[id.index()],
                "{} ({}): propprob vs exhaustive oracle",
                gate.name(),
                gate.kind()
            );
            prop_assert!(
                pp.prop(id) == 0.0 || pp.prop(id) == 1.0,
                "deterministic propagation must be 0 or 1"
            );
        }
        // And the assembled reports agree bit for bit.
        let pp_report = propprob_report(&circuit, &config).unwrap();
        let exact = exact_report(&circuit, &config, 16).unwrap();
        prop_assert_eq!(pp_report.ser, exact.ser);
    }

    /// The exactness survives a round-trip through each netlist
    /// format: write, re-parse, re-estimate, same verdict. The bench
    /// and BLIF writers are structure-preserving, so their round-trips
    /// must reproduce the original SER bit for bit; the Verilog writer
    /// inserts an explicit `buf` per output port (one extra gate, one
    /// extra fault site), so there only the propprob-equals-exact
    /// invariant is required — the buffer keeps propagation
    /// deterministic.
    #[test]
    fn exactness_survives_format_round_trips(seed in 0u64..12) {
        let circuit = deterministic_circuit(seed);
        let frames = 2;
        let config = fitted_config(&circuit, 256, frames);
        let reference = propprob_report(&circuit, &config).unwrap().ser;
        let limits = ParseLimits::default();
        let round_trips: [(&str, bool, Circuit); 3] = [
            ("bench", true, bench_format::parse(&bench_format::write(&circuit), "det").unwrap()),
            ("blif", true, blif::parse_with_limits(&blif::write(&circuit), &limits).unwrap()),
            ("verilog", false, verilog::parse_with_limits(&verilog::write(&circuit), &limits).unwrap()),
        ];
        for (format, structure_preserving, reparsed) in round_trips {
            let rt_config = fitted_config(&reparsed, 256, frames);
            let pp = propprob_report(&reparsed, &rt_config).unwrap();
            let exact = exact_report(&reparsed, &rt_config, 16).unwrap();
            prop_assert_eq!(pp.ser, exact.ser, "{}: propprob vs exact after round-trip", format);
            if structure_preserving {
                prop_assert_eq!(rt_config.elw.phi, config.elw.phi, "{}: Phi drifted", format);
                prop_assert_eq!(pp.ser, reference, "{}: SER drifted in the round-trip", format);
            }
        }
    }

    /// On arbitrary random netlists, the analytic eq. (4) total falls
    /// inside the Monte-Carlo campaign's tolerance-widened Wilson
    /// interval at 2048 simulation vectors.
    ///
    /// Tolerance 0.5: unlike the fanout-free circuits above, random
    /// netlists reconverge, and there the analytic engine's
    /// independence approximation genuinely overestimates — measured
    /// gaps over these six seeds are 2.1%–34.5% (seed 4 is the worst;
    /// the tightly-calibrated per-circuit story lives in
    /// `cross_check::table1_twins_three_way_agreement`). The band here
    /// caps the approximation error at "same order of magnitude" on
    /// adversarially reconvergent inputs.
    #[test]
    fn analytic_inside_wilson_interval_at_2048_vectors(seed in 0u64..6) {
        let circuit = GeneratorConfig::new("diff", seed)
            .gates(40 + (seed as usize % 30))
            .registers(6 + (seed as usize % 5))
            .inputs(4)
            .outputs(3)
            .build();
        let config = fitted_config(&circuit, 2048, 4);
        let report = analyze(&circuit, &config).unwrap();
        let campaign = run_campaign(
            &circuit,
            &config,
            &CampaignConfig::new(40_000).with_seed(seed.wrapping_mul(977) + 3),
        )
        .unwrap();
        let check = CrossCheck::compare(&circuit, &report, &campaign, 0.50);
        prop_assert!(
            check.ser_agrees,
            "seed {}: analytic SER outside the widened Wilson interval\n{}",
            seed,
            check.summary()
        );
    }
}

/// The adversarial parser corpus stays rejected at the estimator front
/// door too: `read_path` must return a structured error (never a
/// panic) for every file, same as the parser-level fuzz suite.
#[test]
fn adversarial_corpus_is_rejected_cleanly_at_the_front_door() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut rejected = 0usize;
    for entry in std::fs::read_dir(&corpus).expect("corpus directory") {
        let path = entry.unwrap().path();
        let err = netlist::read_path(path.to_str().unwrap(), &ParseLimits::default())
            .err()
            .unwrap_or_else(|| panic!("{}: adversarial input unexpectedly parsed", path.display()));
        assert!(!err.to_string().is_empty(), "{}", path.display());
        rejected += 1;
    }
    assert!(rejected >= 7, "corpus shrank to {rejected} files");
}

/// Nasty-but-valid circuits (the estimator-side analogue of the parser
/// corpus): wide fanin, deep inverter chains, dead cones, register
/// self-structures. Every deterministic engine must process them
/// without panicking, return finite non-negative SER, and agree with
/// the others on retimability.
#[test]
fn estimators_survive_nasty_valid_circuits() {
    let mut nasty: Vec<Circuit> = Vec::new();
    // Wide fanin: one 48-input AND.
    {
        let mut b = CircuitBuilder::new("wide");
        let names: Vec<String> = (0..48).map(|i| format!("i{i}")).collect();
        for n in &names {
            b.input(n);
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.gate("wide", GateKind::And, &refs).unwrap();
        b.output("wide").unwrap();
        nasty.push(b.build().unwrap());
    }
    // Deep chain: 200 inverters behind one register.
    {
        let mut b = CircuitBuilder::new("deep");
        b.input("i");
        b.dff("q", "i").unwrap();
        let mut prev = "q".to_string();
        for k in 0..200 {
            let name = format!("n{k}");
            b.gate(&name, GateKind::Not, &[&prev]).unwrap();
            prev = name;
        }
        b.output(&prev).unwrap();
        nasty.push(b.build().unwrap());
    }
    // Mostly-dead circuit: a big cone nobody observes.
    {
        let mut b = CircuitBuilder::new("dead");
        b.input("i0");
        b.input("i1");
        b.gate("live", GateKind::And, &["i0", "i1"]).unwrap();
        b.output("live").unwrap();
        let mut prev = "i0".to_string();
        for k in 0..30 {
            let name = format!("d{k}");
            b.gate(&name, GateKind::Xor, &[&prev, "i1"]).unwrap();
            prev = name;
        }
        nasty.push(b.build().unwrap());
    }
    for circuit in &nasty {
        let config = fitted_config(circuit, 128, 3);
        let analytic = analyze(circuit, &config);
        let pp = propprob_report(circuit, &config);
        assert_eq!(
            analytic.is_ok(),
            pp.is_ok(),
            "{}: engines disagree on retimability",
            circuit.name()
        );
        if let (Ok(a), Ok(p)) = (analytic, pp) {
            assert!(a.ser.is_finite() && a.ser >= 0.0, "{}", circuit.name());
            assert!(p.ser.is_finite() && p.ser >= 0.0, "{}", circuit.name());
        }
    }
}
