//! Regression tests reproducing the paper's figures.
//!
//! * **Fig. 1**: a register move that lowers register observability but
//!   raises SER; MinObs takes it, MinObsWin's P2 machinery refuses.
//! * **Fig. 2(a–c)**: the three active-constraint types.
//! * **Fig. 3**: a positive-tree↔positive-tree link forcing a weight
//!   update via `BreakTree` in the weighted regular forest.

use minobswin::algorithm::SolverConfig;
use minobswin::forest::WeightedRegularForest;
use minobswin::verify::{find_violation, Violation};
use minobswin::{Problem, SolverSession};
use netlist::{samples, CircuitBuilder, DelayModel, GateKind};
use retime::apply::apply_retiming;
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming, VertexId};
use ser_engine::odc::Observability;
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{analyze, vertex_observabilities, SerConfig};

/// Fig. 1, quantitative: the move reduces register observability and
/// register count yet increases eq.-(4) SER, by splitting the upstream
/// ELWs into disjoint windows.
#[test]
fn fig1_move_lowers_obs_but_raises_ser() {
    let circuit = samples::fig1_like();
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays).unwrap();
    let f = graph.vertex_of(circuit.find("F").unwrap()).unwrap();
    let mut moved = Retiming::zero(&graph);
    moved.set(f, -1);
    let phi = retime::timing::clock_period(&graph, &moved)
        .unwrap()
        .max(retime::timing::clock_period(&graph, &Retiming::zero(&graph)).unwrap());
    let config = SerConfig {
        sim: SimConfig::default(),
        delays: delays.clone(),
        elw: ElwParams::with_phi(phi),
        ..SerConfig::with_phi(phi)
    };
    let before = analyze(&circuit, &config).unwrap();
    let rebuilt = apply_retiming(&circuit, &graph, &moved).unwrap();
    let after = analyze(&rebuilt, &config).unwrap();

    assert!(rebuilt.num_registers() < circuit.num_registers());
    assert!(after.register_observability < before.register_observability);
    assert!(
        after.ser > before.ser,
        "SER must worsen: before {:.3e}, after {:.3e}",
        before.ser,
        after.ser
    );

    // The ELWs of A and B grow by exactly 1, splitting into 2 windows.
    let elws_before =
        ser_engine::elw::compute_elws(&graph, &Retiming::zero(&graph), config.elw).unwrap();
    let elws_after = ser_engine::elw::compute_elws(&graph, &moved, config.elw).unwrap();
    for name in ["A", "B"] {
        let v = graph.vertex_of(circuit.find(name).unwrap()).unwrap();
        assert_eq!(
            elws_after[v.index()].total_length(),
            elws_before[v.index()].total_length() + 1,
            "{name}'s ELW grows by 1"
        );
        assert_eq!(elws_after[v.index()].count(), 2, "{name}'s ELW splits");
    }
}

/// Fig. 1, behavioral: MinObs takes the trap move, MinObsWin refuses it
/// under the §V-style `R_min`, and ends with the lower real SER.
#[test]
fn fig1_minobswin_refuses_the_trap() {
    let circuit = samples::fig1_like();
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays).unwrap();
    let f = graph.vertex_of(circuit.find("F").unwrap()).unwrap();
    let mut moved = Retiming::zero(&graph);
    moved.set(f, -1);
    let phi = retime::timing::clock_period(&graph, &moved)
        .unwrap()
        .max(retime::timing::clock_period(&graph, &Retiming::zero(&graph)).unwrap());
    let params = ElwParams::with_phi(phi);
    let sim = SimConfig::small();
    let trace = FrameTrace::simulate(&circuit, sim);
    let observability = Observability::compute(&circuit, &trace);
    let vertex_obs = vertex_observabilities(&circuit, &graph, &observability);
    let r0 = Retiming::zero(&graph);
    let labels = LrLabels::compute(&graph, &r0, params).unwrap();
    let r_min = labels.min_short_path(&graph, &r0).unwrap();
    assert!(r_min > 3, "the J-side short paths set a meaningful R_min");
    let problem =
        Problem::from_observabilities(&graph, &vertex_obs, sim.num_vectors, params, r_min);

    let ref_sol = SolverSession::new(&graph, &problem)
        .config(SolverConfig::default().with_p2(false))
        .initial(r0.clone())
        .run()
        .unwrap();
    let win_sol = SolverSession::new(&graph, &problem)
        .initial(r0)
        .run()
        .unwrap();
    assert_eq!(ref_sol.retiming.get(f), -1, "MinObs takes the move");
    assert_eq!(win_sol.retiming.get(f), 0, "MinObsWin refuses it");
    assert!(win_sol.stats.p2_fixes >= 1, "P2 machinery fired");

    let config = SerConfig {
        sim,
        delays: delays.clone(),
        elw: params,
        ..SerConfig::with_phi(phi)
    };
    let ser_of = |r: &Retiming| {
        let rebuilt = apply_retiming(&circuit, &graph, r).unwrap();
        analyze(&rebuilt, &config).unwrap().ser
    };
    assert!(
        ser_of(&win_sol.retiming) < ser_of(&ref_sol.retiming),
        "the ELW-aware result must have lower real SER"
    );
}

/// Fig. 2(a): a P0 violation names the upstream vertex as the dragged
/// constraint target.
#[test]
fn fig2a_p0_constraint() {
    let circuit = samples::pipeline(6, 3);
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
    let counts = vec![1i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(20), 1);
    let s1 = graph.vertex_of(circuit.find("s1").unwrap()).unwrap();
    let mut r = Retiming::zero(&graph);
    r.add(s1, -1);
    match find_violation(&graph, &problem, &r) {
        Some(Violation::P0 { edge, weight }) => {
            assert_eq!(weight, -1);
            assert_eq!(graph.edge(edge).to, s1);
        }
        other => panic!("expected P0, got {other:?}"),
    }
}

/// Fig. 2(b): a P1 violation carries the path head and the `lt`
/// witness.
#[test]
fn fig2b_p1_constraint() {
    let circuit = samples::pipeline(9, 3);
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
    let counts = vec![1i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(3), 1);
    let s3 = graph.vertex_of(circuit.find("s3").unwrap()).unwrap();
    let mut r = Retiming::zero(&graph);
    r.add(s3, -1); // merge two 3-gate segments into 6 > phi
    match find_violation(&graph, &problem, &r) {
        Some(Violation::P1(v)) => {
            assert!(v.slack < 0);
            assert_ne!(v.vertex, v.lt);
        }
        other => panic!("expected P1, got {other:?}"),
    }
}

/// Fig. 2(c): a P2 violation carries the short-path head and the `rt`
/// witness whose registered out-edge must be cleared.
#[test]
fn fig2c_p2_constraint() {
    // Two-gate segments; R_min = 2 is met initially, and moving q1
    // forward over c1 leaves a 1-delay launched path.
    let mut b = CircuitBuilder::new("fig2c");
    b.input("in");
    b.gate("a", GateKind::Not, &["in"]).unwrap();
    b.gate("bb", GateKind::Not, &["a"]).unwrap();
    b.dff("q1", "bb").unwrap();
    b.gate("c1", GateKind::Not, &["q1"]).unwrap();
    b.gate("c2", GateKind::Not, &["c1"]).unwrap();
    b.dff("q2", "c2").unwrap();
    b.gate("d1", GateKind::Not, &["q2"]).unwrap();
    b.gate("d2", GateKind::Not, &["d1"]).unwrap();
    b.output("d2").unwrap();
    let circuit = b.build().unwrap();
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit()).unwrap();
    let counts = vec![1i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(10), 2);
    assert!(find_violation(&graph, &problem, &Retiming::zero(&graph)).is_none());
    let vc = graph.vertex_of(circuit.find("c1").unwrap()).unwrap();
    let mut r = Retiming::zero(&graph);
    r.add(vc, -1);
    match find_violation(&graph, &problem, &r) {
        Some(Violation::P2(v)) => {
            assert!(v.short_path < 2);
            // rt's registered out-edge is the one to clear.
            let has_registered_out = graph
                .out_edges(v.rt)
                .iter()
                .any(|&e| graph.retimed_weight(e, &r) > 0);
            assert!(has_registered_out);
        }
        other => panic!("expected P2, got {other:?}"),
    }
}

/// Fig. 3: linking two positive trees requires a weight update, which
/// the forest realizes by `BreakTree` — the defining extension of the
/// *weighted* regular forest.
#[test]
fn fig3_positive_positive_link_updates_weight() {
    // u and x positive; y a cost. First x drags y (weight 1), then u
    // needs y with weight 2: y must be broken out and relinked.
    let mut forest = WeightedRegularForest::new(vec![0, 10, 8, -3]);
    let (u, x, y) = (VertexId::new(1), VertexId::new(2), VertexId::new(3));
    assert!(forest.update(x, y, 1));
    assert!(forest.same_tree(x, y));
    // Fig. 3(b): u (another positive tree) needs y with a new weight.
    assert!(forest.update(u, y, 2));
    assert_eq!(forest.weight(y), 2);
    assert!(forest.same_tree(u, y), "y moved under u");
    forest.check_invariants().unwrap();
    // The positive set still fires all three (total gain 10+8-6 > 0 in
    // whatever tree arrangement regularity produced).
    let pos = forest.positive_set();
    assert!(pos.contains(&u));
}
