//! Differential proptest suite for the parallel arena SER engine: on
//! random generated circuits, for every worker count and vector width,
//! the levelized arena engine must be bit-identical to the scalar
//! per-`Signature` oracle — same frame traces, same observabilities,
//! same `analyze` reports — and the sampled-audit circuit breaker must
//! catch a sabotaged worker and fall back to the scalar engine.

use netlist::generator::GeneratorConfig;
use netlist::Circuit;
use proptest::prelude::*;
use ser_engine::odc::{exact_fault_injection, Observability, SABOTAGE_ODC_SEED};
use ser_engine::scalar::{self, ScalarTrace};
use ser_engine::sim::{FrameTrace, SimConfig, SABOTAGE_SIM_SEED};
use ser_engine::{analyze, SerConfig};

fn circuit_of(seed: u64) -> Circuit {
    GeneratorConfig::new("pid", seed)
        .gates(40 + (seed as usize % 40))
        .registers(6 + (seed as usize % 8))
        .build()
}

fn config_of(num_vectors: usize, threads: usize) -> SimConfig {
    SimConfig {
        num_vectors,
        frames: 6,
        warmup: 4,
        seed: 0xC0FFEE ^ num_vectors as u64,
        threads,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The arena engine's frame trace equals the scalar oracle's,
    /// signature by signature, at every worker count and vector width.
    #[test]
    fn frame_trace_matches_scalar_oracle(
        seed in 0u64..10,
        threads in prop::sample::select(vec![1usize, 2, 7]),
        num_vectors in prop::sample::select(vec![64usize, 256, 2048]),
    ) {
        let circuit = circuit_of(seed);
        let config = config_of(num_vectors, threads);
        let trace = FrameTrace::simulate(&circuit, config);
        let oracle = ScalarTrace::simulate(&circuit, config);
        prop_assert!(trace.engine().trips == 0 && !trace.engine().scalar_fallback);
        for f in 0..config.frames {
            for (id, _) in circuit.iter() {
                prop_assert!(
                    trace.value(f, id) == *oracle.value(f, id),
                    "frame {f}, gate {}", circuit.gate(id).name()
                );
            }
        }
    }

    /// Observabilities (and the frame-0 ODC masks) are byte-identical
    /// between the parallel arena backward pass and the scalar oracle.
    #[test]
    fn observability_matches_scalar_oracle(
        seed in 0u64..10,
        threads in prop::sample::select(vec![1usize, 2, 7]),
        num_vectors in prop::sample::select(vec![64usize, 256]),
    ) {
        let circuit = circuit_of(seed);
        let config = config_of(num_vectors, threads);
        let trace = FrameTrace::simulate(&circuit, config);
        let obs = Observability::compute(&circuit, &trace);
        let oracle_trace = ScalarTrace::simulate(&circuit, config);
        let (oracle_obs, oracle_masks) = scalar::observability(&circuit, &oracle_trace);
        prop_assert_eq!(obs.as_slice(), &oracle_obs[..]);
        for (id, _) in circuit.iter() {
            prop_assert!(
                obs.odc_mask(id) == &oracle_masks[id.index()],
                "odc mask of {}", circuit.gate(id).name()
            );
        }
        if threads > 1 {
            prop_assert!(obs.engine().audited_layers > 0, "audits must sample");
        }
        prop_assert!(obs.engine().is_clean());
    }

    /// The full eq. (4) analysis — the user-visible report — does not
    /// depend on the worker count, bit for bit.
    #[test]
    fn analyze_report_is_thread_invariant(
        seed in 0u64..8,
        threads in prop::sample::select(vec![2usize, 7]),
    ) {
        let circuit = circuit_of(seed);
        let mut config = SerConfig::small(40 + seed as i64 % 20);
        config.sim.threads = 1;
        let baseline = analyze(&circuit, &config).unwrap();
        config.sim.threads = threads;
        let parallel = analyze(&circuit, &config).unwrap();
        prop_assert_eq!(baseline.ser, parallel.ser);
        prop_assert_eq!(baseline.ser_logic_only, parallel.ser_logic_only);
        prop_assert_eq!(&baseline.obs, &parallel.obs);
        prop_assert_eq!(baseline.register_observability, parallel.register_observability);
        prop_assert!(baseline.engine.is_clean() && parallel.engine.is_clean());
    }

    /// The parallel exact-injection reference equals its scalar twin.
    #[test]
    fn exact_injection_is_thread_invariant(
        seed in 0u64..6,
        threads in prop::sample::select(vec![2usize, 7]),
    ) {
        let circuit = circuit_of(seed);
        let config = config_of(256, threads);
        let got = exact_fault_injection(&circuit, config);
        let oracle = scalar::exact_fault_injection(&circuit, config);
        prop_assert_eq!(got, oracle);
    }

    /// A sabotaged simulation worker is caught by the sampled audit:
    /// the breaker trips, the engine falls back to the scalar oracle,
    /// and the reported values are still the correct ones.
    #[test]
    fn sabotaged_sim_worker_trips_breaker_and_results_stay_correct(
        seed in 0u64..6,
        threads in prop::sample::select(vec![2usize, 7]),
    ) {
        let circuit = circuit_of(seed);
        let sabotaged = SimConfig {
            seed: SABOTAGE_SIM_SEED,
            threads,
            ..config_of(256, threads)
        };
        let trace = FrameTrace::simulate(&circuit, sabotaged);
        prop_assert!(trace.engine().trips >= 1, "audit must catch the sabotage");
        prop_assert!(trace.engine().scalar_fallback);
        let oracle = ScalarTrace::simulate(&circuit, sabotaged);
        for f in 0..sabotaged.frames {
            for (id, _) in circuit.iter() {
                prop_assert!(
                    trace.value(f, id) == *oracle.value(f, id),
                    "fallback diverged at frame {f}, gate {}", circuit.gate(id).name()
                );
            }
        }
        // The same seed at one thread has no sabotage target and stays
        // clean — the hook only fires on pooled runs.
        let clean = FrameTrace::simulate(&circuit, SimConfig { threads: 1, ..sabotaged });
        prop_assert!(clean.engine().is_clean());
    }

    /// A sabotaged ODC worker likewise trips the backward-pass breaker
    /// and the fallback reproduces the scalar observabilities exactly.
    #[test]
    fn sabotaged_odc_worker_trips_breaker_and_results_stay_correct(
        seed in 0u64..6,
        threads in prop::sample::select(vec![2usize, 7]),
    ) {
        let circuit = circuit_of(seed);
        let sabotaged = SimConfig {
            seed: SABOTAGE_ODC_SEED,
            threads,
            ..config_of(256, threads)
        };
        let trace = FrameTrace::simulate(&circuit, sabotaged);
        prop_assert!(trace.engine().is_clean(), "sim is not the sabotage target");
        let obs = Observability::compute(&circuit, &trace);
        prop_assert!(obs.engine().trips >= 1, "audit must catch the sabotage");
        prop_assert!(obs.engine().scalar_fallback);
        let oracle_trace = ScalarTrace::simulate(&circuit, sabotaged);
        let (oracle_obs, _) = scalar::observability(&circuit, &oracle_trace);
        prop_assert_eq!(obs.as_slice(), &oracle_obs[..]);
    }
}
