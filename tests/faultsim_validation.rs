//! Integration tests of the Monte-Carlo fault-injection engine against
//! the analytic SER model (the ISSUE's acceptance criteria): agreement
//! on the `netlist::samples` circuits at 100k injections, bit-for-bit
//! determinism for a fixed seed, and statistical compatibility across
//! worker counts.

use faultsim::{
    folded_elw_fraction, run_campaign, CampaignConfig, CrossCheck, FaultAtlas, DEFAULT_TOLERANCE,
};
use netlist::{samples, Circuit};
use ser_engine::{analyze, SerConfig};

fn sample_set() -> Vec<(Circuit, i64)> {
    vec![
        (samples::s27_like(), 30),
        (samples::fig1_like(), 25),
        (samples::pipeline(6, 2), 40),
    ]
}

/// The exact expectation of the campaign estimator: Σ over sites of
/// `err(g) · exact_obs(g) · folded(|ELW(g)|)/Φ`, computed from the
/// atlas's own propagation tables. Unlike the analytic report this has
/// no ODC reconvergence approximation, so the campaign must match it to
/// within pure sampling noise.
fn exact_expected_ser(atlas: &FaultAtlas) -> f64 {
    atlas
        .sites()
        .iter()
        .map(|s| {
            let obs = atlas.detection_mask(s.gate).unwrap().density();
            let timing = folded_elw_fraction(atlas.latch_window(s.gate).unwrap(), atlas.phi());
            s.rate * obs * timing
        })
        .sum()
}

#[test]
fn campaign_agrees_with_analytic_ser_on_samples() {
    for (circuit, phi) in sample_set() {
        let ser = SerConfig::small(phi);
        let report = analyze(&circuit, &ser).unwrap();
        let campaign = run_campaign(
            &circuit,
            &ser,
            &CampaignConfig::new(100_000).with_seed(2026),
        )
        .unwrap();
        let check = CrossCheck::compare(&circuit, &report, &campaign, DEFAULT_TOLERANCE);
        assert!(
            check.ser_agrees,
            "{}: analytic SER {:.4e} outside widened CI [{:.4e}, {:.4e}] (gap {:.2}%)\n{}",
            circuit.name(),
            check.analytic_ser,
            check.ser_ci.0,
            check.ser_ci.1,
            check.ser_gap() * 100.0,
            check.summary()
        );
    }
}

#[test]
fn campaign_matches_exact_expectation_within_ci() {
    // Stricter than the analytic comparison: against the exact
    // expectation there is no systematic term, so the unwidened 95%
    // interval must cover it (all three circuits with one seed — a
    // simultaneous-coverage failure is a real bug, not bad luck).
    for (circuit, phi) in sample_set() {
        let ser = SerConfig::small(phi);
        let atlas = FaultAtlas::build(&circuit, &ser, 0).unwrap();
        let expected = exact_expected_ser(&atlas);
        let campaign =
            run_campaign(&circuit, &ser, &CampaignConfig::new(100_000).with_seed(11)).unwrap();
        let (lo, hi) = campaign.ser_ci();
        assert!(
            lo <= expected && expected <= hi,
            "{}: exact expectation {:.5e} outside CI [{:.5e}, {:.5e}]",
            circuit.name(),
            expected,
            lo,
            hi
        );
    }
}

#[test]
fn cross_check_is_deterministic_for_fixed_seed_and_workers() {
    let circuit = samples::s27_like();
    let ser = SerConfig::small(30);
    let cfg = CampaignConfig::new(30_000).with_seed(77).with_workers(3);
    let report = analyze(&circuit, &ser).unwrap();

    let mut checks = (0..2).map(|_| {
        let campaign = run_campaign(&circuit, &ser, &cfg).unwrap();
        CrossCheck::compare(&circuit, &report, &campaign, DEFAULT_TOLERANCE)
    });
    let a = checks.next().unwrap();
    let b = checks.next().unwrap();

    assert_eq!(a.empirical_ser, b.empirical_ser);
    assert_eq!(a.ser_ci, b.ser_ci);
    assert_eq!(a.ser_agrees, b.ser_agrees);
    assert_eq!(a.sites.len(), b.sites.len());
    for (sa, sb) in a.sites.iter().zip(&b.sites) {
        assert_eq!(sa.gate, sb.gate);
        assert_eq!(sa.trials, sb.trials);
        assert_eq!(sa.empirical_p, sb.empirical_p);
        assert_eq!(sa.ci, sb.ci);
        assert_eq!(sa.within, sb.within);
    }
    assert_eq!(a.summary(), b.summary());
}

#[test]
fn different_seeds_differ() {
    let circuit = samples::s27_like();
    let ser = SerConfig::small(30);
    let a = run_campaign(&circuit, &ser, &CampaignConfig::new(30_000).with_seed(1)).unwrap();
    let b = run_campaign(&circuit, &ser, &CampaignConfig::new(30_000).with_seed(2)).unwrap();
    // Identical tallies under different seeds would mean the seed is
    // ignored somewhere.
    assert_ne!(
        a.sites.iter().map(|s| s.trials).collect::<Vec<_>>(),
        b.sites.iter().map(|s| s.trials).collect::<Vec<_>>()
    );
}

#[test]
fn worker_counts_are_statistically_compatible() {
    let circuit = samples::fig1_like();
    let ser = SerConfig::small(25);
    let runs: Vec<_> = [1usize, 2, 5]
        .iter()
        .map(|&w| {
            run_campaign(
                &circuit,
                &ser,
                &CampaignConfig::new(60_000).with_seed(13).with_workers(w),
            )
            .unwrap()
        })
        .collect();
    for pair in runs.windows(2) {
        let (lo, hi) = pair[0].ser_ci();
        let (lo2, hi2) = pair[1].ser_ci();
        assert!(
            lo <= hi2 && lo2 <= hi,
            "CIs [{lo:.4e}, {hi:.4e}] ({} workers) and [{lo2:.4e}, {hi2:.4e}] ({} workers) disjoint",
            pair[0].workers,
            pair[1].workers
        );
    }
}

#[test]
fn register_latch_counts_track_analytic_register_share() {
    let circuit = samples::s27_like();
    let ser = SerConfig::small(30);
    let campaign = run_campaign(&circuit, &ser, &CampaignConfig::new(50_000).with_seed(3)).unwrap();
    assert_eq!(campaign.register_latches.len(), circuit.registers().len());
    // Every latch is attributed to at least one observation point
    // (a register input or a primary output).
    let attributed: u64 = campaign
        .register_latches
        .iter()
        .map(|&(_, n)| n)
        .sum::<u64>()
        + campaign.po_latches;
    assert!(
        attributed >= campaign.latches,
        "{attributed} attributions < {} latches",
        campaign.latches
    );
    // The circuit's registers do capture faults under the small config.
    assert!(
        campaign.register_latches.iter().any(|&(_, n)| n > 0),
        "no register ever latched in 50k injections"
    );
}
