//! Adversarial parser tests: every input in `tests/corpus/` and every
//! fuzz-generated input must produce a structured `Err` (or, for the
//! random generators, possibly an `Ok`) — never a panic, hang, or
//! allocation blow-up. Run with `PROPTEST_CASES=2048` in CI's
//! `robustness` job for a deeper sweep.

use std::fs;
use std::path::PathBuf;

use netlist::rng::Xoshiro256;
use netlist::{bench_format, blif, verilog, NetlistError, ParseLimits};
use proptest::prelude::*;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn read_corpus(name: &str) -> String {
    let path = corpus_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("corpus file {}: {e}", path.display()))
}

/// Parses `text` with the front end matching the corpus file extension.
fn parse_any(name: &str, text: &str) -> Result<netlist::Circuit, NetlistError> {
    if name.ends_with(".bench") {
        bench_format::parse(text, "corpus")
    } else if name.ends_with(".v") {
        verilog::parse(text)
    } else {
        blif::parse(text)
    }
}

#[test]
fn corpus_files_error_cleanly() {
    let files = [
        "truncated.blif",
        "cyclic_latch.blif",
        "nul_bytes.blif",
        "dup_gates.blif",
        "wide_fanin.blif",
        "dup_gates.bench",
        "garbage.bench",
    ];
    for name in files {
        let text = read_corpus(name);
        let result = parse_any(name, &text);
        let err = result.err().unwrap_or_else(|| {
            panic!("{name}: adversarial corpus input unexpectedly parsed");
        });
        // Every error must render a message without panicking.
        assert!(!err.to_string().is_empty(), "{name}");
    }
}

#[test]
fn corpus_covers_every_designed_failure_mode() {
    let text = read_corpus("nul_bytes.blif");
    match blif::parse(&text) {
        Err(NetlistError::Parse { line, col, .. }) => {
            assert_eq!(line, 2);
            assert!(col > 0, "NUL rejection must carry a column");
        }
        other => panic!("expected a parse error with position, got {other:?}"),
    }
    let text = read_corpus("wide_fanin.blif");
    match blif::parse(&text) {
        Err(NetlistError::LimitExceeded {
            what: "fanin count",
            value: 100,
            ..
        }) => {}
        other => panic!("expected a fanin limit error, got {other:?}"),
    }
    // The same file passes with the limit lifted.
    blif::parse_with_limits(&text, &ParseLimits::unlimited())
        .expect("100-input AND is structurally valid");
    let text = read_corpus("cyclic_latch.blif");
    match blif::parse(&text) {
        Err(NetlistError::CombinationalCycle { .. }) => {}
        other => panic!("expected a combinational-cycle error, got {other:?}"),
    }
    let text = read_corpus("dup_gates.blif");
    let err = blif::parse(&text).unwrap_err();
    assert!(err.to_string().contains("driven more than once"), "{err}");
}

#[test]
fn ten_megabyte_single_line_is_rejected_quickly() {
    // Generated here rather than committed: 10 MB of 'a' on one line.
    // The parsers check limits in reading order (fused into the
    // streaming scanner), so the prefix line must be one every format
    // accepts — `#` is a comment in blif/bench and opaque-but-buffered
    // text in verilog — for the length error to surface at line 2.
    let mut text = String::with_capacity(10_000_100);
    text.push_str("# big\n.inputs ");
    text.push_str(&"a".repeat(10_000_000));
    text.push('\n');
    match blif::parse(&text) {
        Err(NetlistError::LimitExceeded {
            what: "line length",
            ..
        }) => {}
        other => panic!("expected a line-length limit error, got {other:?}"),
    }
    match bench_format::parse(&text, "big") {
        Err(NetlistError::LimitExceeded {
            what: "line length",
            ..
        }) => {}
        other => panic!("expected a line-length limit error, got {other:?}"),
    }
    match verilog::parse(&text) {
        Err(NetlistError::LimitExceeded {
            what: "line length",
            ..
        }) => {}
        other => panic!("expected a line-length limit error, got {other:?}"),
    }
}

/// Random byte soup, lossily decoded: parsing must terminate with
/// `Ok` or `Err`, never panic.
fn byte_soup(seed: u64, len: usize) -> String {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Random text over the BLIF/bench token alphabet — far likelier to
/// reach deep parser states than raw bytes.
fn token_soup(seed: u64, tokens: usize) -> String {
    const VOCAB: &[&str] = &[
        ".model",
        ".inputs",
        ".outputs",
        ".names",
        ".latch",
        ".end",
        ".exdc",
        "\n",
        "\n",
        "\n",
        "a",
        "b",
        "y",
        "q",
        "x",
        "0",
        "1",
        "-",
        "11",
        "0-",
        "1 1",
        "\\",
        "#",
        "=",
        "(",
        ")",
        ",",
        "INPUT(a)",
        "OUTPUT(y)",
        "DFF",
        "AND",
        "NOT",
        "module",
        "endmodule",
        "input",
        "output",
        "wire",
        "dff",
        "and",
        ";",
    ];
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out = String::new();
    for _ in 0..tokens {
        out.push_str(VOCAB[rng.gen_range(VOCAB.len())]);
        out.push(' ');
    }
    out
}

/// Parses `text` twice — in memory and through the streaming reader
/// path [`netlist::read_path`] uses — and asserts the outcomes agree:
/// equal circuits on `Ok`, equal rendered errors on `Err`. The circuit
/// name is pinned to the temp file's stem so the `.bench` front end
/// (which names circuits from the path) cannot differ spuriously.
fn assert_streaming_matches_in_memory(ext: &str, text: &str, case: u64) {
    use std::io::Cursor;
    let limits = ParseLimits::default();
    let name = format!("fuzz_stream_{case}");
    let reader = Cursor::new(text.as_bytes());
    let (in_memory, streamed) = match ext {
        "bench" => (
            bench_format::parse_with_limits(text, &name, &limits),
            bench_format::parse_reader(reader, &name, &limits),
        ),
        "blif" => (
            blif::parse_with_limits(text, &limits),
            blif::parse_reader(reader, &limits),
        ),
        _ => (
            verilog::parse_with_limits(text, &limits),
            verilog::parse_reader(reader, &limits),
        ),
    };
    match (in_memory, streamed) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{ext}: circuits diverge on case {case}"),
        (Err(a), Err(b)) => {
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "{ext}: errors diverge on case {case}"
            );
        }
        (a, b) => panic!(
            "{ext}: outcome diverges on case {case}: in-memory {:?} vs streamed {:?}",
            a.map(|c| c.len()),
            b.map(|c| c.len())
        ),
    }
}

#[test]
fn streaming_matches_in_memory_on_the_corpus() {
    for name in [
        "truncated.blif",
        "cyclic_latch.blif",
        "nul_bytes.blif",
        "dup_gates.blif",
        "wide_fanin.blif",
        "dup_gates.bench",
        "garbage.bench",
    ] {
        let text = read_corpus(name);
        let ext = name.rsplit('.').next().unwrap();
        assert_streaming_matches_in_memory(ext, &text, 0);
    }
}

proptest! {
    /// The streaming reader path and the in-memory path must be
    /// byte-identical in behavior over adversarial inputs, in every
    /// format — the guarantee `read_path` rests on.
    #[test]
    fn streaming_matches_in_memory_on_token_soup(seed in 0u64..1_000_000, tokens in 0usize..512) {
        let text = token_soup(seed, tokens);
        for ext in ["bench", "blif", "v"] {
            assert_streaming_matches_in_memory(ext, &text, seed);
        }
    }

    #[test]
    fn streaming_matches_in_memory_on_byte_soup(seed in 0u64..1_000_000, len in 0usize..4096) {
        let text = byte_soup(seed, len);
        for ext in ["bench", "blif", "v"] {
            assert_streaming_matches_in_memory(ext, &text, seed);
        }
    }

    #[test]
    fn blif_never_panics_on_byte_soup(seed in 0u64..1_000_000, len in 0usize..4096) {
        let text = byte_soup(seed, len);
        let _ = blif::parse(&text);
    }

    #[test]
    fn bench_never_panics_on_byte_soup(seed in 0u64..1_000_000, len in 0usize..4096) {
        let text = byte_soup(seed, len);
        let _ = bench_format::parse(&text, "fuzz");
    }

    #[test]
    fn verilog_never_panics_on_byte_soup(seed in 0u64..1_000_000, len in 0usize..4096) {
        let text = byte_soup(seed, len);
        let _ = verilog::parse(&text);
    }

    #[test]
    fn blif_never_panics_on_token_soup(seed in 0u64..1_000_000, tokens in 0usize..512) {
        let text = token_soup(seed, tokens);
        let _ = blif::parse(&text);
    }

    #[test]
    fn bench_never_panics_on_token_soup(seed in 0u64..1_000_000, tokens in 0usize..512) {
        let text = token_soup(seed, tokens);
        let _ = bench_format::parse(&text, "fuzz");
    }

    #[test]
    fn verilog_never_panics_on_token_soup(seed in 0u64..1_000_000, tokens in 0usize..512) {
        let text = token_soup(seed, tokens);
        let _ = verilog::parse(&text);
    }

    /// Tight limits never panic either, whatever the input.
    #[test]
    fn tight_limits_never_panic(seed in 0u64..1_000_000, tokens in 0usize..256) {
        let text = token_soup(seed, tokens);
        let limits = ParseLimits::default()
            .with_max_fanin(2)
            .with_max_gates(8)
            .with_max_name_len(4)
            .with_max_line_len(64);
        let _ = blif::parse_with_limits(&text, &limits);
        let _ = bench_format::parse_with_limits(&text, "fuzz", &limits);
        let _ = verilog::parse_with_limits(&text, &limits);
    }
}
