//! Property-based tests (proptest) over the core data structures and
//! invariants of the suite.

use faultsim::{folded_elw_fraction, FaultAtlas};
use minobswin::closure::ConstraintSystem;
use minobswin::forest::WeightedRegularForest;
use netlist::generator::GeneratorConfig;
use netlist::{DelayModel, GateKind};
use proptest::prelude::*;
use retime::timing::clock_period;
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming, VertexId};
use ser_engine::IntervalSet;

proptest! {
    /// IntervalSet insertion keeps intervals sorted, disjoint and
    /// non-touching, and total_length equals a brute-force point count
    /// over the half-open interpretation... here closed intervals:
    /// sum of (r - l).
    #[test]
    fn interval_set_invariants(ops in prop::collection::vec((0i64..200, 0i64..40), 0..40)) {
        let mut set = IntervalSet::new();
        for (lo, len) in ops {
            set.insert(lo, lo + len);
        }
        let intervals = set.intervals();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "sorted and disjoint: {:?}", intervals);
        }
        let total: i64 = intervals.iter().map(|(l, r)| r - l).sum();
        prop_assert_eq!(total, set.total_length());
        if let (Some(l), Some(r)) = (set.left(), set.right()) {
            prop_assert!(l <= r);
            prop_assert!(set.contains(l) && set.contains(r));
        }
    }

    /// Shifting an interval set preserves its measure and count.
    #[test]
    fn interval_shift_preserves_measure(
        ops in prop::collection::vec((0i64..100, 0i64..20), 1..20),
        delta in -500i64..500,
    ) {
        let mut set = IntervalSet::new();
        for (lo, len) in ops {
            set.insert(lo, lo + len);
        }
        let shifted = set.shifted(delta);
        prop_assert_eq!(set.total_length(), shifted.total_length());
        prop_assert_eq!(set.count(), shifted.count());
    }

    /// Random generated circuits always build valid retiming graphs
    /// whose identity retiming is P0-feasible, and Theorem 1 holds:
    /// the L/R labels equal the exact ELW extremes.
    #[test]
    fn theorem1_on_random_circuits(seed in 0u64..40) {
        let circuit = GeneratorConfig::new("prop", seed)
            .gates(40 + (seed as usize % 40))
            .registers(8 + (seed as usize % 8))
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let r = Retiming::zero(&graph);
        prop_assert!(graph.check_nonnegative(&r).is_ok());
        let phi = clock_period(&graph, &r).unwrap() + 2;
        let params = ElwParams::with_phi(phi);
        let labels = LrLabels::compute(&graph, &r, params).unwrap();
        let elws = ser_engine::elw::compute_elws(&graph, &r, params).unwrap();
        for v in graph.vertices() {
            let set = &elws[v.index()];
            match (labels.l(v), labels.r(v)) {
                (Some(l), Some(rr)) => {
                    prop_assert_eq!(Some(l), set.left());
                    prop_assert_eq!(Some(rr), set.right());
                    prop_assert!(rr >= l);
                }
                _ => prop_assert!(set.is_empty()),
            }
        }
    }

    /// The max-gain closed set really is closed, frozen-free and of
    /// positive gain, for random constraint systems.
    #[test]
    fn closure_selection_invariants(
        gains in prop::collection::vec(-50i64..50, 2..30),
        arcs in prop::collection::vec((1usize..30, 1usize..30), 0..60),
        frozen in prop::collection::vec(1usize..30, 0..5),
    ) {
        let mut b = vec![0i64];
        b.extend(gains.iter());
        let n = b.len();
        let mut cs = ConstraintSystem::new(b);
        for (p, q) in arcs {
            let (p, q) = (p % n, q % n);
            if p != 0 && q != 0 && p != q {
                cs.add_arc(VertexId::new(p), VertexId::new(q));
            }
        }
        for f in frozen {
            if f % n != 0 {
                cs.freeze(VertexId::new(f % n));
            }
        }
        let set = cs.max_gain_closed_set();
        if !set.is_empty() {
            prop_assert!(cs.is_closed(&set));
            prop_assert!(cs.gain_of(&set) > 0);
            for v in &set {
                prop_assert!(!cs.is_frozen(*v));
            }
        }
    }

    /// The weighted regular forest keeps its structural invariants
    /// under random update/freeze/break sequences.
    #[test]
    fn forest_invariants_under_random_ops(
        gains in prop::collection::vec(-20i64..20, 3..16),
        ops in prop::collection::vec((0usize..3, 1usize..16, 1usize..16, 1i64..4), 0..40),
    ) {
        let mut b = vec![0i64];
        b.extend(gains.iter());
        let n = b.len();
        let mut forest = WeightedRegularForest::new(b);
        for (kind, p, q, w) in ops {
            let p = 1 + (p % (n - 1));
            let q = 1 + (q % (n - 1));
            match kind {
                0 if p != q => {
                    forest.update(VertexId::new(p), VertexId::new(q), w);
                }
                1 => forest.freeze(VertexId::new(p)),
                _ => forest.break_tree(VertexId::new(q)),
            }
            prop_assert!(forest.check_invariants().is_ok());
            prop_assert!(forest.num_constraints() < n);
        }
        // Positive set members really belong to positive trees.
        for v in forest.positive_set() {
            let gain = forest.tree_gain(v);
            prop_assert!(matches!(gain, Some(g) if g > 0));
        }
    }

    /// The faultsim atlas's latch decisions over exhaustively
    /// enumerated single faults match the exact fault-injection
    /// validator in `ser_engine::odc`: for every strike site, the
    /// fraction of vectors whose flip reaches an observation point
    /// equals the exact per-gate detection probability, and register
    /// sites inherit their driver's decision exactly.
    #[test]
    fn faultsim_latch_decisions_match_exact_fault_injection(seed in 0u64..20) {
        let circuit = GeneratorConfig::new("fsim", seed)
            .gates(30 + (seed as usize % 30))
            .registers(4 + (seed as usize % 6))
            .build();
        let config = ser_engine::SerConfig::small(40 + seed as i64 % 20);
        let atlas = FaultAtlas::build(&circuit, &config, 1).unwrap();
        let exact = ser_engine::odc::exact_fault_injection(&circuit, config.sim);
        for site in atlas.sites() {
            let mask = atlas.detection_mask(site.gate).unwrap();
            let reference = if circuit.gate(site.gate).kind() == GateKind::Dff {
                // A register strike is modeled as a strike at its
                // combinational driver (registers are wires in the
                // time-frame expansion).
                exact[ser_engine::register_driver(&circuit, site.gate).index()]
            } else {
                exact[site.gate.index()]
            };
            prop_assert!(
                (mask.density() - reference).abs() < 1e-12,
                "site {}: atlas {} vs exact {}",
                circuit.gate(site.gate).name(),
                mask.density(),
                reference
            );
        }
    }

    /// The folded timing-test expectation never exceeds the raw
    /// `|ELW|/Φ` fraction and both lie in [0, 1] range rules: folding
    /// can only merge probability mass, never create it.
    #[test]
    fn folded_fraction_bounded_by_raw_fraction(
        ops in prop::collection::vec((0i64..120, 0i64..30), 1..10),
        phi in 20i64..100,
    ) {
        let mut set = IntervalSet::new();
        for (lo, len) in ops {
            set.insert(lo, lo + len);
        }
        let folded = folded_elw_fraction(&set, phi);
        let raw = set.total_length() as f64 / phi as f64;
        prop_assert!((0.0..=1.0).contains(&folded));
        prop_assert!(folded <= raw.min(1.0) + 1e-12);
    }

    /// Netlist round trip through .bench preserves structure for
    /// arbitrary generated circuits.
    #[test]
    fn bench_round_trip_structure(seed in 0u64..30) {
        let circuit = GeneratorConfig::new("rt", seed)
            .gates(30 + (seed as usize % 50))
            .registers(5 + (seed as usize % 10))
            .build();
        let text = netlist::bench_format::write(&circuit);
        let reparsed = netlist::bench_format::parse(&text, circuit.name()).unwrap();
        prop_assert_eq!(circuit.len(), reparsed.len());
        prop_assert_eq!(circuit.num_registers(), reparsed.num_registers());
        prop_assert_eq!(circuit.num_edges(), reparsed.num_edges());
        for (_, gate) in circuit.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            let rid = reparsed.find(gate.name()).unwrap();
            prop_assert_eq!(gate.kind(), reparsed.gate(rid).kind());
        }
    }

    /// Netlist round trip through BLIF preserves structure for
    /// arbitrary generated circuits (the printer and parser are
    /// inverses up to gate naming of outputs).
    #[test]
    fn blif_round_trip_structure(seed in 0u64..30) {
        let circuit = GeneratorConfig::new("rtb", seed)
            .gates(30 + (seed as usize % 50))
            .registers(5 + (seed as usize % 10))
            .build();
        let text = netlist::blif::write(&circuit);
        let reparsed = netlist::blif::parse(&text).unwrap();
        prop_assert_eq!(circuit.len(), reparsed.len());
        prop_assert_eq!(circuit.num_registers(), reparsed.num_registers());
        prop_assert_eq!(circuit.num_edges(), reparsed.num_edges());
        for (_, gate) in circuit.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            let rid = reparsed.find(gate.name()).unwrap();
            prop_assert_eq!(gate.kind(), reparsed.gate(rid).kind());
        }
        // A second trip is a fixpoint: writing the reparsed circuit
        // reproduces the text byte-for-byte.
        prop_assert_eq!(netlist::blif::write(&reparsed), text);
    }

    /// Differential suite for the warm-started closure engine: random
    /// mutation sequences (arc adds, weight raises, freezes) with a
    /// selection after every step return exactly the canonical set the
    /// from-scratch engine computes — same members, same gain — at a
    /// forced-fallback (`pct = 0`), mixed (`35`) and never-fallback
    /// (`100`) rebuild threshold.
    #[test]
    fn warm_closure_matches_fresh_closure(
        gains in prop::collection::vec(-40i64..40, 4..24),
        ops in prop::collection::vec(
            (0usize..3, 1usize..24, 1usize..24, 2i64..5),
            1..40,
        ),
        pct in prop::sample::select(vec![0u32, 35, 100]),
    ) {
        use minobswin::closure_inc::IncrementalClosure;
        use minobswin::incremental::PerfCounters;

        let mut b = vec![0i64];
        b.extend(gains.iter());
        let n = b.len();
        let mut cs = ConstraintSystem::new(b);
        let mut engine = IncrementalClosure::new(pct);
        let mut perf = PerfCounters::default();
        let initial = engine.select(&cs, &mut perf);
        prop_assert_eq!(&initial, &cs.max_gain_closed_set());
        for (kind, p, q, w) in ops {
            let p = VertexId::new(1 + p % (n - 1));
            let q = VertexId::new(1 + q % (n - 1));
            match kind {
                0 if p != q => {
                    cs.add_arc(p, q);
                }
                1 => {
                    cs.raise_weight(q, w);
                }
                _ => cs.freeze(p),
            }
            let warm = engine.select(&cs, &mut perf);
            let fresh = cs.max_gain_closed_set();
            prop_assert_eq!(&warm, &fresh, "pct {}", pct);
            prop_assert_eq!(cs.gain_of(&warm), cs.gain_of(&fresh));
            // Selecting again without mutations serves the cache and
            // must still agree.
            prop_assert_eq!(&engine.select(&cs, &mut perf), &fresh);
        }
        if pct == 100 {
            prop_assert_eq!(perf.closure_fallback_full, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Feasibility of the solver output on random instances, with the
    /// full pipeline initialization.
    #[test]
    fn solver_output_always_feasible(seed in 0u64..12) {
        use minobswin::init::InitConfig;
        use minobswin::verify::check_feasible;
        use minobswin::{Problem, SolverSession};

        let circuit = GeneratorConfig::new("feas", seed)
            .gates(70)
            .registers(14)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let init = InitConfig::default().initialize(&graph).unwrap();
        let params = ElwParams { phi: init.phi, t_setup: 0, t_hold: 2 };
        let counts = vec![3i64; graph.num_vertices()];
        let problem = Problem::from_observability_counts(&graph, &counts, params, init.r_min);
        let sol = SolverSession::new(&graph, &problem)
            .initial(init.retiming)
            .run()
            .unwrap();
        prop_assert!(check_feasible(&graph, &problem, &sol.retiming).is_ok());
        prop_assert!(sol.objective_gain >= 0);
    }

    /// Differential oracle for the incremental constraint engine: after
    /// every check — accepted or rejected, incremental or fallen back
    /// to a full recompute (`pct = 0` forces the fallback on every
    /// check) — the incremental verdict equals the from-scratch
    /// `find_violation`, and the checker's retained labels stay
    /// bit-identical to a fresh `LrLabels::compute` of its base.
    #[test]
    fn incremental_checker_matches_from_scratch_oracle(
        seed in 0u64..10,
        moves in prop::collection::vec(
            (prop::collection::vec(0usize..64, 1..4), prop::sample::select(vec![-1i64, 1])),
            1..15,
        ),
        pct in prop::sample::select(vec![0u32, 35, 100]),
    ) {
        use minobswin::incremental::{IncrementalChecker, PerfCounters};
        use minobswin::init::InitConfig;
        use minobswin::verify::find_violation;
        use minobswin::Problem;

        let circuit = GeneratorConfig::new("inc", seed)
            .gates(50)
            .registers(10)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let init = InitConfig::default().initialize(&graph).unwrap();
        let params = ElwParams { phi: init.phi, t_setup: 0, t_hold: 2 };
        let counts = vec![2i64; graph.num_vertices()];
        let problem = Problem::from_observability_counts(&graph, &counts, params, init.r_min);
        prop_assume!(find_violation(&graph, &problem, &init.retiming).is_none());

        let mut committed = init.retiming.clone();
        let mut checker = IncrementalChecker::new(&graph, &problem, committed.clone(), pct);
        let mut counters = PerfCounters::default();
        for (indices, delta) in moves {
            // A closed-set-style move: a few distinct vertices shifted
            // by the same amount.
            let mut move_set: Vec<VertexId> = indices
                .iter()
                .map(|&i| VertexId::new(1 + i % (graph.num_vertices() - 1)))
                .collect();
            move_set.sort();
            move_set.dedup();
            let mut r_tent = committed.clone();
            for &v in &move_set {
                r_tent.add(v, delta);
            }
            let expected = find_violation(&graph, &problem, &r_tent);
            let got = checker.check_and_commit(&r_tent, &move_set, &mut counters);
            prop_assert_eq!(&got, &expected, "seed {} move {:?}{:+}", seed, move_set, delta);
            if got.is_none() {
                committed = r_tent;
            }
            prop_assert_eq!(checker.base(), &committed);
            let oracle = LrLabels::compute(&graph, &committed, params).unwrap();
            prop_assert_eq!(checker.labels(), &oracle, "labels diverged, seed {}", seed);
        }
        prop_assert!(counters.checks() > 0);
    }

    /// End-to-end differential run of the closure engines: a full
    /// solve with the warm-started engine (at the forced-fallback,
    /// default and never-fallback thresholds) produces the identical
    /// retiming, objective gain and commit trajectory as fresh Dinic
    /// builds — and never touches more arcs.
    #[test]
    fn warm_closure_solver_matches_fresh_solver(
        seed in 0u64..8,
        pct in prop::sample::select(vec![0u32, 50, 100]),
    ) {
        use minobswin::algorithm::SolverConfig;
        use minobswin::closure_inc::ClosureEngine;
        use minobswin::init::InitConfig;
        use minobswin::{Problem, SolverSession};

        let circuit = GeneratorConfig::new("wcl", seed)
            .gates(60)
            .registers(12)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let init = InitConfig::default().initialize(&graph).unwrap();
        let params = ElwParams { phi: init.phi, t_setup: 0, t_hold: 2 };
        let counts = vec![2i64; graph.num_vertices()];
        let problem = Problem::from_observability_counts(&graph, &counts, params, init.r_min);
        let warm = SolverSession::new(&graph, &problem)
            .config(SolverConfig::default().with_closure_engine(
                ClosureEngine::Warm { rebuild_percent: pct },
            ))
            .initial(init.retiming.clone())
            .run()
            .unwrap();
        let fresh = SolverSession::new(&graph, &problem)
            .config(SolverConfig::default().with_closure_engine(ClosureEngine::Fresh))
            .initial(init.retiming)
            .run()
            .unwrap();
        prop_assert_eq!(&warm.retiming, &fresh.retiming, "pct {}", pct);
        prop_assert_eq!(warm.objective_gain, fresh.objective_gain);
        prop_assert_eq!(warm.stats.commits, fresh.stats.commits);
        prop_assert_eq!(warm.stats.perf.closure_calls, fresh.stats.perf.closure_calls);
        // At pct = 0 every delta call rebuilds, so the only savings are
        // the cached post-commit calls — and the two engines insert
        // constraint arcs in different orders (log order vs HashMap
        // order), making Dinic explore different augmenting paths of
        // the same maximum flow. Allow that exploration-order noise;
        // the cut itself is bit-identical (asserted above).
        let budget = fresh.stats.perf.closure_arcs_touched
            + fresh.stats.perf.closure_arcs_touched / 20;
        prop_assert!(
            warm.stats.perf.closure_arcs_touched <= budget,
            "pct {}: warm touched {} arcs, fresh {}",
            pct,
            warm.stats.perf.closure_arcs_touched,
            fresh.stats.perf.closure_arcs_touched
        );
        if pct == 100 {
            // Never falling back, the warm engine must realize real
            // reuse, not just tie the from-scratch engine.
            prop_assert!(
                warm.stats.perf.closure_arcs_touched * 2
                    <= fresh.stats.perf.closure_arcs_touched,
                "pct 100: warm touched {} arcs, fresh only {}",
                warm.stats.perf.closure_arcs_touched,
                fresh.stats.perf.closure_arcs_touched
            );
            prop_assert_eq!(warm.stats.perf.closure_fallback_full, 0);
        }
    }
}
