//! End-to-end test of `retimer serve` over the stdin/stdout NDJSON
//! protocol: submit real and garbage jobs, read the event stream,
//! close stdin (the portable drain signal), and check the exit code.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const BENCH_SOURCE: &str = "INPUT(G0)\nINPUT(G1)\nOUTPUT(G7)\nG3 = DFF(G6)\nG4 = AND(G0, G3)\nG5 = NOT(G1)\nG6 = OR(G4, G5)\nG7 = NAND(G6, G0)\n";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cli-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `retimer serve` with the given cache dir, writes the request
/// lines, closes stdin, and returns (exit code, stdout lines).
fn run_serve(cache: &PathBuf, requests: &[String]) -> (i32, Vec<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_retimer"))
        .args(["serve", "--cache"])
        .arg(cache)
        .args(["--workers", "2", "--time-budget", "30"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("retimer serve starts");
    {
        let mut stdin = child.stdin.take().expect("stdin piped");
        for line in requests {
            writeln!(stdin, "{line}").expect("request written");
        }
        // Dropping stdin closes it: EOF is the drain signal.
    }
    let output = child.wait_with_output().expect("serve exits");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 protocol output");
    let lines: Vec<String> = stdout.lines().map(str::to_string).collect();
    assert!(
        !lines.is_empty(),
        "no protocol output; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().unwrap_or(-1), lines)
}

fn line_with<'a>(lines: &'a [String], needle: &str) -> &'a str {
    lines
        .iter()
        .find(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("no line containing `{needle}` in:\n{}", lines.join("\n")))
}

#[test]
fn serve_stdin_end_to_end() {
    let cache = tmpdir("e2e");
    let submit = format!(
        r#"{{"op":"submit","id":"cli-1","format":"bench","vectors":64,"frames":4,"source":{}}}"#,
        json_string(BENCH_SOURCE)
    );
    let garbage =
        r#"{"op":"submit","id":"cli-bad","format":"bench","source":"THIS IS NOT A NETLIST"}"#
            .to_string();
    let unknown = r#"{"op":"frobnicate"}"#.to_string();
    let (code, lines) = run_serve(&cache, &[submit, garbage, unknown]);

    assert_eq!(
        code,
        0,
        "clean drain must exit 0; output:\n{}",
        lines.join("\n")
    );
    assert!(
        lines[0].contains(r#""event":"ready""#),
        "first line is the ready banner: {}",
        lines[0]
    );
    line_with(&lines, r#""event":"accepted","id":"cli-1""#);

    // The real job completes with exit 0 and is not a cache hit on a
    // fresh cache directory.
    let done = line_with(&lines, r#""id":"cli-1","status":"done""#);
    assert!(done.contains(r#""exit":0"#), "clean solve exits 0: {done}");
    assert!(
        done.contains(r#""cached":false"#),
        "fresh cache cannot hit: {done}"
    );

    // The garbage job fails with the netlist exit code (2) and an error.
    let bad = line_with(&lines, r#""id":"cli-bad","status":"failed""#);
    assert!(bad.contains(r#""exit":2"#), "parse failure exits 2: {bad}");
    assert!(
        bad.contains(r#""error":"#),
        "failure carries the error: {bad}"
    );

    // Unknown ops get a protocol error, not a crash.
    line_with(&lines, r#""event":"error","context":"request""#);

    // EOF drains: the stream ends with the drained event.
    assert_eq!(
        lines.last().map(String::as_str),
        Some(r#"{"event":"drained"}"#),
        "stream must end with drained:\n{}",
        lines.join("\n")
    );
    let _ = std::fs::remove_dir_all(&cache);
}

/// A second daemon on the same cache directory serves a resubmission
/// from the result cache, and the `result` op returns the netlist.
#[test]
fn serve_cache_hit_across_daemon_restarts() {
    let cache = tmpdir("hit");
    let submit = |id: &str| {
        format!(
            r#"{{"op":"submit","id":"{id}","format":"bench","vectors":64,"frames":4,"source":{}}}"#,
            json_string(BENCH_SOURCE)
        )
    };

    let (code, lines) = run_serve(&cache, &[submit("first")]);
    assert_eq!(code, 0);
    let done = line_with(&lines, r#""id":"first","status":"done""#);
    assert!(done.contains(r#""cached":false"#), "{done}");

    // Same content + config under a new id and a new process: the
    // cache survives the restart and answers without re-solving.
    // `result` returns the cached netlist and report. The result op
    // races the async done event, so drain (EOF) first guarantees the
    // job is terminal only for the submit; query via a second process.
    let (code, lines) = run_serve(&cache, &[submit("second")]);
    assert_eq!(code, 0);
    let done = line_with(&lines, r#""id":"second","status":"done""#);
    assert!(
        done.contains(r#""cached":true"#),
        "restart must serve from cache: {done}"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

/// Minimal JSON string encoder for building request lines.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
