//! The committed 10k-gate tier (`tests/fixtures/generated_10k.bench`):
//! fixture integrity against pinned digests and the deterministic
//! generator, bounded-memory streaming parse, and the end-to-end
//! pipeline under a `SolveBudget` memory cap.
//!
//! The heavyweight end-to-end tests are release-only
//! (`#[cfg_attr(debug_assertions, ignore)]`): debug builds run the
//! differential oracles on every data-plane step, which is exactly
//! right at sample sizes and prohibitive at 10k gates. CI exercises
//! them through the release-mode `bench-large-smoke` job.

use std::fs;
use std::path::PathBuf;

use bench_harness::solver_bench;
use minobswin::experiment::{Experiment, RunConfig};
use minobswin::{SolveBudget, SolveError};
use netlist::digest::{circuit_digest, content_digest};
use netlist::{bench_format, ParseLimits};
use ser_engine::sim::SimConfig;

/// FNV-1a digest of the committed fixture bytes (see
/// `netlist::digest::content_digest`). Regenerate with the ignored
/// `regenerate_fixture` test below after changing the generator.
const FIXTURE_CONTENT_DIGEST: u64 = 0x42e9_6a97_72fc_e9fe;
/// Structural digest of the parsed fixture
/// (`netlist::digest::circuit_digest` — FNV-1a over the canonical
/// `.bench` re-serialization). The fixture is itself that canonical
/// serialization, so this equals the content digest exactly when the
/// parse → write round trip is lossless.
const FIXTURE_CIRCUIT_DIGEST: u64 = 0x42e9_6a97_72fc_e9fe;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/generated_10k.bench")
}

/// The circuit the fixture is a serialization of: the benchmark
/// generator recipe at 10k gates, renamed to match the file stem
/// `read_path` assigns.
fn reference_circuit() -> netlist::Circuit {
    let mut c = solver_bench::generated_circuit(10_000);
    c.set_name("generated_10k");
    c
}

/// Rewrites the committed fixture from the generator. Run explicitly
/// after generator changes:
///
/// ```text
/// cargo test -p minobswin-bench --test large_instance -- --ignored regenerate
/// ```
///
/// then refresh the two pinned digests above from the
/// `fixture_matches_generator_and_pinned_digests` failure output.
#[test]
#[ignore = "writes the committed fixture; run explicitly after generator changes"]
fn regenerate_fixture() {
    let path = fixture_path();
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    bench_format::write_file(&reference_circuit(), &path).unwrap();
    println!("wrote {}", path.display());
}

#[test]
fn fixture_matches_generator_and_pinned_digests() {
    let bytes = fs::read(fixture_path()).unwrap_or_else(|e| {
        panic!(
            "missing committed fixture {} ({e}); regenerate with the ignored test",
            fixture_path().display()
        )
    });
    assert_eq!(
        content_digest(&bytes),
        FIXTURE_CONTENT_DIGEST,
        "fixture bytes drifted: content_digest = {:#018x}",
        content_digest(&bytes)
    );
    let parsed = netlist::read_path(fixture_path(), &ParseLimits::default()).unwrap();
    assert_eq!(
        circuit_digest(&parsed),
        FIXTURE_CIRCUIT_DIGEST,
        "parsed structure drifted: circuit_digest = {:#018x}",
        circuit_digest(&parsed)
    );
    // The committed bytes round-trip to exactly what the generator
    // produces today — the fixture is a cache, not a fork. Parsing
    // assigns fresh internal gate ids, so the comparison is on the
    // canonical serialization, not the raw `Circuit` structs.
    assert_eq!(
        circuit_digest(&parsed),
        circuit_digest(&reference_circuit()),
        "fixture no longer matches the generator recipe"
    );
}

#[test]
fn fixture_is_admitted_by_default_parse_limits() {
    // The whole point of the committed tier: no `ParseLimits`
    // loosening, no `unlimited()`, just the defaults every production
    // entry point uses.
    let parsed = netlist::read_path(fixture_path(), &ParseLimits::default()).unwrap();
    assert!(parsed.len() >= 10_000, "gates: {}", parsed.len());
    assert_eq!(parsed.name(), "generated_10k");
}

#[test]
fn streaming_parse_peak_memory_is_bounded_by_line_length_not_file_size() {
    let file_len = fs::metadata(fixture_path()).unwrap().len() as usize;
    netlist::stream::reset_parser_peak_bytes();
    let parsed = netlist::read_path(fixture_path(), &ParseLimits::default()).unwrap();
    let peak = netlist::stream::parser_peak_bytes();
    assert!(parsed.len() >= 10_000);
    // The fixture's longest line is tens of bytes; allow generous
    // slack for the shared process-wide counter (other tests in this
    // binary parse concurrently) while still proving the point: the
    // transient buffers never approach the file size.
    assert!(
        peak < file_len / 4,
        "streaming parser buffered {peak} bytes of a {file_len}-byte file"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "10k end-to-end is release-only (see module docs)"
)]
fn ten_k_tier_completes_end_to_end_under_a_memory_cap() {
    let circuit = netlist::read_path(fixture_path(), &ParseLimits::default()).unwrap();
    let sim = SimConfig {
        num_vectors: 256,
        frames: 6,
        warmup: 8,
        seed: 0xC0FFEE,
        threads: 1,
    };
    // A generous-but-real cap: the 10k data plane fits comfortably,
    // and the run fails loudly instead of swapping if a regression
    // balloons it.
    let budget = SolveBudget::new()
        .with_max_iterations(Some(40))
        .with_max_memory_estimate(Some(256 << 20));
    let run = Experiment::new(&circuit)
        .config(RunConfig::small().with_sim(sim).with_budget(budget))
        .run()
        .expect("10k tier must complete under the memory cap");
    assert_eq!(run.name, "generated_10k");
    assert!(run.v >= 10_000, "|V| = {}", run.v);
    assert!(run.ser_original > 0.0);
    assert!(run.minobswin.ser > 0.0);
    assert!(run.phi > 0 && run.r_min >= 1);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "10k end-to-end is release-only (see module docs)"
)]
fn ten_k_tier_over_tight_memory_cap_fails_structurally() {
    let circuit = netlist::read_path(fixture_path(), &ParseLimits::default()).unwrap();
    let budget = SolveBudget::new().with_max_memory_estimate(Some(1 << 20));
    let err = Experiment::new(&circuit)
        .config(RunConfig::small().with_budget(budget))
        .run()
        .expect_err("1 MiB cannot hold the 10k data plane");
    match &err {
        SolveError::Initialization(msg) => {
            assert!(msg.contains("memory budget"), "{msg}");
        }
        other => panic!("expected a structured initialization error, got {other:?}"),
    }
    // The structured failure keeps the documented exit code for
    // infeasible initialization.
    assert_eq!(err.exit_code(), 1);
}
