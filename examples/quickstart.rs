//! Quickstart: parse (or generate) a sequential circuit, analyze its
//! soft error rate, retime it with MinObsWin, and compare.
//!
//! ```text
//! cargo run -p minobswin-bench --example quickstart [path/to/circuit.bench]
//! ```

use minobswin::experiment::{Experiment, RunConfig};
use netlist::generator::GeneratorConfig;
use netlist::{bench_format, Circuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load a user-supplied ISCAS89 .bench file, or fall back to a
    // generated 1200-gate sequential circuit.
    let circuit: Circuit = match std::env::args().nth(1) {
        Some(path) => bench_format::read_file(&path)?,
        None => GeneratorConfig::new("quickstart_demo", 2013)
            .gates(1200)
            .registers(220)
            .inputs(24)
            .outputs(24)
            .target_edges(2700)
            .build(),
    };
    println!("circuit: {circuit}");

    let run = Experiment::new(&circuit)
        .config(RunConfig::default())
        .run()?;
    println!(
        "\nperiod constraint Phi = {} ({}), R_min = {}",
        run.phi,
        if run.used_setup_hold {
            "from setup+hold retiming, +10% slack"
        } else {
            "fallback: min-period retiming, +10% slack"
        },
        run.r_min
    );
    println!("\n                 original      MinObs [17]     MinObsWin (this paper)");
    println!(
        "registers     {:>10}    {:>10}       {:>10}",
        run.ff, run.minobs.registers, run.minobswin.registers
    );
    println!(
        "SER (eq. 4)   {:>10.3e}    {:>10.3e}       {:>10.3e}",
        run.ser_original, run.minobs.ser, run.minobswin.ser
    );
    println!(
        "delta SER              --      {:>+8.2}%       {:>+8.2}%",
        run.minobs.delta_ser * 100.0,
        run.minobswin.delta_ser * 100.0
    );
    println!(
        "\nSER_ref / SER_new = {:.0}%  (> 100% means the ELW-aware retiming wins)",
        run.ser_ratio() * 100.0
    );
    println!(
        "solver time: MinObs {:.3}s, MinObsWin {:.3}s, #J = {}",
        run.minobs.solve_seconds, run.minobswin.solve_seconds, run.minobswin.stats.commits
    );
    Ok(())
}
