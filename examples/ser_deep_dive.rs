//! Deep dive into the SER model of §II: simulation signatures,
//! ODC-based observabilities (vs. exact fault injection), exact
//! error-latching windows, and the assembly of eq. (4).
//!
//! ```text
//! cargo run -p minobswin-bench --example ser_deep_dive
//! ```

use netlist::{samples, DelayModel};
use retime::{ElwParams, RetimeGraph, Retiming};
use ser_engine::odc::{exact_fault_injection, Observability};
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{analyze, SerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = samples::s27_like();
    println!("circuit: {circuit}\n");

    let sim = SimConfig {
        num_vectors: 2048,
        frames: 15,
        warmup: 16,
        seed: 0xC0FFEE,
        threads: 0,
    };
    let trace = FrameTrace::simulate(&circuit, sim);
    let obs = Observability::compute(&circuit, &trace);
    let exact = exact_fault_injection(&circuit, sim);

    println!("observabilities (15-frame expansion, K = 2048):");
    println!(
        "{:<8} {:>10} {:>10} {:>9}",
        "gate", "ODC obs", "exact obs", "activity"
    );
    for (id, gate) in circuit.iter() {
        if gate.kind() == netlist::GateKind::Output {
            continue;
        }
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>9.4}",
            gate.name(),
            obs.obs(id),
            exact[id.index()],
            trace.activity(id)
        );
    }

    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default())?;
    let phi = retime::minperiod::min_period(&graph)?.phi * 11 / 10;
    let config = SerConfig {
        sim,
        elw: ElwParams::with_phi(phi),
        ..SerConfig::with_phi(phi)
    };
    let report = analyze(&circuit, &config)?;

    println!(
        "\nerror-latching windows at Phi = {phi} (window [{}, {}]):",
        phi,
        phi + 2
    );
    let elws = ser_engine::elw::compute_elws(&graph, &Retiming::zero(&graph), config.elw)?;
    for v in graph.vertices() {
        let set = &elws[v.index()];
        if set.is_empty() {
            continue;
        }
        println!(
            "  {:<8} ELW = {:<28} |ELW|/Phi = {:.3}",
            graph.name(v),
            set.to_string(),
            set.total_length() as f64 / phi as f64
        );
    }

    println!("\neq. (4) assembly:");
    println!("  combinational share: {:.4e}", report.ser_combinational);
    println!("  register share:      {:.4e}", report.ser_registers);
    println!("  total SER:           {:.4e}", report.ser);
    println!(
        "  logic-masking only (no ELW factor): {:.4e}",
        report.ser_logic_only
    );
    println!(
        "  timing masking removes {:.1}% of the logic-only estimate",
        (1.0 - report.ser / report.ser_logic_only) * 100.0
    );
    Ok(())
}
