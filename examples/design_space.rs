//! Design-space sweep (ablation): how the period slack `ε` and the
//! ELW bound `R_min` steer the trade-off between register-observability
//! reduction and SER — the knobs §V of the paper fixes at ε = 10% and
//! `R_min` = the initial minimum short path.
//!
//! ```text
//! cargo run -p minobswin-bench --release --example design_space
//! ```

use minobswin::init::InitConfig;
use minobswin::{Problem, SolverSession};
use netlist::generator::GeneratorConfig;
use netlist::DelayModel;
use retime::apply::apply_retiming;
use retime::{ElwParams, RetimeGraph};
use ser_engine::odc::Observability;
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{analyze, vertex_observabilities, SerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = GeneratorConfig::new("design_space", 77)
        .gates(800)
        .registers(160)
        .inputs(16)
        .outputs(16)
        .target_edges(1800)
        .build();
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays)?;
    let sim = SimConfig {
        num_vectors: 1024,
        frames: 10,
        warmup: 8,
        seed: 0xC0FFEE,
        threads: 0,
    };
    let trace = FrameTrace::simulate(&circuit, sim);
    let observability = Observability::compute(&circuit, &trace);
    let vertex_obs = vertex_observabilities(&circuit, &graph, &observability);

    println!("sweep over the period slack ε (R_min per §V):\n");
    println!(
        "{:>4} {:>6} {:>7} | {:>10} {:>10} {:>9} {:>6}",
        "ε%", "Phi", "R_min", "SER orig", "SER new", "ΔSER", "#J"
    );
    for epsilon in [0u32, 5, 10, 20, 40] {
        let init = InitConfig::default()
            .with_epsilon_percent(epsilon)
            .initialize(&graph)?;
        let params = ElwParams::with_phi(init.phi);
        let problem =
            Problem::from_observabilities(&graph, &vertex_obs, sim.num_vectors, params, init.r_min);
        let sol = SolverSession::new(&graph, &problem)
            .initial(init.retiming.clone())
            .run()?;
        let ser_config = SerConfig {
            sim,
            delays: delays.clone(),
            elw: params,
            ..SerConfig::with_phi(init.phi)
        };
        let original = analyze(&circuit, &ser_config)?;
        let rebuilt = apply_retiming(&circuit, &graph, &sol.retiming)?;
        let after = analyze(&rebuilt, &ser_config)?;
        println!(
            "{:>4} {:>6} {:>7} | {:>10.3e} {:>10.3e} {:>+8.2}% {:>6}",
            epsilon,
            init.phi,
            init.r_min,
            original.ser,
            after.ser,
            (after.ser / original.ser - 1.0) * 100.0,
            sol.stats.commits
        );
    }

    println!("\nsweep over R_min at fixed ε = 10% (tighter = stronger ELW protection):\n");
    let init = InitConfig::default().initialize(&graph)?;
    let params = ElwParams::with_phi(init.phi);
    let ser_config = SerConfig {
        sim,
        delays: delays.clone(),
        elw: params,
        ..SerConfig::with_phi(init.phi)
    };
    let original = analyze(&circuit, &ser_config)?;
    println!(
        "{:>7} | {:>10} {:>9} {:>9} {:>6}",
        "R_min", "SER new", "ΔSER", "Δ#FF", "#J"
    );
    for r_min in [init.r_min, init.r_min + 2, init.r_min + 4, init.r_min + 8] {
        let problem =
            Problem::from_observabilities(&graph, &vertex_obs, sim.num_vectors, params, r_min);
        // Raising R_min beyond the initial minimum short path can make
        // the §V starting point infeasible; skip those points.
        let sol = match SolverSession::new(&graph, &problem)
            .initial(init.retiming.clone())
            .run()
        {
            Ok(s) => s,
            Err(e) => {
                println!("{:>7} | (infeasible start: {e})", r_min);
                continue;
            }
        };
        let rebuilt = apply_retiming(&circuit, &graph, &sol.retiming)?;
        let after = analyze(&rebuilt, &ser_config)?;
        println!(
            "{:>7} | {:>10.3e} {:>+8.2}% {:>+8.2}% {:>6}",
            r_min,
            after.ser,
            (after.ser / original.ser - 1.0) * 100.0,
            (rebuilt.num_registers() as f64 / circuit.num_registers() as f64 - 1.0) * 100.0,
            sol.stats.commits
        );
    }
    Ok(())
}
