//! Reproduces the paper's **Figure 1**: a register relocation that
//! *reduces* total register observability (the MinObs objective — it
//! even reduces the register count) while *enlarging* upstream
//! error-latching windows enough to make the overall SER worse — the
//! motivating example for the ELW-constrained formulation. The second
//! half shows MinObs happily taking the move while MinObsWin's P2
//! constraint refuses it.
//!
//! ```text
//! cargo run -p minobswin-bench --example elw_tradeoff
//! ```

use minobswin::algorithm::SolverConfig;
use minobswin::{Problem, SolverSession};
use netlist::{samples, DelayModel};
use retime::apply::apply_retiming;
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming};
use ser_engine::elw::compute_elws;
use ser_engine::odc::Observability;
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{analyze, vertex_observabilities, SerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = samples::fig1_like();
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays)?;

    // The clock must admit the Fig. 1 move itself (the merged
    // A-chain → F path must meet setup), but stay tight enough that
    // timing masking matters: use the moved configuration's period.
    let moved_r = {
        let f = graph
            .vertex_of(circuit.find("F").expect("gate F"))
            .expect("vertex for F");
        let mut r = Retiming::zero(&graph);
        r.set(f, -1);
        r
    };
    let phi = retime::timing::clock_period(&graph, &moved_r)?.max(retime::timing::clock_period(
        &graph,
        &Retiming::zero(&graph),
    )?);
    let params = ElwParams::with_phi(phi);
    let sim = SimConfig::default();
    let config = SerConfig {
        sim,
        delays: delays.clone(),
        elw: params,
        ..SerConfig::with_phi(phi)
    };

    let before = analyze(&circuit, &config)?;

    // Fig. 1's move: pull the registers qa/qb forward over F
    // (r(F) = −1); they merge into a single register at F's output.
    let f = graph
        .vertex_of(circuit.find("F").expect("gate F"))
        .expect("vertex for F");
    let mut r = Retiming::zero(&graph);
    r.set(f, -1);
    graph.check_nonnegative(&r)?;
    let moved = apply_retiming(&circuit, &graph, &r)?;
    let after = analyze(&moved, &config)?;

    println!(
        "Figure 1 trade-off on `{}` (Phi = {phi}):\n",
        circuit.name()
    );
    println!("                          before      after r(F) = -1");
    println!(
        "registers                 {:>6}      {:>6}",
        circuit.num_registers(),
        moved.num_registers()
    );
    println!(
        "register observability    {:>6.3}      {:>6.3}",
        before.register_observability, after.register_observability
    );
    println!(
        "SER (eq. 4)             {:>9.3e}   {:>9.3e}   ({:+.1}%)",
        before.ser,
        after.ser,
        (after.ser / before.ser - 1.0) * 100.0
    );

    // Show the ELW growth of the upstream gates A and B.
    let elws_before = compute_elws(&graph, &Retiming::zero(&graph), params)?;
    let elws_after = compute_elws(&graph, &r, params)?;
    println!("\nerror-latching windows at the upstream gates:");
    for name in ["A", "B"] {
        let v = graph
            .vertex_of(circuit.find(name).expect("gate"))
            .expect("vertex");
        println!(
            "  {name}: {} (|ELW| {})  ->  {} (|ELW| {})",
            elws_before[v.index()],
            elws_before[v.index()].total_length(),
            elws_after[v.index()],
            elws_after[v.index()].total_length()
        );
    }

    let obs_down = after.register_observability < before.register_observability;
    let ser_up = after.ser > before.ser;
    println!(
        "\nregister observability {}, overall SER {}{}",
        if obs_down {
            "DECREASED"
        } else {
            "did not decrease"
        },
        if ser_up {
            "INCREASED"
        } else {
            "did not increase"
        },
        if obs_down && ser_up {
            " — exactly the Fig. 1 trap."
        } else {
            ""
        }
    );

    // Second act: MinObs walks into the trap, MinObsWin does not.
    let trace = FrameTrace::simulate(&circuit, sim);
    let observability = Observability::compute(&circuit, &trace);
    let vertex_obs = vertex_observabilities(&circuit, &graph, &observability);
    let r0 = Retiming::zero(&graph);
    let labels = LrLabels::compute(&graph, &r0, params)?;
    let r_min = labels.min_short_path(&graph, &r0).unwrap_or(1);
    let problem =
        Problem::from_observabilities(&graph, &vertex_obs, sim.num_vectors, params, r_min);

    let ref_sol = SolverSession::new(&graph, &problem)
        .config(SolverConfig::default().with_p2(false))
        .initial(r0.clone())
        .run()?;
    let win_sol = SolverSession::new(&graph, &problem).initial(r0).run()?;
    let ser_of = |retiming: &Retiming| -> Result<f64, Box<dyn std::error::Error>> {
        let rebuilt = apply_retiming(&circuit, &graph, retiming)?;
        Ok(analyze(&rebuilt, &config)?.ser)
    };
    println!("\noptimizers on this instance (R_min = {r_min}):");
    println!(
        "  MinObs   [17]: r(F) = {:>2}, SER {:>9.3e}",
        ref_sol.retiming.get(f),
        ser_of(&ref_sol.retiming)?
    );
    println!(
        "  MinObsWin    : r(F) = {:>2}, SER {:>9.3e}  (P2 fixes: {}, freezes: {})",
        win_sol.retiming.get(f),
        ser_of(&win_sol.retiming)?,
        win_sol.stats.p2_fixes,
        win_sol.stats.freezes
    );
    Ok(())
}
