//! Demonstrates the three active-constraint types of the paper's
//! **Figure 2** on minimal circuits: the solver's tentative move
//! triggers, in turn, a P0 fix (registers must cascade upstream), a P1
//! fix (a critical longest path must be cut), and a P2 fix (a critical
//! shortest path must be extended by clearing a registered edge).
//!
//! ```text
//! cargo run -p minobswin-bench --example constraint_types
//! ```

use minobswin::verify::{find_violation, Violation};
use minobswin::Problem;
use netlist::{samples, CircuitBuilder, DelayModel, GateKind};
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fig2a_p0()?;
    fig2b_p1()?;
    fig2c_p2()?;
    Ok(())
}

/// Fig. 2(a): an edge with `w_r(u,v) = 0` — decreasing `v` alone sends
/// the edge negative, so `u` must be dragged along.
fn fig2a_p0() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = samples::pipeline(6, 3);
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit())?;
    let counts = vec![1i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(20), 1);

    // Tentatively decrease only s1 (its in-edge from s0 has no
    // register).
    let s1 = graph.vertex_of(circuit.find("s1").unwrap()).unwrap();
    let mut r = Retiming::zero(&graph);
    r.add(s1, -1);
    match find_violation(&graph, &problem, &r) {
        Some(Violation::P0 { edge, weight }) => {
            let e = graph.edge(edge);
            println!(
                "Fig 2(a) P0: decreasing r({}) alone makes edge {} -> {} weight {};",
                graph.name(s1),
                graph.name(e.from),
                graph.name(e.to),
                weight
            );
            println!(
                "            active constraint ({}, {}): the upstream gate joins the move.\n",
                graph.name(e.to),
                graph.name(e.from)
            );
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}

/// Fig. 2(b): the move creates a register-to-register path longer than
/// `Phi - T_s`; the path head must be retimed to cut it.
fn fig2b_p1() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = samples::pipeline(9, 3);
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit())?;
    // Phi = 3 is exactly the balanced period: merging two segments by
    // moving a register off the boundary breaks setup.
    let phi = 3;
    let counts = vec![1i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(phi), 1);

    // Move the register after s2 forward over s3 (r(s3) -= 1): the
    // first two segments merge into a 6-delay path.
    let s3 = graph.vertex_of(circuit.find("s3").unwrap()).unwrap();
    let mut r = Retiming::zero(&graph);
    r.add(s3, -1);
    match find_violation(&graph, &problem, &r) {
        Some(Violation::P1(v)) => {
            println!(
                "Fig 2(b) P1: after moving the register past {}, the path headed by {} \
                 misses setup by {} units (lt = {});",
                graph.name(s3),
                graph.name(v.vertex),
                -v.slack,
                graph.name(v.lt)
            );
            println!(
                "            active constraint ({}, {}): move a register out of the head.\n",
                graph.name(v.lt),
                graph.name(v.vertex)
            );
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}

/// Fig. 2(c): the move shortens a register-launched path below
/// `R_min`; all registers on the terminating edge (z, y) must move out
/// to extend it.
fn fig2c_p2() -> Result<(), Box<dyn std::error::Error>> {
    // in -> a -> bb -> [FF] -> c1 -> c2 -> [FF] -> d1 -> d2 -> out.
    let mut b = CircuitBuilder::new("fig2c");
    b.input("in");
    b.gate("a", GateKind::Not, &["in"]).unwrap();
    b.gate("bb", GateKind::Not, &["a"]).unwrap();
    b.dff("q1", "bb").unwrap();
    b.gate("c1", GateKind::Not, &["q1"]).unwrap();
    b.gate("c2", GateKind::Not, &["c1"]).unwrap();
    b.dff("q2", "c2").unwrap();
    b.gate("d1", GateKind::Not, &["q2"]).unwrap();
    b.gate("d2", GateKind::Not, &["d1"]).unwrap();
    b.output("d2").unwrap();
    let circuit = b.build().unwrap();
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit())?;
    let phi = 10;
    // R_min = 2 is met initially (both segments have short path 2).
    let counts = vec![1i64; graph.num_vertices()];
    let problem = Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(phi), 2);
    let r0 = Retiming::zero(&graph);
    let labels = LrLabels::compute(&graph, &r0, problem.params)?;
    let vc = graph.vertex_of(circuit.find("c1").unwrap()).unwrap();
    println!(
        "Fig 2(c) setup: short_path(c1) = {} with R_min = 2 (feasible).",
        labels.short_path(&graph, vc).unwrap()
    );

    // Now move the register q1 forward over c1 (r(c1) -= 1): the
    // launched path shrinks to the single gate c2 — short path 1 < 2,
    // violating P2.
    let mut r = r0.clone();
    r.add(vc, -1);
    match find_violation(&graph, &problem, &r) {
        Some(Violation::P2(v)) => {
            let z = v.rt;
            println!(
                "Fig 2(c) P2: after moving q1 past c, the path launched into {} has \
                 short_path = {} < R_min; rt = {}.",
                graph.name(v.vertex),
                v.short_path,
                graph.name(z)
            );
            println!(
                "            fix: clear the registered edge leaving {} by dragging its sink \
                 into the move (possibly several registers at once — the weighted part \
                 of the weighted regular forest).",
                graph.name(z)
            );
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
