//! # proptest (offline shim)
//!
//! A small, dependency-free stand-in for the [`proptest`] crate,
//! providing exactly the subset of its API this workspace uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` inner attribute),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * integer-range and tuple [`Strategy`](strategy::Strategy)s,
//!   [`collection::vec`] and [`sample::select`],
//! * [`test_runner::ProptestConfig`].
//!
//! The workspace pins its registry to an offline mirror, so external
//! crates cannot be fetched at build time; this shim keeps the property
//! suites runnable with the project's own deterministic PRNG
//! (xoshiro256\*\*, the same construction as `netlist::rng`, duplicated
//! here so the shim stays free of workspace dependencies).
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its case index and the
//!   generated inputs are re-derivable from the deterministic seed;
//! * **uniform generation only** — ranges are sampled uniformly, with
//!   no bias toward boundary values;
//! * cases default to 48 per property (real proptest: 256).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

/// Test-case scheduling: configuration, PRNG and the runner behind the
/// [`proptest!`] macro.
pub mod test_runner {
    /// How many cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        /// 48 cases, or the value of the `PROPTEST_CASES` environment
        /// variable when set to a positive integer (mirroring real
        /// proptest's env override; CI uses it to run deeper sweeps).
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(48);
            Self { cases }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xoshiro256\*\* stream for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream from a (property, case) pair via SplitMix64.
        pub fn for_case(property_seed: u64, case: u32) -> Self {
            let mut state = property_seed ^ (u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F));
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Unbiased uniform value in `0..bound` (Lemire rejection).
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn gen_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "gen_below bound must be positive");
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(bound as u128);
                let low = m as u64;
                if low < bound {
                    let threshold = bound.wrapping_neg() % bound;
                    if low < threshold {
                        continue;
                    }
                }
                return (m >> 64) as u64;
            }
        }
    }

    /// Runs a property's cases under a config; panics on the first
    /// failing case with its index (inputs are re-derivable from the
    /// deterministic per-name seed).
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
        name: String,
    }

    impl TestRunner {
        /// A runner for the property named `name` (seeds are derived
        /// from the name with FNV-1a, so every property gets a stable,
        /// distinct stream).
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                config,
                seed,
                name: name.to_string(),
            }
        }

        /// Runs all cases.
        ///
        /// # Panics
        ///
        /// Panics when a case returns `Err` (a failed `prop_assert!`).
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), String>,
        {
            for i in 0..self.config.cases {
                let mut rng = TestRng::for_case(self.seed, i);
                if let Err(message) = case(&mut rng) {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        self.name, i, self.config.cases, message
                    );
                }
            }
        }
    }
}

/// Value-generation strategies (the shim's counterpart of
/// `proptest::strategy`).
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Something that can generate values of one type from a PRNG
    /// stream.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let width = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.gen_below(width) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a uniformly
    /// drawn length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy generating vectors whose length is drawn from `size`
    /// and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Choose-from-a-list strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// A strategy generating one of `choices`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_below(self.choices.len() as u64) as usize].clone()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Fails the enclosing property case unless `cond` holds.
///
/// Must be used inside a [`proptest!`] body; expands to an early
/// `return Err(..)` carrying the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fails the enclosing property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// Skips the current case when `cond` does not hold.
///
/// Real proptest rejects the inputs and generates fresh ones (with a
/// global rejection cap); the shim simply treats the case as vacuously
/// passing, which keeps case indices deterministic. Properties guarded
/// by a frequently-false assumption therefore run fewer effective
/// cases — keep assumptions cheap and rarely violated.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Fails the enclosing property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// item becomes a `#[test]` running the body over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`test_runner::ProptestConfig`] for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($t:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($t)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case(42, 0);
        let mut b = TestRng::for_case(42, 0);
        let mut c = TestRng::for_case(42, 1);
        let same: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let other: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(same, again);
        assert_ne!(same, other);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges generate in bounds.
        #[test]
        fn ranges_in_bounds(x in -50i64..50, y in 1usize..9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&y));
        }

        /// Vec strategy respects the size range and element bounds.
        #[test]
        fn vec_strategy_bounds(v in prop::collection::vec((0u32..7, 0i64..3), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for (a, b) in v {
                prop_assert!(a < 7);
                prop_assert_eq!(b.clamp(0, 2), b);
            }
        }

        /// `select` only ever yields the listed choices, and
        /// `prop_assume` vacuously passes the filtered cases.
        #[test]
        fn select_and_assume(x in prop::sample::select(vec![-1i64, 1, 5])) {
            prop_assert!([-1, 1, 5].contains(&x));
            prop_assume!(x > 0);
            prop_assert!(x == 1 || x == 5);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
