use minobswin::algorithm::SolverConfig;
use minobswin::{Problem, SolverSession};
use netlist::{rng::Xoshiro256, DelayModel};
use retime::minarea_ref::solve_exact;
use retime::{ElwParams, RetimeGraph, Retiming, VertexId};

fn main() {
    let seed = 2u64;
    let c = netlist::generator::GeneratorConfig::new("xc", seed)
        .gates(60)
        .registers(14)
        .inputs(4)
        .outputs(4)
        .target_edges(130)
        .build();
    let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
    let phi = retime::timing::clock_period(&g, &Retiming::zero(&g)).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(seed * 31 + 5);
    let counts: Vec<i64> = (0..g.num_vertices())
        .map(|i| {
            if i == 0 {
                128
            } else {
                rng.gen_range(129) as i64
            }
        })
        .collect();
    let problem = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(phi), 1);
    let sol = SolverSession::new(&g, &problem)
        .config(SolverConfig::default().with_p2(false))
        .run()
        .unwrap();
    let exact = solve_exact(&g, &problem.b, Some(phi)).unwrap();
    let obj = |r: &Retiming| -> i64 {
        (1..g.num_vertices())
            .map(|v| problem.b[v] * r.get(VertexId::new(v)))
            .sum()
    };
    eprintln!(
        "solver obj {} exact {} freezes {} fallbacks {}",
        obj(&sol.retiming),
        exact.objective,
        sol.stats.freezes,
        sol.stats.fallback_attributions
    );
    let pos: Vec<String> = g
        .vertices()
        .filter(|&v| exact.retiming.get(v) > 0)
        .map(|v| format!("{}:{}", g.name(v), exact.retiming.get(v)))
        .collect();
    eprintln!(
        "exact r > 0 at {} vertices: {:?}",
        pos.len(),
        &pos[..pos.len().min(10)]
    );
    let neg_deeper: Vec<String> = g
        .vertices()
        .filter(|&v| exact.retiming.get(v) < sol.retiming.get(v))
        .map(|v| {
            format!(
                "{}: exact {} vs sol {}",
                g.name(v),
                exact.retiming.get(v),
                sol.retiming.get(v)
            )
        })
        .collect();
    eprintln!(
        "exact deeper at {} vertices: {:?}",
        neg_deeper.len(),
        &neg_deeper[..neg_deeper.len().min(10)]
    );
}
