//! The resilient solve supervisor: cooperative budgets, panic
//! isolation with self-healing engine fallback, and checkpoint/resume.
//!
//! The fast paths added by the incremental engines
//! ([`crate::incremental`], [`crate::closure_inc`]) are protected in
//! debug builds by differential oracles that vanish in release builds.
//! This module is the release-mode safety net around them, plus the
//! operational controls a long-running solve needs:
//!
//! * **Budgets** — [`SolveBudget`] bounds wall time, iterations and an
//!   estimated memory footprint. Expiry is communicated through a
//!   shared [`CancelToken`] and checked cooperatively at iteration and
//!   phase boundaries; the solver then returns
//!   [`SolveOutcome::Degraded`] carrying the best feasible retiming
//!   found so far instead of erroring.
//! * **Circuit breakers** — each incremental engine call runs under
//!   `catch_unwind`, and every Nth call is audited against the
//!   from-scratch engine. A panic or a divergence trips a per-engine
//!   breaker that permanently falls back Warm→Fresh (closure) or
//!   Incremental→Full (checker) for the rest of the solve. Trips are
//!   recorded in the [`DegradationReport`] surfaced through
//!   [`crate::algorithm::SolverStats`].
//! * **Checkpoints** — [`Checkpoint`] serializes the solver state
//!   (retiming labels, constraint weights, frozen set, active arcs,
//!   iteration counts) to a caller-supplied [`CheckpointSink`] so an
//!   interrupted solve can resume where it left off.
//!
//! The degradation ladder, from fastest to most conservative:
//!
//! ```text
//! warm closure + incremental checker      (default)
//!   └─ breaker trip ──▶ fresh closure / full checker (per engine)
//!        └─ final verification failure ──▶ full from-scratch re-solve
//! ```

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netlist::digest::{format_digest, parse_digest, Fnv1a};
use retime::{RetimeGraph, Retiming, VertexId};

use crate::closure::ConstraintSystem;
use crate::problem::Problem;
use crate::SolveError;

/// A shared cancellation flag. Clones observe the same flag, so one
/// token can supervise several solver runs (the experiment driver runs
/// MinObs and MinObsWin under the same deadline).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every clone observes it at the next
    /// iteration boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource bounds for one solver run. All limits are optional; the
/// default budget is unlimited. Construct with [`SolveBudget::new`]
/// and the `with_*` builders.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Wall-clock bound, measured from the start of the solve. Expiry
    /// cancels the shared token, so sibling solves under the same
    /// budget stop too.
    pub wall_time: Option<Duration>,
    /// Total solver iterations allowed (distinct from the
    /// [`crate::algorithm::SolverConfig::max_iterations`] safety cap:
    /// exceeding the budget degrades instead of erroring).
    pub max_iterations: Option<usize>,
    /// Bound on the solver's estimated memory footprint in bytes (a
    /// coarse model of the graph, labels and constraint arcs — not an
    /// allocator measurement).
    pub max_memory_estimate: Option<usize>,
    token: CancelToken,
}

impl SolveBudget {
    /// An unlimited budget with a fresh cancellation token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds wall-clock time.
    #[must_use]
    pub fn with_wall_time(mut self, limit: Option<Duration>) -> Self {
        self.wall_time = limit;
        self
    }

    /// Bounds total solver iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, limit: Option<usize>) -> Self {
        self.max_iterations = limit;
        self
    }

    /// Bounds the estimated memory footprint in bytes.
    #[must_use]
    pub fn with_max_memory_estimate(mut self, limit: Option<usize>) -> Self {
        self.max_memory_estimate = limit;
        self
    }

    /// Shares an externally owned cancellation token.
    #[must_use]
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// The budget's cancellation token (a clone; cancelling it stops
    /// every solve sharing this budget).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Whether any limit is set (an unlimited budget never degrades a
    /// solve on its own; external cancellation still can).
    pub fn is_limited(&self) -> bool {
        self.wall_time.is_some()
            || self.max_iterations.is_some()
            || self.max_memory_estimate.is_some()
    }
}

/// Why a supervised solve stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock budget expired.
    WallTime,
    /// The iteration budget was exhausted.
    Iterations,
    /// The estimated memory footprint exceeded its bound.
    Memory,
    /// The shared [`CancelToken`] was cancelled externally (or by a
    /// sibling solve's expired deadline).
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::WallTime => write!(f, "wall-time budget expired"),
            StopReason::Iterations => write!(f, "iteration budget exhausted"),
            StopReason::Memory => write!(f, "memory-estimate budget exceeded"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// What tripped a circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCause {
    /// The engine panicked; the panic was caught and isolated.
    Panic,
    /// A sampled audit found the engine's answer diverging from the
    /// from-scratch oracle.
    Divergence,
}

impl fmt::Display for TripCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripCause::Panic => write!(f, "panic"),
            TripCause::Divergence => write!(f, "divergence"),
        }
    }
}

/// One circuit-breaker trip. Breakers are permanent for the rest of
/// the solve, so each engine trips at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTrip {
    /// The solver iteration (total, across phases) at which the
    /// breaker tripped.
    pub iteration: usize,
    /// Panic or audited divergence.
    pub cause: TripCause,
}

/// How far a solve degraded from its configured fast paths. Surfaced
/// through [`crate::algorithm::SolverStats::degradation`] and printed
/// by the `retimer` CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// The warm closure engine's breaker (fallback: fresh builds).
    pub closure_trip: Option<BreakerTrip>,
    /// The incremental checker's breaker (fallback: full recomputes).
    pub checker_trip: Option<BreakerTrip>,
    /// The parallel SER engine's sampled-audit breaker (fallback: the
    /// scalar simulation/ODC engine). `iteration` is 0: the trip
    /// happens during simulation, before the solve loop starts.
    pub ser_trip: Option<BreakerTrip>,
    /// Set when a budget stopped the solve early.
    pub budget_stop: Option<StopReason>,
    /// The final verification gate found the result infeasible and the
    /// whole solve was redone with the from-scratch engines (the last
    /// rung of the degradation ladder).
    pub full_restart: bool,
    /// Checkpoint writes that failed (the solve continues; the sink
    /// error is not fatal).
    pub checkpoint_write_failures: u32,
}

impl DegradationReport {
    /// `true` when nothing degraded: no trips, no budget stop, no
    /// restart, no failed checkpoint writes.
    pub fn is_clean(&self) -> bool {
        self.closure_trip.is_none()
            && self.checker_trip.is_none()
            && self.ser_trip.is_none()
            && self.budget_stop.is_none()
            && !self.full_restart
            && self.checkpoint_write_failures == 0
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut sep = "";
        if let Some(t) = self.closure_trip {
            write!(
                f,
                "closure breaker tripped ({}, iter {})",
                t.cause, t.iteration
            )?;
            sep = "; ";
        }
        if let Some(t) = self.checker_trip {
            write!(
                f,
                "{sep}checker breaker tripped ({}, iter {})",
                t.cause, t.iteration
            )?;
            sep = "; ";
        }
        if let Some(t) = self.ser_trip {
            write!(f, "{sep}SER engine breaker tripped ({})", t.cause)?;
            sep = "; ";
        }
        if self.full_restart {
            write!(f, "{sep}full from-scratch re-solve")?;
            sep = "; ";
        }
        if let Some(reason) = self.budget_stop {
            write!(f, "{sep}{reason}")?;
            sep = "; ";
        }
        if self.checkpoint_write_failures > 0 {
            write!(
                f,
                "{sep}{} checkpoint write(s) failed",
                self.checkpoint_write_failures
            )?;
        }
        Ok(())
    }
}

/// Test-only fault injection, reachable through
/// `SolverConfig::with_sabotage`. `at` is the 1-based engine call
/// index from which the fault fires (every call from there on). Public
/// so integration tests can poison the engines; hidden from docs and
/// never set by production code.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Sabotage {
    /// No fault injection (the default).
    #[default]
    None,
    /// The warm closure engine panics on every call ≥ `at`.
    PanicClosure {
        /// First affected call (1-based).
        at: u64,
    },
    /// The warm closure engine returns a corrupted member set on every
    /// call ≥ `at`.
    WrongClosure {
        /// First affected call (1-based).
        at: u64,
    },
    /// The incremental checker panics on every check ≥ `at`.
    PanicChecker {
        /// First affected check (1-based).
        at: u64,
    },
    /// The incremental checker's verdict is corrupted (violations are
    /// suppressed) on every check ≥ `at`.
    WrongChecker {
        /// First affected check (1-based).
        at: u64,
    },
}

impl Sabotage {
    /// Corrupts (or panics on) a closure selection. Returns `true` if
    /// the member set was modified, so the debug-build oracle knows to
    /// stand down and let the sampled audit catch it.
    pub(crate) fn corrupt_closure(self, call: u64, members: &mut Vec<VertexId>) -> bool {
        match self {
            Sabotage::PanicClosure { at } if call >= at => {
                panic!("sabotage: forced closure-engine panic at call {call}")
            }
            Sabotage::WrongClosure { at } if call >= at => {
                if members.pop().is_none() {
                    members.push(VertexId::new(1));
                }
                true
            }
            _ => false,
        }
    }

    /// Corrupts (or panics on) a checker verdict. Returns `true` if
    /// the verdict was modified.
    pub(crate) fn corrupt_verdict<V>(self, check: u64, verdict: &mut Option<V>) -> bool {
        match self {
            Sabotage::PanicChecker { at } if check >= at => {
                panic!("sabotage: forced checker panic at check {check}")
            }
            Sabotage::WrongChecker { at } if check >= at && verdict.is_some() => {
                *verdict = None;
                true
            }
            _ => false,
        }
    }
}

/// A serializable snapshot of the solver's state, sufficient to resume
/// an interrupted solve: the committed retiming, the current phase's
/// constraint-system state (monotone weights, frozen set, active
/// arcs), and progress counters. The format is a versioned line-based
/// text document (the workspace deliberately has no serde dependency);
/// see `DESIGN.md` §10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Instance fingerprint (graph + problem + solve-shape config);
    /// resume refuses a checkpoint whose digest does not match.
    pub digest: u64,
    /// `true` when the checkpoint was taken during an ascent phase.
    pub direction_increase: bool,
    /// `stats.commits` at the start of the current descent/ascent
    /// round (the outer loop's termination test needs it).
    pub round_start_commits: usize,
    /// The objective of the original starting retiming (so a resumed
    /// solve reports the same total gain).
    pub start_objective: i64,
    /// Total solver iterations so far.
    pub iterations: usize,
    /// Committed improvement rounds so far.
    pub commits: usize,
    /// `true` when the solve had finished; resuming a complete
    /// checkpoint returns its retiming immediately.
    pub complete: bool,
    /// The committed retiming labels, indexed by vertex (entry 0 is
    /// the host and must be 0).
    pub retiming: Vec<i64>,
    /// Constraint-system move weights, indexed by vertex.
    pub weights: Vec<i64>,
    /// Frozen vertex indices (excluding the host, which is always
    /// frozen).
    pub frozen: Vec<u32>,
    /// Active constraint arcs `(p, q)` in insertion order.
    pub arcs: Vec<(u32, u32)>,
}

/// The checkpoint format's magic first line.
const CHECKPOINT_MAGIC: &str = "minobswin-checkpoint v1";

impl Checkpoint {
    /// Serializes to the versioned text format.
    pub fn serialize(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(CHECKPOINT_MAGIC);
        out.push('\n');
        let _ = writeln!(out, "digest {}", format_digest(self.digest));
        let _ = writeln!(
            out,
            "phase {}",
            if self.direction_increase {
                "increase"
            } else {
                "decrease"
            }
        );
        let _ = writeln!(out, "round_start_commits {}", self.round_start_commits);
        let _ = writeln!(out, "start_objective {}", self.start_objective);
        let _ = writeln!(out, "iterations {}", self.iterations);
        let _ = writeln!(out, "commits {}", self.commits);
        let _ = writeln!(out, "complete {}", u8::from(self.complete));
        let join = |xs: &mut dyn Iterator<Item = String>| xs.collect::<Vec<_>>().join(" ");
        let _ = writeln!(
            out,
            "r {}",
            join(&mut self.retiming.iter().map(|x| x.to_string()))
        );
        let _ = writeln!(
            out,
            "weights {}",
            join(&mut self.weights.iter().map(|x| x.to_string()))
        );
        let _ = writeln!(
            out,
            "frozen {}",
            join(&mut self.frozen.iter().map(|x| x.to_string()))
        );
        let _ = writeln!(
            out,
            "arcs {}",
            join(&mut self.arcs.iter().map(|(p, q)| format!("{p}>{q}")))
        );
        out.push_str("end\n");
        out
    }

    /// Parses the text format. Returns a message describing the first
    /// problem found; the caller wraps it in
    /// [`SolveError::Checkpoint`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(CHECKPOINT_MAGIC) {
            return Err(format!(
                "not a checkpoint file (expected `{CHECKPOINT_MAGIC}`)"
            ));
        }
        let mut digest = None;
        let mut direction_increase = None;
        let mut round_start_commits = None;
        let mut start_objective = None;
        let mut iterations = None;
        let mut commits = None;
        let mut complete = None;
        let mut retiming = None;
        let mut weights = None;
        let mut frozen = None;
        let mut arcs = None;
        let mut ended = false;
        for line in lines {
            let line = line.trim_end();
            if line == "end" {
                ended = true;
                break;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            let ints = |rest: &str| -> Result<Vec<i64>, String> {
                rest.split_whitespace()
                    .map(|t| {
                        t.parse::<i64>()
                            .map_err(|_| format!("bad integer `{t}` in `{key}`"))
                    })
                    .collect()
            };
            match key {
                // Digests are stored self-describing (`fnv1a-v1:<hex>`);
                // an untagged or foreign-tagged digest is refused so a
                // checkpoint from an incompatible digest scheme can
                // never validate by hex coincidence.
                "digest" => digest = Some(parse_digest(rest)?),
                "phase" => {
                    direction_increase = Some(match rest {
                        "increase" => true,
                        "decrease" => false,
                        other => return Err(format!("bad phase `{other}`")),
                    })
                }
                "round_start_commits" => {
                    round_start_commits = Some(
                        rest.parse()
                            .map_err(|_| format!("bad round_start_commits `{rest}`"))?,
                    )
                }
                "start_objective" => {
                    start_objective = Some(
                        rest.parse()
                            .map_err(|_| format!("bad start_objective `{rest}`"))?,
                    )
                }
                "iterations" => {
                    iterations = Some(
                        rest.parse()
                            .map_err(|_| format!("bad iterations `{rest}`"))?,
                    )
                }
                "commits" => {
                    commits = Some(rest.parse().map_err(|_| format!("bad commits `{rest}`"))?)
                }
                "complete" => {
                    complete = Some(match rest {
                        "0" => false,
                        "1" => true,
                        other => return Err(format!("bad complete flag `{other}`")),
                    })
                }
                "r" => retiming = Some(ints(rest)?),
                "weights" => weights = Some(ints(rest)?),
                "frozen" => {
                    frozen = Some(
                        rest.split_whitespace()
                            .map(|t| {
                                t.parse::<u32>()
                                    .map_err(|_| format!("bad frozen index `{t}`"))
                            })
                            .collect::<Result<Vec<u32>, String>>()?,
                    )
                }
                "arcs" => {
                    arcs = Some(
                        rest.split_whitespace()
                            .map(|t| {
                                let (p, q) =
                                    t.split_once('>').ok_or_else(|| format!("bad arc `{t}`"))?;
                                Ok((
                                    p.parse::<u32>()
                                        .map_err(|_| format!("bad arc tail `{t}`"))?,
                                    q.parse::<u32>()
                                        .map_err(|_| format!("bad arc head `{t}`"))?,
                                ))
                            })
                            .collect::<Result<Vec<(u32, u32)>, String>>()?,
                    )
                }
                other => return Err(format!("unknown checkpoint key `{other}`")),
            }
        }
        if !ended {
            return Err("truncated checkpoint (missing `end`)".to_string());
        }
        let missing = |what: &str| format!("checkpoint is missing `{what}`");
        Ok(Self {
            digest: digest.ok_or_else(|| missing("digest"))?,
            direction_increase: direction_increase.ok_or_else(|| missing("phase"))?,
            round_start_commits: round_start_commits
                .ok_or_else(|| missing("round_start_commits"))?,
            start_objective: start_objective.ok_or_else(|| missing("start_objective"))?,
            iterations: iterations.ok_or_else(|| missing("iterations"))?,
            commits: commits.ok_or_else(|| missing("commits"))?,
            complete: complete.ok_or_else(|| missing("complete"))?,
            retiming: retiming.ok_or_else(|| missing("r"))?,
            weights: weights.ok_or_else(|| missing("weights"))?,
            frozen: frozen.ok_or_else(|| missing("frozen"))?,
            arcs: arcs.ok_or_else(|| missing("arcs"))?,
        })
    }

    /// Reads and parses a checkpoint file, verifying its sealed
    /// content digest when one is present ([`FileCheckpointSink`]
    /// always writes one; headerless files are accepted as legacy
    /// checkpoints and rely on the strict text format alone).
    ///
    /// # Errors
    ///
    /// [`SolveError::Checkpoint`] on read, seal-verification or parse
    /// failure.
    pub fn read_file(path: &Path) -> Result<Self, SolveError> {
        let text = netlist::fio::read_to_string(path)
            .map_err(|e| SolveError::Checkpoint(format!("{}: {e}", path.display())))?;
        let body = match netlist::fio::unseal(&text) {
            Ok(payload) => payload,
            Err(netlist::fio::SealError::Missing) => &text,
            Err(e) => {
                return Err(SolveError::Checkpoint(format!("{}: {e}", path.display())));
            }
        };
        Self::parse(body).map_err(|m| SolveError::Checkpoint(format!("{}: {m}", path.display())))
    }

    /// Validates the checkpoint against the instance it is about to
    /// resume: matching digest, consistent lengths, in-range indices,
    /// no host-targeted arcs (the constraint system rejects those).
    pub(crate) fn validate(&self, num_vertices: usize, digest: u64) -> Result<(), String> {
        if self.digest != digest {
            return Err(format!(
                "checkpoint digest {} does not match this instance ({}); \
                 the circuit, problem or solve configuration changed",
                format_digest(self.digest),
                format_digest(digest)
            ));
        }
        if self.retiming.len() != num_vertices {
            return Err(format!(
                "checkpoint has {} retiming labels, instance has {num_vertices} vertices",
                self.retiming.len()
            ));
        }
        if !self.complete && self.weights.len() != num_vertices {
            return Err(format!(
                "checkpoint has {} weights, instance has {num_vertices} vertices",
                self.weights.len()
            ));
        }
        // The host's weight is pinned to 0 by `ConstraintSystem::new`;
        // every other weight starts at 1 and only rises.
        if self.weights.first().is_some_and(|&w| w != 0) {
            return Err("checkpoint host weight must be 0".to_string());
        }
        if self.weights.iter().skip(1).any(|&w| w < 1) {
            return Err("checkpoint contains a weight below 1".to_string());
        }
        let in_range = |i: u32| (i as usize) < num_vertices;
        if let Some(&i) = self.frozen.iter().find(|&&i| !in_range(i)) {
            return Err(format!("frozen index {i} out of range"));
        }
        for &(p, q) in &self.arcs {
            if !in_range(p) || !in_range(q) {
                return Err(format!("arc {p}>{q} out of range"));
            }
            if q == 0 {
                return Err(format!("arc {p}>{q} targets the host"));
            }
        }
        if self.round_start_commits > self.commits {
            return Err("round_start_commits exceeds commits".to_string());
        }
        Ok(())
    }
}

/// Where periodic checkpoints go. Implementations must be atomic from
/// the reader's point of view (a crash mid-save must not leave a
/// half-written checkpoint where a resume would find it).
pub trait CheckpointSink {
    /// Persists one checkpoint, replacing any previous one.
    ///
    /// # Errors
    ///
    /// I/O failure; the solver records it in
    /// [`DegradationReport::checkpoint_write_failures`] and continues.
    fn save(&mut self, checkpoint: &Checkpoint) -> io::Result<()>;
}

/// A [`CheckpointSink`] writing atomically to one file (temp file in
/// the same directory, then rename) through the fault-injectable
/// `netlist::fio` shim, with the payload sealed under its content
/// digest so a torn or bit-flipped checkpoint is detected at resume
/// instead of silently resuming wrong state.
#[derive(Debug, Clone)]
pub struct FileCheckpointSink {
    path: PathBuf,
}

impl FileCheckpointSink {
    /// A sink writing to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CheckpointSink for FileCheckpointSink {
    fn save(&mut self, checkpoint: &Checkpoint) -> io::Result<()> {
        netlist::fio::write_atomic(&self.path, &netlist::fio::seal(&checkpoint.serialize()))
    }
}

/// A [`CheckpointSink`] keeping every checkpoint in memory (tests and
/// embedding callers).
#[derive(Debug, Clone, Default)]
pub struct MemoryCheckpointSink {
    /// All checkpoints saved, in order.
    pub saved: Vec<Checkpoint>,
}

impl MemoryCheckpointSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointSink for MemoryCheckpointSink {
    fn save(&mut self, checkpoint: &Checkpoint) -> io::Result<()> {
        self.saved.push(checkpoint.clone());
        Ok(())
    }
}

/// Periodic solver progress, streamed through
/// [`Supervision::on_progress`] at iteration boundaries. The serve
/// daemon forwards these as per-job `iteration` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveProgress {
    /// Total solver iterations so far (across phases).
    pub iterations: usize,
    /// Committed improvement rounds so far (`#J`).
    pub commits: usize,
}

/// A shareable progress callback (the solver calls it from whichever
/// thread runs the solve).
pub type ProgressFn = dyn Fn(SolveProgress) + Send + Sync;

/// Supervision controls for one solver run: a budget, an optional
/// checkpoint sink, an optional checkpoint to resume from, the
/// sampled-audit interval, and an optional progress stream. Pass to
/// [`crate::SolverSession::run_supervised`].
pub struct Supervision {
    pub(crate) budget: SolveBudget,
    pub(crate) sink: Option<Box<dyn CheckpointSink>>,
    pub(crate) checkpoint_every: usize,
    pub(crate) resume: Option<Checkpoint>,
    pub(crate) audit_interval: u64,
    pub(crate) progress: Option<Arc<ProgressFn>>,
    pub(crate) progress_every: usize,
}

impl fmt::Debug for Supervision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervision")
            .field("budget", &self.budget)
            .field("sink", &self.sink.is_some())
            .field("checkpoint_every", &self.checkpoint_every)
            .field("resume", &self.resume.is_some())
            .field("audit_interval", &self.audit_interval)
            .field("progress", &self.progress.is_some())
            .field("progress_every", &self.progress_every)
            .finish()
    }
}

impl Default for Supervision {
    fn default() -> Self {
        Self {
            budget: SolveBudget::default(),
            sink: None,
            checkpoint_every: 16,
            resume: None,
            audit_interval: DEFAULT_AUDIT_INTERVAL,
            progress: None,
            progress_every: DEFAULT_PROGRESS_INTERVAL,
        }
    }
}

/// Default sampled-audit interval: every Nth incremental-engine call
/// is re-run on the from-scratch engine and compared bit-for-bit.
pub const DEFAULT_AUDIT_INTERVAL: u64 = 64;

/// Default progress-stream interval: [`Supervision::on_progress`]
/// fires every Nth solver iteration.
pub const DEFAULT_PROGRESS_INTERVAL: usize = 32;

impl Supervision {
    /// Default supervision: unlimited budget, no checkpoints, audits
    /// every [`DEFAULT_AUDIT_INTERVAL`]th engine call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the budget.
    #[must_use]
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sends periodic checkpoints to `sink`.
    #[must_use]
    pub fn checkpoint_to(mut self, sink: impl CheckpointSink + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Checkpoint every `every` solver iterations (default 16; clamped
    /// to at least 1).
    #[must_use]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Resumes from a previously saved checkpoint.
    #[must_use]
    pub fn resume_from(mut self, checkpoint: Checkpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Audits every `n`th incremental-engine call against the
    /// from-scratch oracle (default [`DEFAULT_AUDIT_INTERVAL`];
    /// clamped to at least 1 — 1 audits every call).
    #[must_use]
    pub fn audit_every(mut self, n: u64) -> Self {
        self.audit_interval = n.max(1);
        self
    }

    /// Streams [`SolveProgress`] through `f` at iteration boundaries.
    #[must_use]
    pub fn on_progress(mut self, f: Arc<ProgressFn>) -> Self {
        self.progress = Some(f);
        self
    }

    /// Fires the progress stream every `every` iterations (default
    /// [`DEFAULT_PROGRESS_INTERVAL`]; clamped to at least 1 — 1
    /// reports every iteration).
    #[must_use]
    pub fn progress_every(mut self, every: usize) -> Self {
        self.progress_every = every.max(1);
        self
    }
}

/// A coarse model of the solver's memory footprint in bytes: graph
/// adjacency, per-vertex labels, and the constraint system with its
/// closure network. Used for [`SolveBudget::max_memory_estimate`]; it
/// is a planning estimate, not an allocator measurement.
pub fn memory_estimate(graph: &RetimeGraph, system: &ConstraintSystem) -> usize {
    graph.num_vertices() * 96 + graph.num_edges() * 48 + system.num_arcs() * 64
}

/// The supervisor's per-run state: resolved deadline, breaker flags,
/// checkpoint plumbing and the accumulating [`DegradationReport`].
pub(crate) struct SupervisorRt {
    budget: SolveBudget,
    deadline: Option<Instant>,
    audit_interval: u64,
    sink: Option<Box<dyn CheckpointSink>>,
    checkpoint_every: usize,
    resume: Option<Checkpoint>,
    progress: Option<Arc<ProgressFn>>,
    progress_every: usize,
    /// The instance fingerprint stamped into every checkpoint.
    pub(crate) digest: u64,
    /// Objective of the original starting retiming.
    pub(crate) start_objective: i64,
    /// `stats.commits` at the start of the current round.
    pub(crate) round_start_commits: usize,
    /// Accumulated degradation.
    pub(crate) report: DegradationReport,
    /// Set once a budget stop fires; phases unwind cooperatively.
    pub(crate) stop: Option<StopReason>,
}

impl SupervisorRt {
    pub(crate) fn new(supervision: Supervision, digest: u64) -> Self {
        let deadline = supervision.budget.wall_time.map(|d| Instant::now() + d);
        Self {
            deadline,
            audit_interval: supervision.audit_interval,
            sink: supervision.sink,
            checkpoint_every: supervision.checkpoint_every,
            resume: supervision.resume,
            progress: supervision.progress,
            progress_every: supervision.progress_every,
            budget: supervision.budget,
            digest,
            start_objective: 0,
            round_start_commits: 0,
            report: DegradationReport::default(),
            stop: None,
        }
    }

    pub(crate) fn take_resume(&mut self) -> Option<Checkpoint> {
        self.resume.take()
    }

    /// The cooperative budget check, run at iteration and phase
    /// boundaries. Records the first stop reason, cancels the shared
    /// token on deadline expiry, and returns `true` when the solve
    /// should unwind with its best-so-far result.
    pub(crate) fn should_stop(
        &mut self,
        iterations: usize,
        mem_estimate: impl FnOnce() -> usize,
    ) -> bool {
        if self.stop.is_some() {
            return true;
        }
        let reason = if self.deadline.is_some_and(|d| Instant::now() >= d) {
            // The deadline is shared state: siblings under the same
            // budget must stop too.
            self.budget.token.cancel();
            Some(StopReason::WallTime)
        } else if self.budget.token.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self
            .budget
            .max_iterations
            .is_some_and(|cap| iterations >= cap)
        {
            Some(StopReason::Iterations)
        } else if self
            .budget
            .max_memory_estimate
            .is_some_and(|cap| mem_estimate() > cap)
        {
            Some(StopReason::Memory)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.stop = Some(reason);
            self.report.budget_stop = Some(reason);
        }
        self.stop.is_some()
    }

    /// Whether call number `calls` (1-based) is a sampled-audit point.
    pub(crate) fn audit_due(&self, calls: u64) -> bool {
        calls.is_multiple_of(self.audit_interval)
    }

    /// Streams progress to the registered callback at the configured
    /// cadence (a no-op without one).
    pub(crate) fn tick_progress(&self, iterations: usize, commits: usize) {
        if let Some(f) = &self.progress {
            if iterations.is_multiple_of(self.progress_every) {
                f(SolveProgress {
                    iterations,
                    commits,
                });
            }
        }
    }

    pub(crate) fn closure_allowed(&self) -> bool {
        self.report.closure_trip.is_none()
    }

    pub(crate) fn checker_allowed(&self) -> bool {
        self.report.checker_trip.is_none()
    }

    pub(crate) fn trip_closure(&mut self, iteration: usize, cause: TripCause) {
        if self.report.closure_trip.is_none() {
            self.report.closure_trip = Some(BreakerTrip { iteration, cause });
        }
    }

    pub(crate) fn trip_checker(&mut self, iteration: usize, cause: TripCause) {
        if self.report.checker_trip.is_none() {
            self.report.checker_trip = Some(BreakerTrip { iteration, cause });
        }
    }

    /// Whether iteration `iterations` is a periodic-checkpoint point.
    pub(crate) fn checkpoint_due(&self, iterations: usize) -> bool {
        self.sink.is_some() && iterations.is_multiple_of(self.checkpoint_every)
    }

    pub(crate) fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Saves a checkpoint; failures are recorded, not fatal.
    pub(crate) fn save(&mut self, checkpoint: &Checkpoint) {
        if let Some(sink) = self.sink.as_mut() {
            if sink.save(checkpoint).is_err() {
                self.report.checkpoint_write_failures =
                    self.report.checkpoint_write_failures.saturating_add(1);
            }
        }
    }

    /// Builds a checkpoint of the current solver state.
    pub(crate) fn snapshot(
        &self,
        r: &Retiming,
        system: Option<&ConstraintSystem>,
        direction_increase: bool,
        iterations: usize,
        commits: usize,
        complete: bool,
    ) -> Checkpoint {
        let (weights, frozen, arcs) = match system {
            Some(system) => (
                (0..system.len())
                    .map(|i| system.weight(VertexId::new(i)))
                    .collect(),
                (1..system.len())
                    .filter(|&i| system.is_frozen(VertexId::new(i)))
                    .map(|i| i as u32)
                    .collect(),
                system.arc_log().to_vec(),
            ),
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        Checkpoint {
            digest: self.digest,
            direction_increase,
            round_start_commits: self.round_start_commits,
            start_objective: self.start_objective,
            iterations,
            commits,
            complete,
            retiming: r.as_slice().to_vec(),
            weights,
            frozen,
            arcs,
        }
    }
}

/// FNV-1a fingerprint of the instance a solve runs over: graph
/// structure, delays, problem coefficients and the solve-shape
/// configuration bits. Checkpoints embed it so a resume against a
/// different instance is refused instead of corrupting the solve.
pub(crate) fn instance_digest(
    graph: &RetimeGraph,
    problem: &Problem,
    enable_p2: bool,
    bidirectional: bool,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph.num_vertices() as u64);
    h.write_u64(graph.num_edges() as u64);
    for e in graph.edges() {
        h.write_u64(e.from.index() as u64);
        h.write_u64(e.to.index() as u64);
        h.write_u64(u64::from(e.weight));
    }
    for v in graph.vertices() {
        h.write_i64(graph.delay(v));
    }
    for &b in &problem.b {
        h.write_i64(b);
    }
    h.write_i64(problem.r_min);
    h.write_i64(problem.params.phi);
    h.write_i64(problem.params.t_setup);
    h.write_i64(problem.params.t_hold);
    h.write_u64(u64::from(enable_p2));
    h.write_u64(u64::from(bidirectional));
    h.finish()
}

/// Outcome of a supervised solve.
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// The solve ran to local optimality.
    Complete(crate::algorithm::Solution),
    /// A budget stopped the solve early; the carried solution is the
    /// best feasible retiming found so far.
    Degraded(DegradedSolution),
}

/// A budget-stopped solve's result: feasible, but not necessarily
/// locally optimal.
#[derive(Debug, Clone)]
pub struct DegradedSolution {
    /// The best feasible retiming committed before the stop, with the
    /// objective progress made so far.
    pub solution: crate::algorithm::Solution,
    /// What stopped the solve.
    pub reason: StopReason,
}

impl SolveOutcome {
    /// The carried solution, complete or degraded.
    pub fn solution(&self) -> &crate::algorithm::Solution {
        match self {
            SolveOutcome::Complete(s) => s,
            SolveOutcome::Degraded(d) => &d.solution,
        }
    }

    /// Consumes the outcome, returning the carried solution.
    pub fn into_solution(self) -> crate::algorithm::Solution {
        match self {
            SolveOutcome::Complete(s) => s,
            SolveOutcome::Degraded(d) => d.solution,
        }
    }

    /// `true` for [`SolveOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded(_))
    }

    /// The stop reason of a degraded outcome.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            SolveOutcome::Complete(_) => None,
            SolveOutcome::Degraded(d) => Some(d.reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            digest: 0xdead_beef_cafe_f00d,
            direction_increase: true,
            round_start_commits: 3,
            start_objective: -41,
            iterations: 120,
            commits: 7,
            complete: false,
            retiming: vec![0, -1, 2, 0],
            weights: vec![0, 2, 1, 3],
            frozen: vec![2],
            arcs: vec![(1, 2), (3, 1)],
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let cp = sample_checkpoint();
        let text = cp.serialize();
        assert_eq!(Checkpoint::parse(&text).unwrap(), cp);
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("some other file\n").is_err());
        let mut truncated = sample_checkpoint().serialize();
        truncated.truncate(truncated.len() - 5); // drop "end\n" and more
        assert!(Checkpoint::parse(&truncated)
            .unwrap_err()
            .contains("truncated"));
        let bad_int = sample_checkpoint()
            .serialize()
            .replace("commits 7", "commits x");
        assert!(Checkpoint::parse(&bad_int).is_err());
    }

    #[test]
    fn checkpoint_validation_catches_mismatches() {
        let cp = sample_checkpoint();
        assert!(cp.validate(4, cp.digest).is_ok());
        assert!(cp
            .validate(4, cp.digest + 1)
            .unwrap_err()
            .contains("digest"));
        assert!(cp.validate(5, cp.digest).unwrap_err().contains("labels"));
        let mut host_arc = cp.clone();
        host_arc.arcs.push((1, 0));
        assert!(host_arc
            .validate(4, cp.digest)
            .unwrap_err()
            .contains("host"));
        let mut bad_weight = cp.clone();
        bad_weight.weights[1] = 0;
        assert!(bad_weight.validate(4, cp.digest).is_err());
        let mut bad_host = cp.clone();
        bad_host.weights[0] = 1;
        assert!(bad_host
            .validate(4, cp.digest)
            .unwrap_err()
            .contains("host weight"));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn budget_limits_are_detected() {
        assert!(!SolveBudget::new().is_limited());
        assert!(SolveBudget::new().with_max_iterations(Some(5)).is_limited());
        assert!(SolveBudget::new()
            .with_wall_time(Some(Duration::from_secs(1)))
            .is_limited());
    }

    #[test]
    fn degradation_report_displays() {
        let clean = DegradationReport::default();
        assert!(clean.is_clean());
        assert_eq!(clean.to_string(), "clean");
        let report = DegradationReport {
            closure_trip: Some(BreakerTrip {
                iteration: 9,
                cause: TripCause::Panic,
            }),
            budget_stop: Some(StopReason::WallTime),
            ..DegradationReport::default()
        };
        let text = report.to_string();
        assert!(text.contains("closure breaker"));
        assert!(text.contains("wall-time"));
        let ser = DegradationReport {
            ser_trip: Some(BreakerTrip {
                iteration: 0,
                cause: TripCause::Divergence,
            }),
            ..DegradationReport::default()
        };
        assert!(!ser.is_clean());
        assert!(ser.to_string().contains("SER engine breaker"));
    }

    #[test]
    fn file_sink_writes_atomically_renamed_file() {
        let dir = std::env::temp_dir().join(format!("minobswin_ckpt_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solve.ckpt");
        let mut sink = FileCheckpointSink::new(&path);
        let cp = sample_checkpoint();
        sink.save(&cp).unwrap();
        assert_eq!(Checkpoint::read_file(&path).unwrap(), cp);
        assert!(!path.with_extension("ckpt.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
