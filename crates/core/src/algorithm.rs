//! **Algorithm 1 — MinObsWin**: minimum register-observability retiming
//! under error-latching-window constraints.
//!
//! Starting from a feasible retiming, the solver repeatedly takes the
//! tentative move `r′(v) = r(v) − w(v)` for every vertex `v` of `I` —
//! the maximum-gain closed set under the active constraints, the exact
//! set the paper's weighted regular forest maintains as `V_P(F)` (see
//! [`crate::closure`] for why the selection is computed exactly here) —
//! checks the constraints under `r′`, and either
//!
//! * records one new *active constraint* `(p, q)` and raises `q`'s
//!   move weight (the paper's `UpdateForest`/`BreakTree` step), or
//! * freezes the responsible vertex when the only fix would retime the
//!   host (registers cannot move past primary inputs/outputs — the
//!   paper's "exited immediately" cases), or
//! * commits `r ← r′` when no violation remains.
//!
//! It terminates when no positive-gain closed set remains. Disabling
//! the P2 machinery (the paper's "commenting out lines 9–12 and
//! 19–21") yields the *Efficient MinObs* baseline of ref \[17\] — see
//! [`crate::minobs`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use retime::{RetimeGraph, Retiming, VertexId};

use crate::closure::ConstraintSystem;
use crate::closure_inc::{ClosureEngine, IncrementalClosure};
use crate::incremental::{IncrementalChecker, PerfCounters};
use crate::problem::Problem;
use crate::supervisor::{
    instance_digest, memory_estimate, Checkpoint, DegradationReport, DegradedSolution, Sabotage,
    SolveOutcome, Supervision, SupervisorRt, TripCause,
};
use crate::verify::{check_feasible, find_violation, Violation};
use crate::SolveError;

/// Solver knobs.
///
/// Construct with [`SolverConfig::default`] and refine with the
/// `with_*` builders — the struct is `#[non_exhaustive]`, so
/// downstream literals would not survive new knobs:
///
/// ```
/// use minobswin::algorithm::SolverConfig;
/// let config = SolverConfig::default().with_p2(false).with_bidirectional(false);
/// assert!(!config.enable_p2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverConfig {
    /// Enforce the P2 (ELW / shortest-path) constraints. `false`
    /// reproduces the *Efficient MinObs* baseline.
    pub enable_p2: bool,
    /// Iteration safety cap; `None` uses `8·|V|² + 10⁴` (the paper
    /// bounds iterations by `|V|²`).
    pub max_iterations: Option<usize>,
    /// Alternate descent passes with the symmetric *ascent* pass
    /// (registers moved backward). The paper's schedule is
    /// decrease-only, which we found suboptimal on instances whose
    /// optimum moves registers backward from the §V initialization
    /// (see DESIGN.md); the default `true` restores the optimality the
    /// paper's Theorem 2 claims. Set `false` for the paper-literal
    /// schedule.
    pub bidirectional: bool,
    /// Use the incremental constraint-checking engine
    /// ([`crate::incremental`]). The default `true` re-relaxes only the
    /// dirty region of each tentative move; `false` forces the
    /// from-scratch checker on every iteration (the engines are
    /// bit-identical, so this is purely a performance knob).
    pub incremental: bool,
    /// Fall back to a full recompute when the dirty region exceeds
    /// this percentage of `|V|` (only meaningful with `incremental`).
    pub max_dirty_percent: u32,
    /// Which max-gain closure engine selects each iteration's move set
    /// ([`crate::closure_inc`]). The default warm-started engine
    /// persists the flow network's residual across iterations; `Fresh`
    /// rebuilds it every call (the engines are bit-identical by the
    /// canonical closure-selection rule, so this is purely a
    /// performance knob).
    pub closure_engine: ClosureEngine,
    /// Test-only fault injection into the incremental engines; see
    /// [`Sabotage`]. Production code leaves this at the default
    /// [`Sabotage::None`].
    #[doc(hidden)]
    pub sabotage: Sabotage,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            enable_p2: true,
            max_iterations: None,
            bidirectional: true,
            incremental: true,
            max_dirty_percent: 50,
            closure_engine: ClosureEngine::default(),
            sabotage: Sabotage::None,
        }
    }
}

impl SolverConfig {
    /// Sets whether the P2 (ELW) constraints are enforced.
    pub fn with_p2(mut self, enable: bool) -> Self {
        self.enable_p2 = enable;
        self
    }

    /// Overrides the iteration safety cap (`None` restores the
    /// `8·|V|² + 10⁴` default).
    pub fn with_max_iterations(mut self, cap: Option<usize>) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sets whether descent phases alternate with ascent phases.
    pub fn with_bidirectional(mut self, bidirectional: bool) -> Self {
        self.bidirectional = bidirectional;
        self
    }

    /// Sets whether the incremental constraint checker is used.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Sets the dirty-region fallback threshold as a percentage of
    /// `|V|`.
    pub fn with_max_dirty_percent(mut self, percent: u32) -> Self {
        self.max_dirty_percent = percent;
        self
    }

    /// Selects the closure engine ([`ClosureEngine::Warm`] by default).
    pub fn with_closure_engine(mut self, engine: ClosureEngine) -> Self {
        self.closure_engine = engine;
        self
    }

    /// Test-only: injects a fault into an incremental engine so the
    /// supervisor's circuit breakers can be exercised.
    #[doc(hidden)]
    pub fn with_sabotage(mut self, sabotage: Sabotage) -> Self {
        self.sabotage = sabotage;
        self
    }
}

/// Counters describing a solver run (the paper reports `#J`, the
/// number of committed improvement rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Committed improvement rounds (`#J` in Table I).
    pub commits: usize,
    /// Total loop iterations.
    pub iterations: usize,
    /// Active constraints recorded (forest updates).
    pub constraints_added: usize,
    /// `BreakTree` invocations (weight corrections).
    pub weight_updates: usize,
    /// Vertices frozen because their fix would retime the host.
    pub freezes: usize,
    /// Violations whose paper-designated blame vertex was not in the
    /// move set, attributed to the move collectively instead.
    pub fallback_attributions: usize,
    /// P0 violations repaired.
    pub p0_fixes: usize,
    /// P1 violations repaired.
    pub p1_fixes: usize,
    /// P2 violations repaired (the MinObsWin-specific machinery).
    pub p2_fixes: usize,
    /// Constraint-checking perf counters (edges relaxed, dirty-region
    /// sizes, incremental/full split, per-phase nanos).
    pub perf: PerfCounters,
    /// How far the supervisor degraded this run (breaker trips, budget
    /// stops, restarts); [`DegradationReport::is_clean`] on a healthy
    /// solve.
    pub degradation: DegradationReport,
}

/// The result of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The final (feasible, locally unimprovable) retiming.
    pub retiming: Retiming,
    /// Objective gain `B̂(r_final) − B̂(r_initial)` (scaled register
    /// observability reduction).
    pub objective_gain: i64,
    /// Run counters.
    pub stats: SolverStats,
}

/// The solver core behind [`crate::SolverSession::run`]:
/// unsupervised — no budget, no checkpoints — so the outcome is
/// always complete.
pub(crate) fn run_solver(
    graph: &RetimeGraph,
    problem: &Problem,
    initial: Retiming,
    config: SolverConfig,
) -> Result<Solution, SolveError> {
    run_supervised_solver(graph, problem, initial, config, Supervision::default())
        .map(SolveOutcome::into_solution)
}

/// The supervised solver core behind
/// [`crate::SolverSession::run_supervised`]: budgets, panic-isolated
/// engines with self-healing fallback, checkpoint/resume, and a final
/// verification gate (see [`crate::supervisor`]).
pub(crate) fn run_supervised_solver(
    graph: &RetimeGraph,
    problem: &Problem,
    initial: Retiming,
    config: SolverConfig,
    supervision: Supervision,
) -> Result<SolveOutcome, SolveError> {
    let effective_problem = if config.enable_p2 {
        problem.clone()
    } else {
        Problem {
            r_min: i64::MIN / 4, // never binds
            ..problem.clone()
        }
    };
    let problem = &effective_problem;
    let digest = instance_digest(graph, problem, config.enable_p2, config.bidirectional);
    let mut rt = SupervisorRt::new(supervision, digest);

    let mut initial = initial;
    let mut stats = SolverStats::default();
    let mut seed: Option<PhaseSeed> = None;
    if let Some(cp) = rt.take_resume() {
        cp.validate(graph.num_vertices(), digest)
            .map_err(SolveError::Checkpoint)?;
        let resumed = Retiming::from_values(graph, cp.retiming.clone())?;
        if let Err(v) = check_feasible(graph, problem, &resumed) {
            return Err(SolveError::Checkpoint(format!(
                "checkpointed retiming is infeasible: {v:?}"
            )));
        }
        if cp.complete {
            // The interrupted solve had already finished; report the
            // same result instantly.
            stats.iterations = cp.iterations;
            stats.commits = cp.commits;
            stats.degradation = rt.report;
            return Ok(SolveOutcome::Complete(Solution {
                objective_gain: problem.objective(&resumed) - cp.start_objective,
                retiming: resumed,
                stats,
            }));
        }
        rt.start_objective = cp.start_objective;
        rt.round_start_commits = cp.round_start_commits;
        stats.iterations = cp.iterations;
        stats.commits = cp.commits;
        seed = Some(PhaseSeed::from_checkpoint(cp));
        initial = resumed;
    } else {
        if let Err(v) = check_feasible(graph, problem, &initial) {
            return Err(SolveError::InfeasibleInitial(format!("{v:?}")));
        }
        rt.start_objective = problem.objective(&initial);
    }

    let mut r = solve_loop(
        graph,
        problem,
        initial.clone(),
        config,
        &mut rt,
        &mut stats,
        seed,
    )?;

    // Final verification gate: the last rung of the degradation
    // ladder. An engine corruption that slipped between sampled audits
    // can only surface here; redo the whole solve with the
    // from-scratch engines (bit-identical by construction, so this is
    // always sound — just slow).
    if check_feasible(graph, problem, &r).is_err() {
        rt.report.full_restart = true;
        rt.trip_checker(stats.iterations, TripCause::Divergence);
        stats.perf.breaker_trips += 1;
        let safe = config
            .with_incremental(false)
            .with_closure_engine(ClosureEngine::Fresh)
            .with_sabotage(Sabotage::None);
        r = solve_loop(graph, problem, initial, safe, &mut rt, &mut stats, None)?;
        if let Err(v) = check_feasible(graph, problem, &r) {
            return Err(SolveError::Verification(format!(
                "from-scratch re-solve still infeasible: {v:?}"
            )));
        }
    }

    // A terminal checkpoint lets `--resume` of a finished solve return
    // instantly; a budget-stopped solve keeps its resumable snapshot.
    if rt.stop.is_none() && rt.has_sink() {
        let cp = rt.snapshot(&r, None, false, stats.iterations, stats.commits, true);
        rt.save(&cp);
    }

    stats.degradation = rt.report;
    let solution = Solution {
        objective_gain: problem.objective(&r) - rt.start_objective,
        retiming: r,
        stats,
    };
    Ok(match rt.stop {
        Some(reason) => SolveOutcome::Degraded(DegradedSolution { solution, reason }),
        None => SolveOutcome::Complete(solution),
    })
}

/// The alternating descent/ascent schedule around [`run_phase`],
/// entered fresh or from a checkpoint seed. Returns the best committed
/// retiming; on a budget stop (`rt.stop` set) that is the
/// best-so-far, not a local optimum.
fn solve_loop(
    graph: &RetimeGraph,
    problem: &Problem,
    initial: Retiming,
    config: SolverConfig,
    rt: &mut SupervisorRt,
    stats: &mut SolverStats,
    mut seed: Option<PhaseSeed>,
) -> Result<Retiming, SolveError> {
    // Hoisted out of the phase loop: the cap only depends on |V|.
    let n = graph.num_vertices();
    let iteration_cap = config.max_iterations.unwrap_or(8 * n * n + 10_000);
    let mut r = initial;
    // The paper's schedule is the single descent phase. With
    // `bidirectional`, alternate descent and ascent until neither
    // commits (each committing phase strictly improves the bounded
    // objective, so this terminates).
    let mut resuming = seed.is_some();
    loop {
        let before = if resuming {
            rt.round_start_commits
        } else {
            stats.commits
        };
        rt.round_start_commits = before;
        let resume_in_increase = resuming && seed.as_ref().is_some_and(|s| s.direction_increase);
        if !resume_in_increase {
            let phase_seed = if resuming { seed.take() } else { None };
            r = run_phase(
                graph,
                problem,
                r,
                config,
                iteration_cap,
                Direction::Decrease,
                stats,
                rt,
                phase_seed,
            )?;
            if rt.stop.is_some() {
                return Ok(r);
            }
        }
        if config.bidirectional {
            let phase_seed = if resume_in_increase {
                seed.take()
            } else {
                None
            };
            r = run_phase(
                graph,
                problem,
                r,
                config,
                iteration_cap,
                Direction::Increase,
                stats,
                rt,
                phase_seed,
            )?;
            if rt.stop.is_some() {
                return Ok(r);
            }
        }
        resuming = false;
        if stats.commits == before {
            break;
        }
    }
    Ok(r)
}

/// Which way registers move in the current phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// The paper's direction: `r(v)` decreases (registers move from
    /// fanins to fanouts).
    Decrease,
    /// The symmetric pass: `r(v)` increases.
    Increase,
}

/// A checkpoint's constraint-system state, replayed into the fresh
/// `ConstraintSystem` of the phase being resumed. Replaying through
/// the public API repopulates the change logs, so the warm closure
/// engine rebuilds over the restored state exactly as it would have
/// over the live one.
#[derive(Debug)]
struct PhaseSeed {
    direction_increase: bool,
    weights: Vec<i64>,
    frozen: Vec<u32>,
    arcs: Vec<(u32, u32)>,
}

impl PhaseSeed {
    fn from_checkpoint(cp: Checkpoint) -> Self {
        Self {
            direction_increase: cp.direction_increase,
            weights: cp.weights,
            frozen: cp.frozen,
            arcs: cp.arcs,
        }
    }

    fn replay(&self, system: &mut ConstraintSystem) {
        for (i, &w) in self.weights.iter().enumerate().skip(1) {
            system.raise_weight(VertexId::new(i), w);
        }
        for &i in &self.frozen {
            system.freeze(VertexId::new(i as usize));
        }
        for &(p, q) in &self.arcs {
            system.add_arc(VertexId::new(p as usize), VertexId::new(q as usize));
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal: the supervised phase needs the full context
fn run_phase(
    graph: &RetimeGraph,
    problem: &Problem,
    mut r: Retiming,
    config: SolverConfig,
    iteration_cap: usize,
    direction: Direction,
    stats: &mut SolverStats,
    rt: &mut SupervisorRt,
    seed: Option<PhaseSeed>,
) -> Result<Retiming, SolveError> {
    let sign = match direction {
        Direction::Decrease => -1i64,
        Direction::Increase => 1,
    };
    // A phase's gains: decreasing r(v) by w gains b(v)·w; increasing
    // gains −b(v)·w.
    let gains: Vec<i64> = problem.b.iter().map(|&b| -sign * b).collect();
    let mut system = ConstraintSystem::new(gains);
    freeze_dead_vertices(graph, &mut system);
    if let Some(seed) = &seed {
        seed.replay(&mut system);
    }

    // Engines are gated on their circuit breakers: once tripped (this
    // phase or an earlier one), the fallback engine serves the rest of
    // the solve.
    let mut checker = (config.incremental && rt.checker_allowed())
        .then(|| IncrementalChecker::new(graph, problem, r.clone(), config.max_dirty_percent));
    // One warm closure engine per phase: it observes `system`'s change
    // log, so its lifetime must match the constraint system's.
    let mut warm_closure = match config.closure_engine {
        ClosureEngine::Warm { rebuild_percent } if rt.closure_allowed() => {
            Some(IncrementalClosure::new(rebuild_percent))
        }
        _ => None,
    };
    let direction_increase = direction == Direction::Increase;

    let mut local_iterations = 0usize;
    loop {
        // Cooperative budget check: deadline / token / iteration /
        // memory. On a stop, persist a resumable snapshot and unwind
        // with the best-so-far (feasible) retiming.
        if rt.should_stop(stats.iterations, || memory_estimate(graph, &system)) {
            let cp = rt.snapshot(
                &r,
                Some(&system),
                direction_increase,
                stats.iterations,
                stats.commits,
                false,
            );
            rt.save(&cp);
            return Ok(r);
        }
        stats.iterations += 1;
        local_iterations += 1;
        rt.tick_progress(stats.iterations, stats.commits);
        if local_iterations > iteration_cap {
            eprintln!(
                "warning: minobswin solver hit the iteration safety cap \
                 [phase={direction:?} cap={iteration_cap} vertices={} commits={} \
                 constraints={} freezes={}]",
                graph.num_vertices() - 1,
                stats.commits,
                stats.constraints_added,
                stats.freezes,
            );
            return Err(SolveError::IterationLimit(local_iterations));
        }
        let t_closure = Instant::now();
        // --- Closure selection, isolated and audited. ---
        let mut selected: Option<Vec<VertexId>> = None;
        if let Some(engine) = warm_closure.as_mut() {
            let sabotage = config.sabotage;
            let call = stats.perf.closure_calls + 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut members = engine.select(&system, &mut stats.perf);
                let sabotaged = sabotage.corrupt_closure(call, &mut members);
                if !sabotaged {
                    // Differential oracle: in debug builds every warm
                    // selection is compared against the from-scratch
                    // engine (the canonical rule makes them
                    // bit-identical). In release builds the sampled
                    // audit below takes over.
                    debug_assert_eq!(
                        members,
                        system.max_gain_closed_set(),
                        "warm closure engine diverged from the from-scratch oracle"
                    );
                }
                members
            }));
            match outcome {
                Ok(members) => selected = Some(members),
                Err(_) => {
                    // The engine panicked (or its debug oracle fired):
                    // trip the breaker, abandon the possibly-corrupt
                    // engine, recompute this selection from scratch.
                    rt.trip_closure(stats.iterations, TripCause::Panic);
                    stats.perf.breaker_trips += 1;
                }
            }
        }
        if !rt.closure_allowed() {
            warm_closure = None;
        }
        let move_set = match selected {
            Some(mut members) => {
                if warm_closure.is_some() && rt.audit_due(stats.perf.closure_calls) {
                    // Release-mode sampled divergence audit: re-run the
                    // from-scratch engine and compare bit-for-bit.
                    stats.perf.audit_checks += 1;
                    let oracle = system.max_gain_closed_set();
                    if members != oracle {
                        rt.trip_closure(stats.iterations, TripCause::Divergence);
                        stats.perf.breaker_trips += 1;
                        warm_closure = None;
                        members = oracle;
                    }
                }
                members
            }
            None => {
                let (members, touched) = system.max_gain_closed_set_counted();
                stats.perf.closure_calls += 1;
                stats.perf.closure_arcs_touched += touched;
                members
            }
        };
        stats.perf.closure_nanos += t_closure.elapsed().as_nanos() as u64;
        if move_set.is_empty() {
            break;
        }
        let mut r_tent = r.clone();
        for &v in &move_set {
            r_tent.add(v, sign * system.weight(v));
        }
        let t_check = Instant::now();
        // --- Constraint check, isolated and audited. ---
        let mut checked: Option<Option<Violation>> = None;
        if let Some(chk) = checker.as_mut() {
            let sabotage = config.sabotage;
            let check = stats.perf.checks() + 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut verdict = chk.check_and_commit(&r_tent, &move_set, &mut stats.perf);
                let sabotaged = sabotage.corrupt_verdict(check, &mut verdict);
                if !sabotaged {
                    // Differential oracle: in debug builds every single
                    // check is compared against the from-scratch engine.
                    debug_assert_eq!(
                        verdict,
                        find_violation(graph, problem, &r_tent),
                        "incremental checker diverged from the from-scratch oracle"
                    );
                }
                verdict
            }));
            match outcome {
                Ok(verdict) => checked = Some(verdict),
                Err(_) => {
                    rt.trip_checker(stats.iterations, TripCause::Panic);
                    stats.perf.breaker_trips += 1;
                }
            }
        }
        if !rt.checker_allowed() {
            checker = None;
        }
        let verdict = match checked {
            Some(verdict) => {
                if checker.is_some() && rt.audit_due(stats.perf.checks()) {
                    stats.perf.audit_checks += 1;
                    let oracle = find_violation(graph, problem, &r_tent);
                    if verdict != oracle {
                        rt.trip_checker(stats.iterations, TripCause::Divergence);
                        stats.perf.breaker_trips += 1;
                        checker = None;
                        oracle
                    } else {
                        verdict
                    }
                } else {
                    verdict
                }
            }
            None => {
                stats.perf.full_checks += 1;
                stats.perf.edges_relaxed_full += graph.num_edges() as u64;
                find_violation(graph, problem, &r_tent)
            }
        };
        stats.perf.check_nanos += t_check.elapsed().as_nanos() as u64;
        match verdict {
            None => {
                debug_assert!(
                    problem.objective(&r_tent) > problem.objective(&r),
                    "commits must strictly improve the objective"
                );
                r = r_tent;
                stats.commits += 1;
            }
            Some(violation) => {
                match violation {
                    Violation::P0 { .. } => stats.p0_fixes += 1,
                    Violation::P1(_) => stats.p1_fixes += 1,
                    Violation::P2(_) => stats.p2_fixes += 1,
                }
                let request = attribute(
                    graph, &system, &move_set, &r_tent, &violation, direction, stats,
                );
                if std::env::var_os("MINOBSWIN_TRACE").is_some() {
                    eprintln!(
                        "iter {} {direction:?} |I|={} viol {:?} -> {:?} [arcs={}]",
                        stats.iterations,
                        move_set.len(),
                        violation,
                        request,
                        system.num_arcs(),
                    );
                }
                apply_request(graph, &mut system, request, stats);
            }
        }
        if rt.checkpoint_due(stats.iterations) {
            let cp = rt.snapshot(
                &r,
                Some(&system),
                direction_increase,
                stats.iterations,
                stats.commits,
                false,
            );
            rt.save(&cp);
        }
    }
    Ok(r)
}

/// `(p, q, total_weight)` derived from a violation, or a freeze of `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Request {
    Link {
        p: VertexId,
        q: VertexId,
        weight: i64,
    },
    Freeze(VertexId),
}

fn apply_request(
    graph: &RetimeGraph,
    system: &mut ConstraintSystem,
    request: Request,
    stats: &mut SolverStats,
) {
    match request {
        Request::Freeze(p) => {
            system.freeze(p);
            stats.freezes += 1;
        }
        Request::Link { p, q, weight } => {
            // Moving more registers over one vertex than the circuit
            // contains can never be required by a satisfiable fix.
            let weight_cap = graph.total_registers() as i64 + graph.num_vertices() as i64;
            if weight > weight_cap {
                system.freeze(q);
                stats.freezes += 1;
                return;
            }
            let raised = system.raise_weight(q, weight);
            let added = system.add_arc(p, q);
            if raised {
                stats.weight_updates += 1;
            }
            if added {
                stats.constraints_added += 1;
            }
            if !raised && !added {
                // No change: the violation would recur forever; freeze
                // the responsible vertex to guarantee progress. (Per the
                // closure semantics this indicates p == q or an
                // attribution fallback; both are rare and conservative.)
                system.freeze(p);
                stats.freezes += 1;
            }
        }
    }
}

/// Derives the active-constraint request for a violation found under
/// the tentative move.
fn attribute(
    graph: &RetimeGraph,
    system: &ConstraintSystem,
    move_set: &[VertexId],
    r_tent: &Retiming,
    violation: &Violation,
    direction: Direction,
    stats: &mut SolverStats,
) -> Request {
    let in_move = |v: VertexId| move_set.contains(&v);
    let planned = |v: VertexId| if in_move(v) { system.weight(v) } else { 0 };
    let pick_p = |candidates: &[VertexId], stats: &mut SolverStats| -> VertexId {
        for &c in candidates {
            if in_move(c) {
                return c;
            }
        }
        stats.fallback_attributions += 1;
        move_set[0]
    };
    match *violation {
        Violation::P0 { edge, weight } => {
            let e = graph.edge(edge);
            // Decrease phase: only the head's decrease can drain the
            // edge, and the tail must follow. Increase phase: the tail's
            // increase drains it, and the head must follow.
            let (cause, q) = match direction {
                Direction::Decrease => (e.to, e.from),
                Direction::Increase => (e.from, e.to),
            };
            let p = pick_p(&[cause], stats);
            if q.is_host() {
                return Request::Freeze(p);
            }
            Request::Link {
                p,
                q,
                weight: planned(q) - weight, // weight < 0: deficit
            }
        }
        Violation::P1(v) => {
            // Decrease phase: move a register out of the path *head* to
            // cut the critical longest path at its start (Fig. 2(b)).
            // Increase phase: pull a register into the path *end*
            // (lt(v), which owns the terminating register/PO window) to
            // cut it at its end.
            let q = match direction {
                Direction::Decrease => v.vertex,
                Direction::Increase => v.lt,
            };
            let p = pick_p(&[v.lt, v.vertex], stats);
            if q.is_host() || q == p {
                return Request::Freeze(p);
            }
            Request::Link {
                p,
                q,
                weight: planned(q) + 1,
            }
        }
        Violation::P2(v) => {
            let t = graph.edge(v.edge).from;
            match direction {
                Direction::Decrease => {
                    // Extend the critical shortest path beyond its
                    // terminating register: move all registers off one
                    // registered out-edge (z, y) of z = rt(u)
                    // (Fig. 2(c)).
                    let z = v.rt;
                    let y_edge = graph.out_edges(z).iter().copied().find(|&e| {
                        let edge = graph.edge(e);
                        !edge.to.is_host() && graph.retimed_weight(e, r_tent) > 0
                    });
                    let p = pick_p(&[v.vertex, t, z], stats);
                    match y_edge {
                        None => {
                            // z's window comes from a primary output: no
                            // register can move past the host.
                            Request::Freeze(p)
                        }
                        Some(e) => {
                            let y = graph.edge(e).to;
                            let deficit = graph.retimed_weight(e, r_tent);
                            Request::Link {
                                p,
                                q: y,
                                weight: planned(y) + deficit,
                            }
                        }
                    }
                }
                Direction::Increase => {
                    // Extend the path at its start instead: pull the
                    // launching register on (t, u) further back by
                    // increasing the tail t (clearing the edge).
                    let p = pick_p(&[v.vertex, t, v.rt], stats);
                    if t.is_host() {
                        return Request::Freeze(p);
                    }
                    let deficit = graph.retimed_weight(v.edge, r_tent);
                    Request::Link {
                        p,
                        q: t,
                        weight: planned(t) + deficit.max(1),
                    }
                }
            }
        }
    }
}

/// Freezes every vertex that cannot reach the host (dead logic): its
/// registers never reach an observation point, and unconstrained
/// decreases there would otherwise grow without bound.
fn freeze_dead_vertices(graph: &RetimeGraph, system: &mut ConstraintSystem) {
    let n = graph.num_vertices();
    let mut reaches = vec![false; n];
    reaches[RetimeGraph::HOST.index()] = true;
    let mut stack = vec![RetimeGraph::HOST];
    while let Some(v) = stack.pop() {
        for &e in graph.in_edges(v) {
            let from = graph.edge(e).from;
            if !reaches[from.index()] {
                reaches[from.index()] = true;
                stack.push(from);
            }
        }
    }
    for v in graph.vertices() {
        if !reaches[v.index()] {
            system.freeze(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SolverSession;
    use netlist::{samples, DelayModel};
    use retime::ElwParams;

    fn uniform_problem(g: &RetimeGraph, phi: i64, r_min: i64) -> Problem {
        let counts = vec![1i64; g.num_vertices()];
        Problem::from_observability_counts(g, &counts, ElwParams::with_phi(phi), r_min)
    }

    #[test]
    fn solves_pipeline_without_constraints_binding() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let p = uniform_problem(&g, 20, 1);
        let sol = SolverSession::new(&g, &p).run().unwrap();
        assert!(sol.objective_gain >= 0);
        assert!(check_feasible(&g, &p, &sol.retiming).is_ok());
    }

    #[test]
    fn infeasible_initial_rejected() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let p = uniform_problem(&g, 2, 1); // phi too tight for r = 0
        let err = SolverSession::new(&g, &p).run().unwrap_err();
        assert!(matches!(err, SolveError::InfeasibleInitial(_)));
    }

    #[test]
    fn p2_constraints_limit_gains() {
        // Same instance, with and without P2: P2 can only reduce the
        // achievable gain. R_min is chosen as §V does — the minimum
        // short path of the starting retiming — so the start is
        // feasible but further shrinkage is forbidden.
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let phi = 8;
        let r0 = Retiming::zero(&g);
        let labels = retime::LrLabels::compute(&g, &r0, ElwParams::with_phi(phi)).unwrap();
        let r_min = labels.min_short_path(&g, &r0).unwrap();
        let p2_problem = uniform_problem(&g, phi, r_min);
        let with_p2 = SolverSession::new(&g, &p2_problem)
            .initial(r0.clone())
            .run()
            .unwrap();
        let without = SolverSession::new(&g, &p2_problem)
            .config(SolverConfig::default().with_p2(false))
            .initial(r0)
            .run()
            .unwrap();
        assert!(with_p2.objective_gain <= without.objective_gain);
        // The P2-constrained result satisfies the full constraint set.
        assert!(check_feasible(&g, &uniform_problem(&g, phi, r_min), &with_p2.retiming).is_ok());
    }

    #[test]
    fn final_retiming_has_no_positive_move() {
        // Local optimality: after termination, no single positive-gain
        // vertex can decrease by one feasibly.
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let p = uniform_problem(&g, 8, 1);
        let sol = SolverSession::new(&g, &p).run().unwrap();
        for v in p.positive_gain_vertices() {
            let mut r = sol.retiming.clone();
            r.add(v, -1);
            assert!(
                check_feasible(&g, &p, &r).is_err(),
                "single decrease of {v} still feasible: not even 1-locally optimal"
            );
        }
    }

    #[test]
    fn stats_are_consistent() {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r0 = Retiming::zero(&g);
        let labels = retime::LrLabels::compute(&g, &r0, ElwParams::with_phi(8)).unwrap();
        let r_min = labels.min_short_path(&g, &r0).unwrap();
        let p = uniform_problem(&g, 8, r_min);
        let sol = SolverSession::new(&g, &p).initial(r0).run().unwrap();
        assert!(sol.stats.iterations >= sol.stats.commits);
        assert!(sol.stats.iterations >= sol.stats.constraints_added);
    }

    #[test]
    fn generated_circuits_solve_and_stay_feasible() {
        for seed in 0..5 {
            let c = netlist::generator::GeneratorConfig::new("alg", seed)
                .gates(80)
                .registers(16)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            let phi = retime::timing::clock_period(&g, &Retiming::zero(&g)).unwrap();
            let p = uniform_problem(&g, phi, 1);
            let sol = SolverSession::new(&g, &p)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(check_feasible(&g, &p, &sol.retiming).is_ok(), "seed {seed}");
            assert!(sol.objective_gain >= 0, "seed {seed}");
        }
    }
}
