//! Problem 1 of the paper: *Min-Obs retiming with ELW constraints*.
//!
//! ```text
//! max  Σ_v −b(v)·r(v)
//! s.t. P0:  w_r(u,v) ≥ 0                       on every edge
//!      P1': every combinational path ≤ Φ − T_s  (via the L labels)
//!      P2': short_path(v) ≥ R_min on registered edges (via R labels)
//! ```
//!
//! `b(v)` is the *observability gain* of moving one register from `v`'s
//! fanins to its fanouts, scaled by `K` to stay integral: with the
//! total register observability `Σ_{(u,v)∈E} obs(u)·w_r(u,v)` (eq. 5),
//!
//! ```text
//! b(v) = Σ_{(u,v)∈E} cnt(u)  −  outdeg(v) · cnt(v)
//! ```
//!
//! where `cnt(x) = K·obs(x)` is the integer ODC popcount. (The paper
//! prints the second term as `Σ_{(v,x)∈E} obs(x)`, which contradicts
//! its own eq. (5) — a register on edge `(v,x)` has the observability
//! of its *driver* `v`; see DESIGN.md §2.)

use retime::{ElwParams, RetimeGraph, Retiming, VertexId};

/// An instance of Problem 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// Clocking parameters Φ, T_s, T_h.
    pub params: ElwParams,
    /// Lower bound on the shortest register-launched path (the ELW
    /// constraint).
    pub r_min: i64,
    /// Per-vertex gain coefficients `b(v)`, indexed by vertex; entry 0
    /// (the host) must be 0.
    pub b: Vec<i64>,
}

impl Problem {
    /// Builds the instance from integer observability counts
    /// (`cnt(v) = K·obs(v)`, e.g. ODC-mask popcounts). `counts[0]` is
    /// the host's count, conventionally `K` (registers on host edges
    /// hold I/O values, assumed fully observable).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the vertex count.
    pub fn from_observability_counts(
        graph: &RetimeGraph,
        counts: &[i64],
        params: ElwParams,
        r_min: i64,
    ) -> Self {
        assert_eq!(counts.len(), graph.num_vertices(), "one count per vertex");
        let mut b = vec![0i64; graph.num_vertices()];
        for edge in graph.edges() {
            // A register on (u, v) carries obs(u): moving one onto the
            // edge (by decreasing r(u)... ) — in terms of coefficients,
            // Σ_e cnt(from)·w_r(e) = const + Σ_v r(v)·(Σ_{(u,v)} cnt(u))
            //                              − Σ_u r(u)·outdeg(u)·cnt(u).
            b[edge.to.index()] += counts[edge.from.index()];
            b[edge.from.index()] -= counts[edge.from.index()];
        }
        b[0] = 0;
        Self { params, r_min, b }
    }

    /// Builds the instance from floating observabilities in `[0, 1]`,
    /// scaled by `k` (the signature width).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn from_observabilities(
        graph: &RetimeGraph,
        obs: &[f64],
        k: usize,
        params: ElwParams,
        r_min: i64,
    ) -> Self {
        let counts: Vec<i64> = obs.iter().map(|&o| (o * k as f64).round() as i64).collect();
        Self::from_observability_counts(graph, &counts, params, r_min)
    }

    /// Augments the objective with an area/power term — the extension
    /// the paper's conclusion sketches ("the objective function in
    /// Problem 1 can be augmented to include area/power weight; the
    /// algorithm itself remains the same"). Each register also costs
    /// `area_weight` abstract units, so
    /// `b'(v) = b(v) + area_weight·(indeg(v) − outdeg(v))` (the
    /// min-area cost vector scaled in).
    pub fn with_area_weight(mut self, graph: &RetimeGraph, area_weight: i64) -> Self {
        for vi in 1..self.b.len() {
            let v = VertexId::new(vi);
            let area = graph.in_edges(v).len() as i64 - graph.out_edges(v).len() as i64;
            self.b[vi] += area_weight * area;
        }
        self
    }

    /// The objective `B̂(r) = Σ_v −b(v)·r(v)` (to maximize).
    pub fn objective(&self, r: &Retiming) -> i64 {
        self.b
            .iter()
            .zip(r.as_slice())
            .map(|(&b, &rv)| -b * rv)
            .sum()
    }

    /// The total scaled register observability
    /// `Σ_e cnt(from)·w_r(e)` for a retiming, given the same counts the
    /// instance was built from. Decreases exactly as [`Problem::objective`]
    /// increases.
    pub fn register_observability(&self, graph: &RetimeGraph, counts: &[i64], r: &Retiming) -> i64 {
        graph
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| counts[e.from.index()] * graph.retimed_weight(retime::EdgeId::new(i), r))
            .sum()
    }

    /// Vertices with positive gain (the candidates the algorithm tries
    /// to decrease).
    pub fn positive_gain_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.b
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &b)| b > 0)
            .map(|(i, _)| VertexId::new(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    fn setup() -> (netlist::Circuit, RetimeGraph) {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        (c, g)
    }

    #[test]
    fn objective_tracks_register_observability() {
        let (_, g) = setup();
        // Arbitrary but deterministic counts.
        let counts: Vec<i64> = (0..g.num_vertices() as i64)
            .map(|i| (i * 37) % 100)
            .collect();
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(20), 1);
        let r0 = Retiming::zero(&g);
        let base_obs = p.register_observability(&g, &counts, &r0);
        assert_eq!(p.objective(&r0), 0);
        // Any feasible move: find a vertex whose decrease keeps P0.
        for v in g.vertices() {
            let mut r = Retiming::zero(&g);
            r.set(v, -1);
            if g.check_nonnegative(&r).is_ok() {
                let gain = p.objective(&r);
                let new_obs = p.register_observability(&g, &counts, &r);
                assert_eq!(base_obs - new_obs, gain, "vertex {v}");
            }
        }
    }

    #[test]
    fn b_sums_to_zero_over_closed_graph() {
        // Σ_v b(v) = Σ_e (cnt(from) at head) − Σ_e cnt(from) = 0.
        let (_, g) = setup();
        let counts = vec![7i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(20), 1);
        let total: i64 = p.b.iter().sum();
        // b[0] was zeroed; the raw sum including the host would be 0,
        // so the remainder equals −(raw host coefficient).
        let host_coeff: i64 = {
            let mut into_host = 0;
            let mut out_of_host = 0;
            for e in g.edges() {
                if e.to.is_host() {
                    into_host += counts[e.from.index()];
                }
                if e.from.is_host() {
                    out_of_host += counts[0];
                }
            }
            into_host - out_of_host
        };
        assert_eq!(total, -host_coeff);
    }

    #[test]
    fn uniform_counts_give_area_coefficients() {
        // With cnt ≡ 1, b(v) = indeg − outdeg: the min-area cost vector.
        let (_, g) = setup();
        let counts = vec![1i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(20), 1);
        for v in g.vertices() {
            let expect = g.in_edges(v).len() as i64 - g.out_edges(v).len() as i64;
            assert_eq!(p.b[v.index()], expect, "vertex {v}");
        }
    }

    #[test]
    fn float_scaling_rounds() {
        let (_, g) = setup();
        let obs = vec![0.5f64; g.num_vertices()];
        let p = Problem::from_observabilities(&g, &obs, 100, ElwParams::with_phi(20), 1);
        for v in g.vertices() {
            let expect = 50 * (g.in_edges(v).len() as i64 - g.out_edges(v).len() as i64);
            assert_eq!(p.b[v.index()], expect);
        }
    }

    #[test]
    fn area_weight_adds_min_area_costs() {
        let (_, g) = setup();
        let counts = vec![5i64; g.num_vertices()];
        let plain = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(20), 1);
        let weighted = plain.clone().with_area_weight(&g, 3);
        for v in g.vertices() {
            let area = g.in_edges(v).len() as i64 - g.out_edges(v).len() as i64;
            assert_eq!(weighted.b[v.index()], plain.b[v.index()] + 3 * area);
        }
        // Zero weight is the identity.
        let same = plain.clone().with_area_weight(&g, 0);
        assert_eq!(same.b, plain.b);
    }

    #[test]
    fn area_weighted_solve_trades_registers_for_observability() {
        // With a huge area weight the objective degenerates to min-area
        // retiming: the solver must not lose registers feasibility and
        // must reduce (or keep) the per-edge register count.
        let c = netlist::samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &netlist::DelayModel::unit()).unwrap();
        let counts = vec![1i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(20), 1)
            .with_area_weight(&g, 1000);
        let sol = crate::SolverSession::new(&g, &p).run().unwrap();
        assert!(g.retimed_registers(&sol.retiming) <= g.retimed_registers(&Retiming::zero(&g)));
    }

    #[test]
    fn positive_gain_vertices_filters() {
        let (_, g) = setup();
        let counts = vec![3i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(20), 1);
        for v in p.positive_gain_vertices() {
            assert!(p.b[v.index()] > 0);
            assert!(!v.is_host());
        }
    }
}
