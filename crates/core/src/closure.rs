//! Maximum-weight **closed set** selection over the active-constraint
//! digraph.
//!
//! Both iMinArea (ref \[20\]) and this paper characterize the move set of
//! each iteration as *the closed set `I` under the active constraints
//! `A` with maximum gain `b(I) > 0`* — the regular forest is \[20\]'s
//! `O(|V|)`-memory device for maintaining it. The paper's two-page
//! sketch under-determines the forest's update invariants (our faithful
//! implementation of the stated regularity conditions cycles on
//! circuits with mixed-sign gains; see DESIGN.md §2), so the solver
//! computes the same set *exactly* instead: maximum-weight closure via
//! a min-cut (the classical project-selection reduction), over the
//! deduplicated constraint arcs. Memory stays `O(|V| + |A|)` with
//! `|A| ≤ |V|²` (in practice a small multiple of `|E|`).
//!
//! # The canonical closure-selection rule
//!
//! A flow network can have many minimum cuts, so "the" max-gain closed
//! set is under-determined unless a tie-break is fixed. Both this
//! engine and the warm-started [`crate::closure_inc`] engine implement
//! the same canonical rule: **the inclusion-minimal maximum-gain
//! closed set**, i.e. the source side of the source-minimal min cut,
//! obtained as the set of vertices reachable from the source in the
//! residual graph of a maximum flow. By the Picard–Queyranne structure
//! of minimum cuts, that set is the same for *every* maximum flow of
//! the network — which is what makes the rule engine-independent: a
//! from-scratch Dinic run and a warm-started residual reaching a
//! (different) maximum flow extract bit-identical member lists.
//!
//! To support the warm-started engine, the system additionally keeps
//! an append-only **change log** ([`ConstraintSystem::arc_log`],
//! [`ConstraintSystem::gain_log`]): arcs are only ever added, weights
//! only ever raised, freezes never undone, so a consumer that
//! remembers log cursors can reconstruct exactly the capacity deltas
//! between two closure calls.

use std::collections::HashMap;

use retime::VertexId;

/// The active-constraint state: arcs `p → q` ("whenever `p` joins the
/// move, `q` must too"), per-vertex move weights `w(v)`, gains `b(v)`
/// and freezes.
#[derive(Debug, Clone)]
pub struct ConstraintSystem {
    b: Vec<i64>,
    weight: Vec<i64>,
    frozen: Vec<bool>,
    arcs: HashMap<u32, Vec<u32>>,
    arc_set: HashMap<(u32, u32), ()>,
    num_arcs: usize,
    arc_log: Vec<(u32, u32)>,
    gain_log: Vec<u32>,
}

impl ConstraintSystem {
    /// Creates the system with gains `b` (entry 0 = host, always
    /// frozen), all weights 1.
    ///
    /// # Panics
    ///
    /// Panics if `b` is empty.
    pub fn new(b: Vec<i64>) -> Self {
        assert!(!b.is_empty());
        let n = b.len();
        let mut weight = vec![1i64; n];
        weight[0] = 0;
        let mut frozen = vec![false; n];
        frozen[0] = true;
        Self {
            b,
            weight,
            frozen,
            arcs: HashMap::new(),
            arc_set: HashMap::new(),
            num_arcs: 0,
            arc_log: Vec::new(),
            gain_log: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.b.len()
    }

    /// Whether the system is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.b.is_empty()
    }

    /// The move weight `w(v)`.
    pub fn weight(&self, v: VertexId) -> i64 {
        self.weight[v.index()]
    }

    /// The gain `b(v)·w(v)` the closure selection sees for `v`
    /// (meaningless while `v` is frozen — frozen vertices contribute no
    /// gain arc at all).
    pub fn gain(&self, v: VertexId) -> i64 {
        self.b[v.index()] * self.weight[v.index()]
    }

    /// Raises the move weight of `v` (weights are monotone: lowering a
    /// weight could oscillate; see module docs). Returns `true` if the
    /// weight changed.
    pub fn raise_weight(&mut self, v: VertexId, w: i64) -> bool {
        if w > self.weight[v.index()] {
            self.weight[v.index()] = w;
            self.gain_log.push(v.index() as u32);
            true
        } else {
            false
        }
    }

    /// Whether `v` is frozen.
    pub fn is_frozen(&self, v: VertexId) -> bool {
        self.frozen[v.index()]
    }

    /// Permanently freezes `v` (no closed set containing it may fire).
    pub fn freeze(&mut self, v: VertexId) {
        if !self.frozen[v.index()] {
            self.frozen[v.index()] = true;
            self.gain_log.push(v.index() as u32);
        }
    }

    /// The append-only log of recorded constraint arcs, in insertion
    /// order (deduplicated: one entry per distinct arc). Consumers that
    /// remember a cursor into this log see exactly the arcs added since.
    pub fn arc_log(&self) -> &[(u32, u32)] {
        &self.arc_log
    }

    /// The append-only log of vertices whose effective gain state
    /// changed (a weight raise or a freeze transition), in event order.
    /// A vertex may appear multiple times; its current state is read
    /// back through [`ConstraintSystem::gain`] /
    /// [`ConstraintSystem::is_frozen`].
    pub fn gain_log(&self) -> &[u32] {
        &self.gain_log
    }

    /// Records the constraint `p → q`. Returns `true` if it is new.
    ///
    /// # Panics
    ///
    /// Panics if `q` is the host (freeze `p` instead).
    pub fn add_arc(&mut self, p: VertexId, q: VertexId) -> bool {
        assert!(
            q.index() != 0,
            "constraints against the host freeze p instead"
        );
        if p == q {
            return false;
        }
        let key = (p.index() as u32, q.index() as u32);
        if self.arc_set.insert(key, ()).is_none() {
            self.arcs.entry(key.0).or_default().push(key.1);
            self.arc_log.push(key);
            self.num_arcs += 1;
            true
        } else {
            false
        }
    }

    /// Number of stored constraint arcs.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Computes the maximum-gain closed set under the current arcs,
    /// weights and freezes. Returns the member list (empty when no
    /// closed set has positive gain — the termination condition).
    ///
    /// The returned set is the *canonical* one (see the module docs):
    /// the inclusion-minimal maximum-gain closed set, listed in
    /// ascending vertex order.
    pub fn max_gain_closed_set(&self) -> Vec<VertexId> {
        self.max_gain_closed_set_counted().0
    }

    /// [`ConstraintSystem::max_gain_closed_set`] plus the number of
    /// arcs the from-scratch min-cut touched (network construction,
    /// BFS/DFS phases and cut extraction) — the cost metric the
    /// warm-started [`crate::closure_inc`] engine is benchmarked
    /// against.
    pub fn max_gain_closed_set_counted(&self) -> (Vec<VertexId>, u64) {
        let n = self.len();
        // Nodes: 0..n = vertices, n = source, n+1 = sink.
        let source = n;
        let sink = n + 1;
        let mut dinic = Dinic::new(n + 2);
        const INF: i64 = i64::MAX / 4;
        let mut total_positive = 0i64;
        for v in 1..n {
            if self.frozen[v] {
                dinic.add_edge(v, sink, INF);
                continue;
            }
            let gain = self.b[v] * self.weight[v];
            if gain > 0 {
                dinic.add_edge(source, v, gain);
                total_positive += gain;
            } else if gain < 0 {
                dinic.add_edge(v, sink, -gain);
            }
        }
        for (&from, tos) in &self.arcs {
            for &to in tos {
                dinic.add_edge(from as usize, to as usize, INF);
            }
        }
        if total_positive == 0 {
            return (Vec::new(), dinic.touched);
        }
        let cut = dinic.max_flow(source, sink);
        if cut >= total_positive {
            return (Vec::new(), dinic.touched); // best closure has gain <= 0
        }
        // Source side of the min cut = the max-gain closure.
        let reachable = dinic.min_cut_side(source);
        let members: Vec<VertexId> = (1..n)
            .filter(|&v| reachable[v])
            .map(VertexId::new)
            .collect();
        debug_assert!(self.gain_of(&members) > 0);
        debug_assert!(self.is_closed(&members));
        (members, dinic.touched)
    }

    /// The gain `Σ b(v)·w(v)` of a vertex set.
    pub fn gain_of(&self, members: &[VertexId]) -> i64 {
        members
            .iter()
            .map(|v| self.b[v.index()] * self.weight[v.index()])
            .sum()
    }

    /// Whether a set is closed under the constraint arcs (every
    /// successor of a member is a member) and frozen-free.
    pub fn is_closed(&self, members: &[VertexId]) -> bool {
        let mut inside = vec![false; self.len()];
        for v in members {
            if self.frozen[v.index()] {
                return false;
            }
            inside[v.index()] = true;
        }
        for (&from, tos) in &self.arcs {
            if !inside[from as usize] {
                continue;
            }
            for &to in tos {
                if !inside[to as usize] {
                    return false;
                }
            }
        }
        true
    }
}

/// Dinic's max-flow (used only for the closure min-cut). `touched`
/// counts every arc examined (construction, BFS, DFS, cut extraction)
/// so the from-scratch cost is comparable with the warm-started
/// engine's `closure_arcs_touched`.
#[derive(Debug)]
struct Dinic {
    to: Vec<usize>,
    cap: Vec<i64>,
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
    touched: u64,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
            touched: 0,
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        self.touched += 1;
        self.adj[from].push(self.to.len());
        self.to.push(to);
        self.cap.push(cap);
        self.adj[to].push(self.to.len());
        self.to.push(from);
        self.cap.push(0);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            self.touched += self.adj[v].len() as u64;
            for &e in &self.adj[v] {
                if self.cap[e] > 0 && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[v] + 1;
                    queue.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: i64) -> i64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let e = self.adj[v][self.iter[v]];
            let u = self.to[e];
            self.touched += 1;
            if self.cap[e] > 0 && self.level[u] == self.level[v] + 1 {
                let d = self.dfs(u, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, i64::MAX / 4);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After `max_flow`, the residual-reachable side of the cut.
    fn min_cut_side(&mut self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            self.touched += self.adj[v].len() as u64;
            for &e in &self.adj[v] {
                if self.cap[e] > 0 && !seen[self.to[e]] {
                    seen[self.to[e]] = true;
                    stack.push(self.to[e]);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn empty_constraints_select_positive_vertices() {
        let cs = ConstraintSystem::new(vec![0, 5, -3, 2]);
        let set = cs.max_gain_closed_set();
        assert_eq!(set, vec![v(1), v(3)]);
    }

    #[test]
    fn arc_drags_cost_when_profitable() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -3]);
        cs.add_arc(v(1), v(2));
        let set = cs.max_gain_closed_set();
        assert_eq!(set.len(), 2);
        assert_eq!(cs.gain_of(&set), 2);
    }

    #[test]
    fn arc_suppresses_unprofitable_move() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -9]);
        cs.add_arc(v(1), v(2));
        assert!(cs.max_gain_closed_set().is_empty());
    }

    #[test]
    fn shared_cost_union_is_found() {
        // Two seeds share one cost: individually unprofitable, jointly
        // profitable — the case a per-seed heuristic would miss.
        let mut cs = ConstraintSystem::new(vec![0, 4, 4, -6]);
        cs.add_arc(v(1), v(3));
        cs.add_arc(v(2), v(3));
        let set = cs.max_gain_closed_set();
        assert_eq!(set.len(), 3);
        assert_eq!(cs.gain_of(&set), 2);
    }

    #[test]
    fn chooses_best_subset_not_everything() {
        // v1 profitable alone; v2's chain is a net loss. Best closure
        // is {v1} only.
        let mut cs = ConstraintSystem::new(vec![0, 4, 3, -10]);
        cs.add_arc(v(2), v(3));
        let set = cs.max_gain_closed_set();
        assert_eq!(set, vec![v(1)]);
    }

    #[test]
    fn weights_multiply_gains() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -2]);
        cs.add_arc(v(1), v(2));
        assert!(cs.raise_weight(v(2), 3)); // cost now 6 > 5
        assert!(cs.max_gain_closed_set().is_empty());
        assert!(!cs.raise_weight(v(2), 2), "weights are monotone");
    }

    #[test]
    fn freeze_excludes_closures() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -1]);
        cs.add_arc(v(1), v(2));
        cs.freeze(v(2));
        assert!(cs.max_gain_closed_set().is_empty());
        // An unrelated positive vertex still fires.
        let mut cs2 = ConstraintSystem::new(vec![0, 5, -1, 7]);
        cs2.add_arc(v(1), v(2));
        cs2.freeze(v(1));
        assert_eq!(cs2.max_gain_closed_set(), vec![v(3)]);
    }

    #[test]
    fn transitive_closure_respected() {
        let mut cs = ConstraintSystem::new(vec![0, 10, -3, -4]);
        cs.add_arc(v(1), v(2));
        cs.add_arc(v(2), v(3));
        let set = cs.max_gain_closed_set();
        assert_eq!(set.len(), 3);
        assert!(cs.is_closed(&set));
    }

    #[test]
    fn duplicate_arcs_counted_once() {
        let mut cs = ConstraintSystem::new(vec![0, 1, -1]);
        assert!(cs.add_arc(v(1), v(2)));
        assert!(!cs.add_arc(v(1), v(2)));
        assert_eq!(cs.num_arcs(), 1);
    }

    #[test]
    fn host_never_selected() {
        let cs = ConstraintSystem::new(vec![1000, 1]);
        let set = cs.max_gain_closed_set();
        assert_eq!(set, vec![v(1)]);
    }

    #[test]
    #[should_panic(expected = "host")]
    fn arc_to_host_panics() {
        let mut cs = ConstraintSystem::new(vec![0, 1]);
        cs.add_arc(v(1), v(0));
    }

    #[test]
    fn change_log_records_arcs_weights_and_freezes() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -3]);
        assert!(cs.arc_log().is_empty() && cs.gain_log().is_empty());
        cs.add_arc(v(1), v(2));
        cs.add_arc(v(1), v(2)); // duplicate: not logged again
        assert_eq!(cs.arc_log(), &[(1, 2)]);
        cs.raise_weight(v(2), 3);
        cs.raise_weight(v(2), 2); // no-op: not logged
        cs.freeze(v(1));
        cs.freeze(v(1)); // idempotent: logged once
        assert_eq!(cs.gain_log(), &[2, 1]);
        assert_eq!(cs.gain(v(2)), -9);
    }

    #[test]
    fn counted_selection_reports_touched_arcs() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -3]);
        cs.add_arc(v(1), v(2));
        let (set, touched) = cs.max_gain_closed_set_counted();
        assert_eq!(set, cs.max_gain_closed_set());
        assert!(touched > 0, "network build alone touches arcs");
    }

    #[test]
    fn cycle_of_constraints_selected_together() {
        let mut cs = ConstraintSystem::new(vec![0, 5, -2]);
        cs.add_arc(v(1), v(2));
        cs.add_arc(v(2), v(1));
        let set = cs.max_gain_closed_set();
        assert_eq!(set.len(), 2);
    }
}
