//! The incremental constraint-checking engine behind the solver's
//! inner loop.
//!
//! Algorithm 1 checks a tentative retiming `r′` once per improvement
//! round, and the from-scratch checker ([`crate::verify::find_violation`])
//! pays `O(|V| + |E|)` per check even though each round only moves
//! registers across a small closed set. The [`IncrementalChecker`]
//! instead keeps the last *committed* retiming (the **base**, always
//! feasible) together with its `L`/`R` labels, and on each check:
//!
//! 1. scans **P0** only over edges incident to the move set — an edge
//!    with both endpoint deltas equal keeps its base weight, which is
//!    non-negative because the base is feasible;
//! 2. computes the **dirty cone** — the backward closure of the
//!    weight-changed edges' tails along edges combinational under
//!    either retiming ([`retime::timing::DirtyCone`]) — and re-relaxes
//!    only those labels in place ([`retime::LrLabels::relax_region`]);
//!    every label outside the cone is provably unchanged;
//! 3. checks **P2** on the candidate edges (move-incident ∪ in-edges
//!    of cone members) and **P1** on the cone members, under the same
//!    canonical minimum-id / minimum-index rules the from-scratch
//!    scans use, so the two engines are **bit-identical**;
//! 4. rolls the labels back on a violation, or rebases on the
//!    tentative retiming when it is feasible.
//!
//! When the cone exceeds a configurable fraction of `|V|`
//! ([`crate::algorithm::SolverConfig::max_dirty_percent`]) the checker
//! falls back to a full recompute — the bookkeeping would cost more
//! than it saves. Both paths feed the [`PerfCounters`] surfaced in
//! [`crate::algorithm::SolverStats`] and dumped by
//! `retimer bench-solve`.
//!
//! Why the candidate sets are complete (the correctness core):
//!
//! * a **P1** violation is a vertex with negative slack; the base has
//!   none, so a violating vertex's `L` label changed, which puts it in
//!   the cone;
//! * a **P2** violation lives on a registered edge; either the edge's
//!   weight changed (it is move-incident) or its head's `R` label
//!   changed (the head is in the cone, so the edge is an in-edge of a
//!   cone member);
//! * a **P0** violation needs a weight change, so the edge is
//!   move-incident.
//!
//! Because the relaxed labels are bit-identical to a full recompute
//! everywhere (not just inside the cone), checking *extra* candidate
//! edges/vertices is harmless — only a missing candidate could break
//! equivalence, and a `debug_assertions` differential oracle in
//! [`crate::algorithm`] plus the proptest suite in
//! `tests/properties.rs` guard exactly that.

use retime::labels::{P1Violation, P2Violation};
use retime::timing::{zero_weight_topo, DirtyCone};
use retime::{EdgeId, ElwParams, LrLabels, RetimeGraph, Retiming, VertexId};

use crate::problem::Problem;
use crate::verify::Violation;

/// Cheap counters describing the constraint-checking work of a solver
/// run (surfaced as [`crate::algorithm::SolverStats::perf`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Checks answered by dirty-region relaxation.
    pub incremental_checks: u64,
    /// Checks answered by a full from-scratch recompute (incremental
    /// checking disabled, or the dirty cone exceeded the cap).
    pub full_checks: u64,
    /// Checks that *fell back* from incremental to full because the
    /// dirty cone exceeded `max_dirty_percent` (a subset of
    /// `full_checks`).
    pub fallback_full: u64,
    /// Edges relaxed by incremental dirty-region passes.
    pub edges_relaxed: u64,
    /// Edges relaxed by full recomputes (`|E|` per full check).
    pub edges_relaxed_full: u64,
    /// Total dirty-cone vertices over all incremental checks.
    pub dirty_vertices: u64,
    /// Largest dirty cone seen.
    pub max_dirty: u64,
    /// Nanoseconds spent checking constraints (either engine).
    pub check_nanos: u64,
    /// Nanoseconds spent selecting max-gain closed sets.
    pub closure_nanos: u64,
    /// Closure selections performed (either closure engine).
    pub closure_calls: u64,
    /// Arcs examined by the closure engine (network construction,
    /// BFS/DFS phases, flow repair and cut extraction) — counted
    /// identically by the from-scratch and warm-started engines so the
    /// reuse ratio is directly comparable.
    pub closure_arcs_touched: u64,
    /// Warm-engine selections that fell back to a fresh network build
    /// because the delta batch dirtied more vertices than its
    /// `rebuild_percent` threshold allows.
    pub closure_fallback_full: u64,
    /// Nanoseconds the warm engine spent inside
    /// [`crate::closure_inc::IncrementalClosure::select`] (a subset of
    /// `closure_nanos`; 0 under the from-scratch engine).
    pub closure_warm_nanos: u64,
    /// Sampled divergence audits performed by the supervisor (each
    /// re-runs the from-scratch engine and compares bit-for-bit; see
    /// [`crate::supervisor`]).
    pub audit_checks: u64,
    /// Circuit-breaker trips across both incremental engines (panic or
    /// audited divergence; at most one per engine per solve, plus one
    /// for a full-restart verification failure).
    pub breaker_trips: u64,
}

impl PerfCounters {
    /// Total constraint checks performed.
    pub fn checks(&self) -> u64 {
        self.incremental_checks + self.full_checks
    }

    /// Mean edges relaxed per check, over both engines.
    pub fn edges_per_check(&self) -> f64 {
        let checks = self.checks();
        if checks == 0 {
            return 0.0;
        }
        (self.edges_relaxed + self.edges_relaxed_full) as f64 / checks as f64
    }

    /// Mean arcs touched per closure selection.
    pub fn arcs_per_closure(&self) -> f64 {
        if self.closure_calls == 0 {
            return 0.0;
        }
        self.closure_arcs_touched as f64 / self.closure_calls as f64
    }
}

/// The incremental constraint checker (see the module docs for the
/// algorithm and its correctness argument).
///
/// The base retiming **must be feasible** for the instance; the
/// checker preserves that invariant by only rebasing on tentative
/// retimings it proved violation-free.
pub struct IncrementalChecker<'g> {
    graph: &'g RetimeGraph,
    params: ElwParams,
    r_min: i64,
    base: Retiming,
    labels: LrLabels,
    cone: DirtyCone,
    seeds: Vec<VertexId>,
    cap: usize,
}

impl<'g> IncrementalChecker<'g> {
    /// Creates a checker over a **feasible** base retiming.
    /// `max_dirty_percent` caps the dirty cone at that percentage of
    /// `|V|` before falling back to full recomputes.
    ///
    /// # Panics
    ///
    /// Panics if `base` leaves a zero-weight cycle (impossible for a
    /// feasible base: P0-clean retimings cannot create one, as cycle
    /// weight is retiming-invariant).
    pub fn new(
        graph: &'g RetimeGraph,
        problem: &Problem,
        base: Retiming,
        max_dirty_percent: u32,
    ) -> Self {
        let labels = LrLabels::compute(graph, &base, problem.params)
            .expect("the incremental checker's base retiming must be feasible");
        let cap = graph
            .num_vertices()
            .saturating_mul(max_dirty_percent as usize)
            / 100;
        Self {
            graph,
            params: problem.params,
            r_min: problem.r_min,
            base,
            labels,
            cone: DirtyCone::new(),
            seeds: Vec::new(),
            cap,
        }
    }

    /// The current base retiming (the last committed state).
    pub fn base(&self) -> &Retiming {
        &self.base
    }

    /// The labels of the current base (kept bit-identical to
    /// `LrLabels::compute(graph, base, params)`).
    pub fn labels(&self) -> &LrLabels {
        &self.labels
    }

    /// Checks `r_tent` — which may differ from the base only on
    /// `move_set` — and returns exactly the violation
    /// [`crate::verify::find_violation`] would return, or `None`.
    ///
    /// On `None` the checker **rebases** on `r_tent` (the caller is
    /// committing it); on a violation all internal state is rolled
    /// back to the base.
    pub fn check_and_commit(
        &mut self,
        r_tent: &Retiming,
        move_set: &[VertexId],
        counters: &mut PerfCounters,
    ) -> Option<Violation> {
        let graph = self.graph;
        // P0: only move-incident edges can change weight.
        let mut p0_best: Option<(EdgeId, i64)> = None;
        {
            let mut consider = |e: EdgeId| {
                let w = graph.retimed_weight(e, r_tent);
                if w < 0 && p0_best.is_none_or(|(best, _)| e < best) {
                    p0_best = Some((e, w));
                }
            };
            for &v in move_set {
                for &e in graph.out_edges(v) {
                    consider(e);
                }
                for &e in graph.in_edges(v) {
                    consider(e);
                }
            }
        }
        if let Some((edge, weight)) = p0_best {
            // A move-incident edge scan is incremental work: no labels
            // were touched, but the check was answered without a full
            // recompute.
            counters.incremental_checks += 1;
            return Some(Violation::P0 { edge, weight });
        }

        // Seeds: the tails of every weight-changed edge. A changed edge
        // has endpoint deltas that differ, so it is move-incident and
        // this scan sees it.
        self.seeds.clear();
        let delta = |v: VertexId| r_tent.get(v) - self.base.get(v);
        for &v in move_set {
            let dv = delta(v);
            if graph
                .out_edges(v)
                .iter()
                .any(|&e| delta(graph.edge(e).to) != dv)
            {
                self.seeds.push(v);
            }
            for &e in graph.in_edges(v) {
                let u = graph.edge(e).from;
                if delta(u) != dv {
                    self.seeds.push(u);
                }
            }
        }

        let mut fallback = false;
        let mut verdict: Option<Violation> = None;
        match self
            .cone
            .compute(graph, &self.base, r_tent, &self.seeds, self.cap)
        {
            None => fallback = true,
            Some(ordered) => {
                counters.incremental_checks += 1;
                counters.dirty_vertices += ordered.len() as u64;
                counters.max_dirty = counters.max_dirty.max(ordered.len() as u64);
                let snapshot = self.labels.snapshot(ordered);
                counters.edges_relaxed += self.labels.relax_region(graph, r_tent, ordered);
                // The labels are now globally bit-identical to a full
                // recompute under r_tent, so checking a candidate that
                // cannot violate is merely redundant, never wrong.
                let mut p2_best: Option<P2Violation> = None;
                {
                    let labels = &self.labels;
                    let r_min = self.r_min;
                    let mut consider = |e: EdgeId| {
                        if let Some(v) = labels.p2_violation_at(graph, r_tent, r_min, e) {
                            if p2_best.as_ref().is_none_or(|best| v.edge < best.edge) {
                                p2_best = Some(v);
                            }
                        }
                    };
                    for &u in ordered {
                        for &e in graph.in_edges(u) {
                            consider(e);
                        }
                    }
                    for &v in move_set {
                        for &e in graph.out_edges(v) {
                            consider(e);
                        }
                        for &e in graph.in_edges(v) {
                            consider(e);
                        }
                    }
                }
                let mut p1_best: Option<P1Violation> = None;
                for &u in ordered {
                    if let Some(v) = self.labels.p1_violation_at(graph, r_tent, u) {
                        if p1_best.is_none_or(|best| v.vertex < best.vertex) {
                            p1_best = Some(v);
                        }
                    }
                }
                verdict = p2_best
                    .map(Violation::P2)
                    .or_else(|| p1_best.map(Violation::P1));
                if verdict.is_some() {
                    self.labels.restore(&snapshot);
                } else {
                    self.base.clone_from(r_tent);
                }
            }
        }
        if fallback {
            counters.fallback_full += 1;
            return self.full_check(r_tent, counters);
        }
        verdict
    }

    /// The full-recompute path: fresh labels under `r_tent`, canonical
    /// P2 then P1 scans. Rebases on success. P0 must already have been
    /// checked by the caller.
    fn full_check(&mut self, r_tent: &Retiming, counters: &mut PerfCounters) -> Option<Violation> {
        counters.full_checks += 1;
        counters.edges_relaxed_full += self.graph.num_edges() as u64;
        let order = zero_weight_topo(self.graph, r_tent).expect(
            "P0-clean retimings of circuit graphs cannot create zero-weight cycles \
             (cycle weight is retiming-invariant)",
        );
        let labels = LrLabels::compute_with_order(self.graph, r_tent, self.params, &order);
        if let Some(v) = labels.find_p2_violation(self.graph, r_tent, self.r_min) {
            return Some(Violation::P2(v));
        }
        if let Some(v) = labels.find_p1_violation(self.graph, r_tent) {
            return Some(Violation::P1(v));
        }
        self.labels = labels;
        self.base.clone_from(r_tent);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::find_violation;
    use netlist::{samples, DelayModel};
    use retime::ElwParams as Params;

    fn instance(phi: i64, r_min: i64) -> (netlist::Circuit, RetimeGraph, Problem) {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let counts = vec![1i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, Params::with_phi(phi), r_min);
        (c, g, p)
    }

    /// Drives the checker through a scripted sequence of single-vertex
    /// moves and asserts verdict + label bit-identity against the
    /// from-scratch oracle at every step.
    fn differential_drive(phi: i64, r_min: i64, moves: &[(&str, i64)], max_dirty_percent: u32) {
        let (c, g, p) = instance(phi, r_min);
        let base = Retiming::zero(&g);
        assert!(
            find_violation(&g, &p, &base).is_none(),
            "base must be feasible"
        );
        let mut checker = IncrementalChecker::new(&g, &p, base.clone(), max_dirty_percent);
        let mut committed = base;
        let mut counters = PerfCounters::default();
        for &(name, amount) in moves {
            let v = g.vertex_of(c.find(name).unwrap()).unwrap();
            let mut r_tent = committed.clone();
            r_tent.add(v, amount);
            let expected = find_violation(&g, &p, &r_tent);
            let got = checker.check_and_commit(&r_tent, &[v], &mut counters);
            assert_eq!(got, expected, "move {name}{amount:+}");
            if got.is_none() {
                committed = r_tent;
            }
            assert_eq!(checker.base(), &committed);
            let oracle = LrLabels::compute(&g, &committed, p.params).unwrap();
            assert_eq!(
                checker.labels(),
                &oracle,
                "labels diverged after {name}{amount:+}"
            );
        }
    }

    #[test]
    fn scripted_moves_match_oracle_incremental() {
        // Mix of feasible moves, a P0 (negative edge), a P1 (overlong
        // path) and a P2 (short path) rejection.
        let moves = [
            ("s2", 1),  // register moved backward over s2: feasible
            ("s1", -2), // edge (s1, s2) goes negative: P0
            ("s5", 1),  // feasible
            ("s4", 1),  // chains segment: may violate or not; oracle decides
            ("s0", 1),
            ("s3", 1),
            ("s2", -1),
        ];
        differential_drive(10, 1, &moves, 100);
        // Tight r_min: the same moves now trip P2.
        differential_drive(10, 3, &moves, 100);
        // phi = 4 tightens P1.
        differential_drive(4, 1, &moves, 100);
    }

    #[test]
    fn scripted_moves_match_oracle_fallback_path() {
        // max_dirty_percent = 0 forces the full-recompute fallback on
        // every check; verdicts and labels must be unchanged.
        let moves = [("s2", 1), ("s1", -2), ("s5", 1), ("s4", 1), ("s0", 1)];
        differential_drive(10, 1, &moves, 0);
        differential_drive(10, 3, &moves, 0);
    }

    #[test]
    fn counters_track_engine_choice() {
        let (c, g, p) = instance(10, 1);
        let v = g.vertex_of(c.find("s2").unwrap()).unwrap();
        let mut r_tent = Retiming::zero(&g);
        r_tent.add(v, 1);

        let mut counters = PerfCounters::default();
        let mut inc = IncrementalChecker::new(&g, &p, Retiming::zero(&g), 100);
        assert!(inc.check_and_commit(&r_tent, &[v], &mut counters).is_none());
        assert_eq!(counters.incremental_checks, 1);
        assert_eq!(counters.full_checks, 0);
        assert!(counters.edges_relaxed > 0);
        assert!(counters.max_dirty >= 1);

        let mut counters = PerfCounters::default();
        let mut full = IncrementalChecker::new(&g, &p, Retiming::zero(&g), 0);
        assert!(full
            .check_and_commit(&r_tent, &[v], &mut counters)
            .is_none());
        assert_eq!(counters.incremental_checks, 0);
        assert_eq!(counters.full_checks, 1);
        assert_eq!(counters.fallback_full, 1);
        assert_eq!(counters.edges_relaxed_full, g.num_edges() as u64);
    }

    #[test]
    fn incremental_relaxes_fewer_edges_than_full() {
        let (c, g, p) = instance(10, 1);
        let v = g.vertex_of(c.find("s2").unwrap()).unwrap();
        let mut r_tent = Retiming::zero(&g);
        r_tent.add(v, 1);
        let mut counters = PerfCounters::default();
        let mut inc = IncrementalChecker::new(&g, &p, Retiming::zero(&g), 100);
        inc.check_and_commit(&r_tent, &[v], &mut counters);
        assert!(
            counters.edges_relaxed < g.num_edges() as u64,
            "dirty region must beat |E| = {} (relaxed {})",
            g.num_edges(),
            counters.edges_relaxed
        );
    }
}
