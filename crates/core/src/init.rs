//! §V initialization: choosing `Φ`, `R_min` and a feasible starting
//! retiming.
//!
//! The paper's recipe:
//!
//! 1. Retime for minimum period under **setup and hold** constraints
//!    (`\[23\]`), giving `Φ_sh`. If no such retiming exists (reconvergent
//!    paths), fall back to plain min-period retiming (`\[24\]`) for
//!    `Φ_min`.
//! 2. Relax the (very tight) period by a small factor `ε` (10%).
//! 3. Choose `R_min` as the minimum register-launched short path in the
//!    retimed circuit; in the fallback case, the minimum gate delay.

use retime::labels::ElwParams;
use retime::{minperiod, setup_hold, LrLabels, RetimeGraph, Retiming};

use crate::SolveError;

/// The initialization outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct InitResult {
    /// The relaxed clock period `Φ`.
    pub phi: i64,
    /// The ELW lower bound `R_min`.
    pub r_min: i64,
    /// A feasible starting retiming at `Φ`/`R_min`.
    pub retiming: Retiming,
    /// Whether the setup-and-hold retiming succeeded (`false` = the
    /// paper's fallback path was taken).
    pub used_setup_hold: bool,
    /// The unrelaxed minimum period found.
    pub phi_min: i64,
}

/// Initialization knobs.
///
/// Construct with [`InitConfig::default`] and refine with the `with_*`
/// builders (the struct is `#[non_exhaustive]`); run with
/// [`InitConfig::initialize`]:
///
/// ```
/// use minobswin::init::InitConfig;
/// # use netlist::{samples, DelayModel};
/// # use retime::RetimeGraph;
/// # fn main() -> Result<(), minobswin::SolveError> {
/// # let graph =
/// #     RetimeGraph::from_circuit(&samples::pipeline(9, 3), &DelayModel::unit())?;
/// let init = InitConfig::default().with_hold_time(3).initialize(&graph)?;
/// assert!(init.phi > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct InitConfig {
    /// Register setup time `T_s` (paper: 0).
    pub t_setup: i64,
    /// Register hold time `T_h` (paper: 2).
    pub t_hold: i64,
    /// Period relaxation in percent (paper: 10).
    pub epsilon_percent: u32,
}

impl Default for InitConfig {
    fn default() -> Self {
        Self {
            t_setup: 0,
            t_hold: 2,
            epsilon_percent: 10,
        }
    }
}

impl InitConfig {
    /// Sets the register setup time `T_s`.
    pub fn with_setup_time(mut self, t_setup: i64) -> Self {
        self.t_setup = t_setup;
        self
    }

    /// Sets the register hold time `T_h`.
    pub fn with_hold_time(mut self, t_hold: i64) -> Self {
        self.t_hold = t_hold;
        self
    }

    /// Sets the period relaxation `ε` in percent.
    pub fn with_epsilon_percent(mut self, percent: u32) -> Self {
        self.epsilon_percent = percent;
        self
    }

    /// Runs the §V initialization with these knobs.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Initialization`] if even plain min-period
    /// retiming fails (impossible for graphs built from valid
    /// circuits).
    pub fn initialize(self, graph: &RetimeGraph) -> Result<InitResult, SolveError> {
        run_init(graph, self)
    }
}

fn run_init(graph: &RetimeGraph, config: InitConfig) -> Result<InitResult, SolveError> {
    let relax = |phi: i64| phi + (phi * config.epsilon_percent as i64 + 99) / 100;
    let trace = std::env::var_os("MINOBSWIN_TRACE").is_some();
    let t0 = std::time::Instant::now();

    let sh = setup_hold::min_period_setup_hold(graph, config.t_setup, config.t_hold);
    if trace {
        eprintln!(
            "init: min_period_setup_hold {} in {:.3}s",
            if sh.is_some() { "found" } else { "none" },
            t0.elapsed().as_secs_f64()
        );
    }
    if let Some(sh) = sh {
        let phi = relax(sh.phi);
        // Re-derive the retiming at the relaxed period for slack.
        let t1 = std::time::Instant::now();
        let retiming = setup_hold::feasible_setup_hold(graph, phi, config.t_setup, config.t_hold)
            .unwrap_or(sh.retiming);
        let params = ElwParams {
            phi,
            t_setup: config.t_setup,
            t_hold: config.t_hold,
        };
        let t2 = std::time::Instant::now();
        let labels = LrLabels::compute(graph, &retiming, params)
            .map_err(|e| SolveError::Initialization(e.to_string()))?;
        let r_min = labels
            .min_short_path(graph, &retiming)
            .unwrap_or_else(|| min_gate_delay(graph));
        if trace {
            eprintln!(
                "init: relaxed re-derive {:.3}s, labels+r_min {:.3}s",
                t2.duration_since(t1).as_secs_f64(),
                t2.elapsed().as_secs_f64()
            );
        }
        return Ok(InitResult {
            phi,
            r_min,
            retiming,
            used_setup_hold: true,
            phi_min: sh.phi,
        });
    }

    // Fallback: plain min-period retiming; R_min = minimum gate delay
    // (P2 then never binds beyond what any single gate provides).
    let mp = minperiod::min_period(graph).map_err(|e| SolveError::Initialization(e.to_string()))?;
    if trace {
        eprintln!(
            "init: min_period fallback phi {} in {:.3}s total",
            mp.phi,
            t0.elapsed().as_secs_f64()
        );
    }
    let phi = relax(mp.phi);
    let retiming = minperiod::feasible_retiming(graph, phi - config.t_setup).unwrap_or(mp.retiming);
    Ok(InitResult {
        phi,
        r_min: min_gate_delay(graph),
        retiming,
        used_setup_hold: false,
        phi_min: mp.phi,
    })
}

fn min_gate_delay(graph: &RetimeGraph) -> i64 {
    graph
        .vertices()
        .map(|v| graph.delay(v))
        .filter(|&d| d > 0)
        .min()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use crate::verify::check_feasible;
    use netlist::{samples, DelayModel};

    #[test]
    fn initialization_is_feasible_for_the_solver() {
        for (name, c) in [
            ("pipeline", samples::pipeline(9, 3)),
            ("s27", samples::s27_like()),
        ] {
            let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
            let init = InitConfig::default().initialize(&g).unwrap();
            let params = ElwParams {
                phi: init.phi,
                t_setup: 0,
                t_hold: 2,
            };
            let counts = vec![1i64; g.num_vertices()];
            let p = Problem::from_observability_counts(&g, &counts, params, init.r_min);
            assert!(
                check_feasible(&g, &p, &init.retiming).is_ok(),
                "{name}: initialization must satisfy its own constraints"
            );
        }
    }

    #[test]
    fn relaxation_adds_ten_percent() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let init = InitConfig::default().initialize(&g).unwrap();
        assert!(init.phi > init.phi_min);
        assert!(init.phi <= init.phi_min + init.phi_min / 10 + 1);
    }

    #[test]
    fn fallback_uses_min_gate_delay() {
        // Force the fallback with an impossible hold time.
        let c = samples::pipeline(4, 4);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let init = InitConfig::default()
            .with_hold_time(100)
            .initialize(&g)
            .unwrap();
        assert!(!init.used_setup_hold);
        assert_eq!(init.r_min, 1, "minimum unit gate delay");
    }

    #[test]
    fn generated_circuits_initialize() {
        for seed in 0..4 {
            let c = netlist::generator::GeneratorConfig::new("init", seed)
                .gates(100)
                .registers(20)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            let init = InitConfig::default().initialize(&g).unwrap();
            assert!(g.check_nonnegative(&init.retiming).is_ok(), "seed {seed}");
            assert!(init.r_min >= 1, "seed {seed}");
        }
    }
}
