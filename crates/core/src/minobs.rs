//! The **Efficient MinObs** baseline: the logic-masking-only retiming
//! of Krishnaswamy et al. (DAC'09, ref \[17\]), solved with the paper's
//! own efficient machinery rather than an LP — exactly what the paper
//! does for its comparison column ("by simply commenting out lines
//! 9–12 and 19–21 in Algorithm 1, we can reduce the proposed algorithm
//! into an efficient MinObs algorithm").

//!
//! The baseline is reached through the unified session API —
//! `SolverSession::new(graph, problem)
//! .config(SolverConfig::default().with_p2(false)).run()` — and this
//! module pins it against the exact flow-based min-area optimum.

#[cfg(test)]
mod tests {
    use crate::algorithm::SolverConfig;
    use crate::problem::Problem;
    use netlist::{samples, DelayModel};
    use retime::{minarea_ref, ElwParams, VertexId};
    use retime::{RetimeGraph, Retiming};

    /// MinObs with uniform observabilities is min-area retiming; the
    /// forest algorithm must match the exact flow-based optimum.
    #[test]
    fn matches_exact_min_area_on_samples() {
        for (name, c) in [
            ("two_stage_loop", samples::two_stage_loop()),
            ("pipeline", samples::pipeline(9, 3)),
            ("s27", samples::s27_like()),
        ] {
            let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
            let phi = retime::timing::clock_period(&g, &Retiming::zero(&g)).unwrap();
            let counts = vec![1i64; g.num_vertices()];
            let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(phi), 1);
            let sol = crate::SolverSession::new(&g, &p)
                .config(SolverConfig::default().with_p2(false))
                .run()
                .unwrap();
            // Exact reference: min Σ b·r s.t. P0 + P1(phi − ts).
            let exact = minarea_ref::solve_exact(&g, &p.b, Some(phi - p.params.t_setup)).unwrap();
            let forest_obj: i64 = (1..g.num_vertices())
                .map(|v| p.b[v] * sol.retiming.get(VertexId::new(v)))
                .sum();
            assert_eq!(
                forest_obj, exact.objective,
                "{name}: forest {} vs exact {}",
                forest_obj, exact.objective
            );
        }
    }

    /// With simulated observability counts (non-uniform b), the forest
    /// algorithm must still match the exact LP optimum.
    #[test]
    fn matches_exact_with_random_costs() {
        use netlist::rng::Xoshiro256;
        for seed in 0..6 {
            let c = netlist::generator::GeneratorConfig::new("mo", seed)
                .gates(40)
                .registers(10)
                .inputs(3)
                .outputs(3)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
            let phi = retime::timing::clock_period(&g, &Retiming::zero(&g)).unwrap() + 1;
            let mut rng = Xoshiro256::seed_from_u64(seed + 99);
            let counts: Vec<i64> = (0..g.num_vertices())
                .map(|i| if i == 0 { 64 } else { rng.gen_range(65) as i64 })
                .collect();
            let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(phi), 1);
            let sol = crate::SolverSession::new(&g, &p)
                .config(SolverConfig::default().with_p2(false))
                .run()
                .unwrap();
            let exact = minarea_ref::solve_exact(&g, &p.b, Some(phi)).unwrap();
            let forest_obj: i64 = (1..g.num_vertices())
                .map(|v| p.b[v] * sol.retiming.get(VertexId::new(v)))
                .sum();
            assert_eq!(forest_obj, exact.objective, "seed {seed}");
        }
    }
}
