//! The **weighted regular forest** — the paper's §IV.B/§IV.C extension
//! of the regular forest of Wang & Zhou (DAC'08) with per-vertex
//! weights `w(v)` (the number of registers a vertex must move when its
//! tree fires).
//!
//! Each tree bundles vertices tied together by *active constraints*:
//! the edge between a non-root `v` and its parent `p_v` stores the
//! constraint `(v, p_v)` when `U(v)` is true and `(p_v, v)` otherwise
//! ("if the first decreases, the second must too"). A tree's gain is
//! `b(T) = Σ_{v∈T} b(v)·w(v)`; the union of positive trees is the move
//! set `I = V_P(F)` the algorithm tentatively decreases.
//!
//! Regularity (paper conditions 1–3) keeps only *justified* edges: in
//! a positive tree a subtree hangs by `U = true` only while its own
//! gain is positive (it pays for its parent), and by `U = false` only
//! while non-positive (it is a cost dragged along); dually for zero
//! and negative trees. Edges whose condition fails are cut — the
//! dropped constraint is rediscovered from a later violation check, so
//! this is always sound.

use retime::VertexId;

/// Sentinel-free frozen handling: a frozen vertex poisons every tree
/// that contains it (the tree can never be positive again) — used when
/// a violation's only fix would retime the host.
#[derive(Debug, Clone)]
pub struct WeightedRegularForest {
    b: Vec<i64>,
    weight: Vec<i64>,
    parent: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
    u_label: Vec<bool>,
    frozen: Vec<bool>,
}

/// Subtree summary used during normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubGain {
    gain: i64,
    has_frozen: bool,
}

impl SubGain {
    fn positive(self) -> bool {
        !self.has_frozen && self.gain > 0
    }
    fn non_negative(self) -> bool {
        !self.has_frozen && self.gain >= 0
    }
    fn non_positive(self) -> bool {
        self.has_frozen || self.gain <= 0
    }
    fn negative(self) -> bool {
        self.has_frozen || self.gain < 0
    }
}

impl WeightedRegularForest {
    /// Creates the initial forest: every vertex a singleton tree with
    /// weight 1 (the host, index 0, gets weight 0 and starts frozen so
    /// no tree containing it can ever fire).
    ///
    /// # Panics
    ///
    /// Panics if `b` is empty.
    pub fn new(b: Vec<i64>) -> Self {
        assert!(!b.is_empty(), "forest needs at least the host vertex");
        let n = b.len();
        let mut weight = vec![1i64; n];
        weight[0] = 0;
        let mut frozen = vec![false; n];
        frozen[0] = true;
        Self {
            b,
            weight,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            u_label: vec![false; n],
            frozen,
        }
    }

    /// Number of vertices (including the host).
    pub fn len(&self) -> usize {
        self.b.len()
    }

    /// Whether the forest is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.b.is_empty()
    }

    /// The planned decrease `w(v)` of a vertex.
    pub fn weight(&self, v: VertexId) -> i64 {
        self.weight[v.index()]
    }

    /// The static gain coefficient `b(v)`.
    pub fn gain_coefficient(&self, v: VertexId) -> i64 {
        self.b[v.index()]
    }

    /// Whether `v` has been frozen.
    pub fn is_frozen(&self, v: VertexId) -> bool {
        self.frozen[v.index()]
    }

    /// Permanently freezes `v`: every tree containing it becomes
    /// non-positive. Used when `v`'s decrease has no legal fix.
    pub fn freeze(&mut self, v: VertexId) {
        self.frozen[v.index()] = true;
        // The tree may now violate regularity; re-normalize it.
        let root = self.find_root(v);
        self.normalize(root);
    }

    /// The root of `v`'s tree.
    pub fn find_root(&self, v: VertexId) -> VertexId {
        let mut cur = v.index();
        while let Some(p) = self.parent[cur] {
            cur = p as usize;
        }
        VertexId::new(cur)
    }

    /// Whether `a` and `b` are currently in the same tree.
    pub fn same_tree(&self, a: VertexId, b: VertexId) -> bool {
        self.find_root(a) == self.find_root(b)
    }

    /// Members of `v`'s tree.
    pub fn tree_members(&self, v: VertexId) -> Vec<VertexId> {
        let root = self.find_root(v);
        let mut out = Vec::new();
        let mut stack = vec![root.index()];
        while let Some(x) = stack.pop() {
            out.push(VertexId::new(x));
            stack.extend(self.children[x].iter().map(|&c| c as usize));
        }
        out
    }

    /// The tree gain `b(T) = Σ b(v)·w(v)` of `v`'s tree (`None` when a
    /// frozen member poisons it).
    pub fn tree_gain(&self, v: VertexId) -> Option<i64> {
        let mut gain = 0i64;
        for m in self.tree_members(v) {
            if self.frozen[m.index()] {
                return None;
            }
            gain += self.b[m.index()] * self.weight[m.index()];
        }
        Some(gain)
    }

    /// `V_P(F)`: all vertices of positive trees — the tentative move
    /// set `I`.
    pub fn positive_set(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        for root in 0..self.len() {
            if self.parent[root].is_some() {
                continue;
            }
            let members = self.tree_members(VertexId::new(root));
            let mut gain = 0i64;
            let mut has_frozen = false;
            for &m in &members {
                if self.frozen[m.index()] {
                    has_frozen = true;
                    break;
                }
                gain += self.b[m.index()] * self.weight[m.index()];
            }
            if !has_frozen && gain > 0 {
                out.extend(members);
            }
        }
        out
    }

    /// Sets the weight of a vertex that is currently a singleton tree
    /// (the only situation in which a weight may change without
    /// invalidating recorded constraints — paper §IV.C).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a singleton, the weight is not positive, or
    /// `v` is the host.
    pub fn set_weight(&mut self, v: VertexId, w: i64) {
        assert!(v.index() != 0, "host weight is fixed at 0");
        assert!(w >= 1, "weights are positive register counts");
        assert!(
            self.parent[v.index()].is_none() && self.children[v.index()].is_empty(),
            "weight may only change while {v} is a singleton tree"
        );
        self.weight[v.index()] = w;
    }

    /// `BreakTree(q)` (paper §IV.C): re-roots `q`'s tree at `q`, then
    /// detaches `q` from all of its children, leaving `q` a singleton
    /// and every former neighbour subtree its own (re-normalized) tree.
    pub fn break_tree(&mut self, q: VertexId) {
        self.reroot(q);
        let children = std::mem::take(&mut self.children[q.index()]);
        for c in &children {
            self.parent[*c as usize] = None;
        }
        for c in children {
            self.normalize(VertexId::new(c as usize));
        }
    }

    /// `UpdateForest(F, p, q, w)`: records the active constraint
    /// `(p → q)` ("p's decrease drags q by w registers"). When `w`
    /// differs from `q`'s current weight, `q` is broken out first; the
    /// resulting tree is re-normalized.
    ///
    /// Returns `false` (a no-op) when `p == q` or when the link would
    /// create no structural change (callers treat that as "freeze `p`
    /// instead" to guarantee progress).
    ///
    /// # Panics
    ///
    /// Panics if `q` is the host (freeze `p` instead) or `w < 1`.
    pub fn update(&mut self, p: VertexId, q: VertexId, w: i64) -> bool {
        assert!(
            q.index() != 0,
            "constraints against the host freeze the tree instead"
        );
        assert!(w >= 1, "weights are positive register counts");
        if p == q {
            return false;
        }
        if self.weight[q.index()] != w {
            self.break_tree(q);
            self.set_weight(q, w);
        } else if self.same_tree(p, q) {
            // Same tree, same weight: the constraint is already
            // represented; no structural change is possible.
            return false;
        } else {
            self.reroot(q);
        }
        // After break_tree/reroot q is a root; attach under p with
        // U(q) = false, i.e. the stored constraint is (parent, q) = (p, q).
        debug_assert!(self.parent[q.index()].is_none());
        debug_assert!(!self.same_tree(p, q));
        self.parent[q.index()] = Some(p.index() as u32);
        self.children[p.index()].push(q.index() as u32);
        self.u_label[q.index()] = false;
        let root = self.find_root(p);
        self.normalize(root);
        true
    }

    /// Re-roots `v`'s tree at `v`, flipping the stored `U` labels so
    /// every recorded constraint keeps its direction.
    fn reroot(&mut self, v: VertexId) {
        // Collect the path v -> old root.
        let mut path = vec![v.index()];
        let mut cur = v.index();
        while let Some(p) = self.parent[cur] {
            path.push(p as usize);
            cur = p as usize;
        }
        // Reverse each edge on the path, from v upward.
        for i in 0..path.len() - 1 {
            let child = path[i];
            let par = path[i + 1];
            // Remove child from par's children.
            self.children[par].retain(|&c| c as usize != child);
            // par becomes child of `child`.
            self.children[child].push(par as u32);
            self.parent[par] = Some(child as u32);
            // The constraint stored at `child` (about edge child—par)
            // moves to `par` with flipped direction.
            self.u_label[par] = !self.u_label[child];
        }
        self.parent[v.index()] = None;
    }

    /// Restores regularity in the tree rooted at `root`: computes
    /// subtree gains and cuts every edge whose paper-condition fails,
    /// cascading into the cut-off subtrees.
    fn normalize(&mut self, root: VertexId) {
        let mut work = vec![root];
        while let Some(r) = work.pop() {
            let r = self.find_root(r); // may have been re-parented meanwhile
            loop {
                let cut = self.find_irregular(r);
                match cut {
                    None => break,
                    Some(v) => {
                        let p = self.parent[v.index()].expect("non-root") as usize;
                        self.children[p].retain(|&c| c as usize != v.index());
                        self.parent[v.index()] = None;
                        work.push(v);
                    }
                }
            }
        }
    }

    /// Finds a non-root vertex of `root`'s tree violating the
    /// regularity condition for the tree's gain class.
    fn find_irregular(&self, root: VertexId) -> Option<VertexId> {
        // Compute subtree gains bottom-up with an explicit stack.
        let mut order = Vec::new();
        let mut stack = vec![root.index()];
        while let Some(x) = stack.pop() {
            order.push(x);
            stack.extend(self.children[x].iter().map(|&c| c as usize));
        }
        let mut sub: Vec<SubGain> = vec![
            SubGain {
                gain: 0,
                has_frozen: false
            };
            self.len()
        ];
        for &x in order.iter().rev() {
            let mut g = SubGain {
                gain: self.b[x] * self.weight[x],
                has_frozen: self.frozen[x],
            };
            for &c in &self.children[x] {
                let cg = sub[c as usize];
                g.gain += cg.gain;
                g.has_frozen |= cg.has_frozen;
            }
            sub[x] = g;
        }
        let tree = sub[root.index()];
        for &x in &order {
            if x == root.index() {
                continue;
            }
            let u = self.u_label[x];
            let bx = sub[x];
            let ok = if tree.positive() {
                // b(T) > 0: (U ∧ B > 0) ∨ (¬U ∧ B ≤ 0)
                (u && bx.positive()) || (!u && bx.non_positive())
            } else if !tree.has_frozen && tree.gain == 0 {
                // b(T) = 0: (U ∧ B > 0) ∨ (¬U ∧ B < 0)
                (u && bx.positive()) || (!u && bx.negative())
            } else {
                // b(T) < 0 (or frozen): (U ∧ B ≥ 0) ∨ (¬U ∧ B < 0)
                (u && bx.non_negative()) || (!u && bx.negative())
            };
            if !ok {
                return Some(VertexId::new(x));
            }
        }
        None
    }

    /// Diagnostic: number of active constraints currently recorded
    /// (edges of the forest). Bounded by `|V| − 1`.
    pub fn num_constraints(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// Verifies the structural invariants (acyclicity, parent/child
    /// symmetry, regularity of every tree). Test helper; `O(|V|²)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        for v in 0..self.len() {
            if let Some(p) = self.parent[v] {
                if !self.children[p as usize].contains(&(v as u32)) {
                    return Err(format!("parent/child asymmetry at {v}"));
                }
            }
            for &c in &self.children[v] {
                if self.parent[c as usize] != Some(v as u32) {
                    return Err(format!("child {c} of {v} disagrees"));
                }
            }
            // Walk to the root; cycles would spin forever, so bound it.
            let mut cur = v;
            for _ in 0..=self.len() {
                match self.parent[cur] {
                    Some(p) => cur = p as usize,
                    None => break,
                }
            }
            if self.parent[cur].is_some() {
                return Err(format!("cycle through {v}"));
            }
        }
        for root in 0..self.len() {
            if self.parent[root].is_none() {
                if let Some(bad) = self.find_irregular(VertexId::new(root)) {
                    return Err(format!("tree rooted at {root} irregular at {bad}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn initial_forest_is_singletons() {
        let f = WeightedRegularForest::new(vec![0, 5, -3, 2]);
        assert_eq!(f.num_constraints(), 0);
        let pos = f.positive_set();
        assert_eq!(pos, vec![v(1), v(3)]);
        f.check_invariants().unwrap();
    }

    #[test]
    fn host_never_positive() {
        let f = WeightedRegularForest::new(vec![100, -1]);
        assert!(f.positive_set().is_empty());
    }

    #[test]
    fn link_negative_into_positive_keeps_positive() {
        let mut f = WeightedRegularForest::new(vec![0, 5, -3]);
        assert!(f.update(v(1), v(2), 1));
        // Tree gain 5 - 3 = 2 > 0: both fire.
        let mut pos = f.positive_set();
        pos.sort();
        assert_eq!(pos, vec![v(1), v(2)]);
        f.check_invariants().unwrap();
    }

    #[test]
    fn link_that_kills_gain_removes_tree_from_positive_set() {
        let mut f = WeightedRegularForest::new(vec![0, 5, -9]);
        assert!(f.update(v(1), v(2), 1));
        assert!(f.positive_set().is_empty(), "gain 5 - 9 < 0");
        f.check_invariants().unwrap();
    }

    #[test]
    fn weighted_cost_counts_multiplied() {
        // b = [., 5, -2], but q must move 3 registers: cost 6 > 5.
        let mut f = WeightedRegularForest::new(vec![0, 5, -2]);
        assert!(f.update(v(1), v(2), 3));
        assert_eq!(f.weight(v(2)), 3);
        assert!(f.positive_set().is_empty());
        f.check_invariants().unwrap();
    }

    #[test]
    fn update_existing_member_requires_break() {
        // Chain: 1 <- 2 (w1), then 2 needs weight 2: BreakTree splits
        // and relinks with the new weight.
        let mut f = WeightedRegularForest::new(vec![0, 5, -2, 4]);
        assert!(f.update(v(1), v(2), 1));
        assert!(f.update(v(3), v(2), 2));
        assert_eq!(f.weight(v(2)), 2);
        assert!(f.same_tree(v(3), v(2)));
        f.check_invariants().unwrap();
    }

    #[test]
    fn freeze_poisons_tree() {
        let mut f = WeightedRegularForest::new(vec![0, 5, -1]);
        f.update(v(1), v(2), 1);
        assert!(!f.positive_set().is_empty());
        f.freeze(v(1));
        assert!(f.positive_set().is_empty());
        assert!(f.is_frozen(v(1)));
        f.check_invariants().unwrap();
    }

    #[test]
    fn break_tree_leaves_singleton() {
        let mut f = WeightedRegularForest::new(vec![0, 5, -1, -1]);
        f.update(v(1), v(2), 1);
        f.update(v(1), v(3), 1);
        f.break_tree(v(1));
        assert_eq!(f.tree_members(v(1)), vec![v(1)]);
        f.check_invariants().unwrap();
    }

    #[test]
    fn reroot_preserves_membership() {
        let mut f = WeightedRegularForest::new(vec![0, 5, -1, -1, -1]);
        f.update(v(1), v(2), 1);
        f.update(v(2), v(3), 1);
        f.update(v(3), v(4), 1);
        let before: std::collections::BTreeSet<_> = f.tree_members(v(1)).into_iter().collect();
        // Linking someone new to a deep member forces a reroot path.
        let mut f2 = f.clone();
        f2.break_tree(v(4));
        let after: std::collections::BTreeSet<_> = f2.tree_members(v(1)).into_iter().collect();
        assert!(after.contains(&v(1)));
        assert!(!after.contains(&v(4)), "v4 broke out");
        assert!(before.contains(&v(4)));
        f2.check_invariants().unwrap();
    }

    #[test]
    fn same_tree_same_weight_is_noop() {
        let mut f = WeightedRegularForest::new(vec![0, 5, -1]);
        assert!(f.update(v(1), v(2), 1));
        assert!(!f.update(v(1), v(2), 1), "no structural change possible");
    }

    #[test]
    fn self_link_is_noop() {
        let mut f = WeightedRegularForest::new(vec![0, 5]);
        assert!(!f.update(v(1), v(1), 1));
    }

    #[test]
    #[should_panic(expected = "host")]
    fn linking_host_panics() {
        let mut f = WeightedRegularForest::new(vec![0, 5]);
        f.update(v(1), v(0), 1);
    }

    #[test]
    fn constraint_count_bounded() {
        let n = 20;
        let mut b = vec![0i64; n];
        for (i, item) in b.iter_mut().enumerate().skip(1) {
            *item = if i % 2 == 0 { 3 } else { -1 };
        }
        let mut f = WeightedRegularForest::new(b);
        let mut rng = netlist::rng::Xoshiro256::seed_from_u64(5);
        for _ in 0..200 {
            let p = 1 + rng.gen_range(n - 1);
            let q = 1 + rng.gen_range(n - 1);
            if p == q {
                continue;
            }
            let w = 1 + rng.gen_range(3) as i64;
            f.update(v(p), v(q), w);
            assert!(f.num_constraints() < n);
            f.check_invariants().unwrap();
        }
    }

    #[test]
    fn positive_set_is_union_of_positive_trees() {
        let mut f = WeightedRegularForest::new(vec![0, 4, -1, 7, -20]);
        f.update(v(1), v(2), 1); // gain 3 tree
        f.update(v(3), v(4), 1); // gain -13 tree... normalization may cut it
        let pos: std::collections::BTreeSet<_> = f.positive_set().into_iter().collect();
        // v1's tree positive; v3 either alone (if cut) or suppressed.
        assert!(pos.contains(&v(1)));
        for x in &pos {
            let g = f.tree_gain(*x).expect("unfrozen");
            assert!(g > 0, "{x} in positive set but tree gain {g}");
        }
        f.check_invariants().unwrap();
    }
}
