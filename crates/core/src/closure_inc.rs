//! Warm-started incremental selection of maximum-gain closed sets.
//!
//! The solver calls [`crate::closure::ConstraintSystem::max_gain_closed_set`]
//! once per loop iteration, and after PR 2 made constraint *checking*
//! ~1000× cheaper that min-cut became the dominant cost (~98% of solve
//! time, `closure_nanos` in `BENCH_solver.json`): every iteration
//! rebuilt the flow network and ran Dinic from zero flow, even though
//! successive iterations differ only by the last violation's deltas —
//! one weight raise, one constraint arc, or one freeze.
//!
//! [`IncrementalClosure`] instead **persists the residual graph**
//! across calls. Between two selections it consumes the constraint
//! system's append-only change log ([`ConstraintSystem::gain_log`] /
//! [`ConstraintSystem::arc_log`]) and applies the corresponding
//! capacity deltas to the live residual:
//!
//! * a **capacity increase** (weight raise growing `|b·w|`, a new
//!   constraint arc, the `INF` sink arc of a freeze) keeps the current
//!   flow feasible — nothing to repair;
//! * a **capacity decrease below the current flow** (a freeze removing
//!   a positive gain arc; in general any gain shrink or sign flip) is
//!   repaired locally: the overflow is cancelled along flow-carrying
//!   paths — downstream to the sink for source-side arcs, upstream to
//!   the source for sink-side arcs — which flow conservation
//!   guarantees exist (the cancelled units belong to source→sink paths
//!   of the flow decomposition through that arc).
//!
//! With the flow feasible again, Dinic's phases **resume from the
//! repaired residual** instead of zero flow, and the closure is
//! re-extracted from the new maximum flow. When a delta batch dirties
//! more than `rebuild_percent` percent of the vertices the engine
//! falls back to a fresh build (mirroring the checker's
//! `max_dirty_percent`), and when no deltas are pending — the common
//! case right after a commit, which leaves the constraint system
//! untouched — the previous member list is served from cache without
//! touching a single arc.
//!
//! # Why the result is bit-identical to the from-scratch engine
//!
//! Both engines implement the canonical closure-selection rule of
//! [`crate::closure`]: *the inclusion-minimal maximum-gain closed set*,
//! extracted as the source-reachable side of the residual graph of a
//! maximum flow, listed in ascending vertex order. A maximum flow is
//! not unique, but by the Picard–Queyranne structure of minimum cuts
//! the residual source-reachable set is the same for **every** maximum
//! flow of the same capacitated network. The warm residual describes
//! the same capacities as a fresh build (cancelled arcs end at zero
//! flow and capacity-0 arcs are invisible to reachability), and
//! `resume` drives it to *a* maximum flow — hence the extracted member
//! list is identical to the fresh engine's, and the solver's
//! `debug_assert!` differential oracle plus the property suite in
//! `tests/properties.rs` verify exactly that on every debug-mode call.

use std::time::Instant;

use retime::VertexId;

use crate::closure::ConstraintSystem;
use crate::incremental::PerfCounters;

const INF: i64 = i64::MAX / 4;

/// Default rebuild threshold of the warm engine, in percent of `|V|`.
pub const DEFAULT_REBUILD_PERCENT: u32 = 50;

/// Which engine the solver uses to select max-gain closed sets
/// ([`crate::algorithm::SolverConfig::with_closure_engine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosureEngine {
    /// Rebuild the flow network and run Dinic from zero flow on every
    /// closure call (the [`crate::closure`] baseline).
    Fresh,
    /// Persist the residual graph across calls ([`IncrementalClosure`]),
    /// falling back to a fresh build when a delta batch dirties more
    /// than `rebuild_percent` percent of the vertices (`0` forces the
    /// fallback on every delta, `100` never falls back).
    Warm {
        /// Dirty-vertex fallback threshold in percent of `|V|`.
        rebuild_percent: u32,
    },
}

impl Default for ClosureEngine {
    fn default() -> Self {
        ClosureEngine::Warm {
            rebuild_percent: DEFAULT_REBUILD_PERCENT,
        }
    }
}

/// The warm-started closure engine (see the module docs for the
/// algorithm and the bit-identity argument).
///
/// One instance serves one [`ConstraintSystem`] for its lifetime (the
/// solver creates one per phase); it observes mutations through the
/// system's change log, so callers only mutate the system and call
/// [`IncrementalClosure::select`].
#[derive(Debug)]
pub struct IncrementalClosure {
    rebuild_percent: u32,
    built: bool,
    /// Constraint-system vertices, including the host. Network nodes
    /// are `0..n` = vertices, `n` = source, `n + 1` = sink.
    n: usize,
    // Paired-edge residual network: forward arcs at even ids, their
    // reverse at odd ids (`e ^ 1`), like the from-scratch Dinic.
    to: Vec<u32>,
    cap: Vec<i64>,
    adj: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
    /// Edge id of the source→v arc (-1 = not created yet).
    src_edge: Vec<i32>,
    /// Edge id of the v→sink arc (-1 = not created yet).
    snk_edge: Vec<i32>,
    /// The gain `b(v)·w(v)` currently encoded in the capacities.
    gain: Vec<i64>,
    frozen: Vec<bool>,
    total_positive: i64,
    flow: i64,
    arc_cursor: usize,
    gain_cursor: usize,
    cached: Vec<VertexId>,
    touched: u64,
    scratch: Vec<u32>,
}

impl IncrementalClosure {
    /// Creates an engine with the given rebuild threshold (percent of
    /// `|V|`; see [`ClosureEngine::Warm`]). The network is built lazily
    /// on the first [`IncrementalClosure::select`].
    pub fn new(rebuild_percent: u32) -> Self {
        Self {
            rebuild_percent,
            built: false,
            n: 0,
            to: Vec::new(),
            cap: Vec::new(),
            adj: Vec::new(),
            level: Vec::new(),
            iter: Vec::new(),
            src_edge: Vec::new(),
            snk_edge: Vec::new(),
            gain: Vec::new(),
            frozen: Vec::new(),
            total_positive: 0,
            flow: 0,
            arc_cursor: 0,
            gain_cursor: 0,
            cached: Vec::new(),
            touched: 0,
            scratch: Vec::new(),
        }
    }

    /// Returns the canonical maximum-gain closed set of `system`,
    /// bit-identical to [`ConstraintSystem::max_gain_closed_set`].
    ///
    /// Applies every change-log delta recorded since the previous call,
    /// repairs and resumes the persistent residual (or rebuilds past
    /// the threshold), and updates `perf` (`closure_calls`,
    /// `closure_arcs_touched`, `closure_fallback_full`,
    /// `closure_warm_nanos`).
    pub fn select(&mut self, system: &ConstraintSystem, perf: &mut PerfCounters) -> Vec<VertexId> {
        let t0 = Instant::now();
        self.touched = 0;
        perf.closure_calls += 1;
        if !self.built {
            self.rebuild(system);
        } else {
            let pending_arcs = system.arc_log().len() - self.arc_cursor;
            let pending_gains = system.gain_log().len() - self.gain_cursor;
            if pending_arcs + pending_gains > 0 {
                self.scratch.clear();
                self.scratch
                    .extend_from_slice(&system.gain_log()[self.gain_cursor..]);
                for &(p, q) in &system.arc_log()[self.arc_cursor..] {
                    self.scratch.push(p);
                    self.scratch.push(q);
                }
                self.scratch.sort_unstable();
                self.scratch.dedup();
                if self.scratch.len() * 100 > self.rebuild_percent as usize * self.n {
                    perf.closure_fallback_full += 1;
                    self.rebuild(system);
                } else {
                    self.apply_deltas(system);
                    self.resume();
                    self.extract();
                }
            }
            // No pending deltas: the previous extraction is still exact
            // (the system — hence the network — is unchanged), so the
            // cached member list is served without touching any arc.
        }
        perf.closure_arcs_touched += self.touched;
        perf.closure_warm_nanos += t0.elapsed().as_nanos() as u64;
        self.cached.clone()
    }

    fn source(&self) -> usize {
        self.n
    }

    fn sink(&self) -> usize {
        self.n + 1
    }

    /// Fresh build: the same network the from-scratch engine
    /// constructs, followed by a full Dinic run and extraction.
    fn rebuild(&mut self, system: &ConstraintSystem) {
        let n = system.len();
        self.n = n;
        let nodes = n + 2;
        // Right-size up front and reuse every buffer's capacity (and
        // the adjacency lists' inner allocations) across rebuilds — on
        // 10k+-vertex networks the warm engine's full-rebuild fallback
        // would otherwise re-allocate the whole residual each time.
        let edge_estimate = 2 * (n + system.arc_log().len());
        self.to.clear();
        self.to.reserve(edge_estimate);
        self.cap.clear();
        self.cap.reserve(edge_estimate);
        for a in self.adj.iter_mut() {
            a.clear();
        }
        self.adj.resize_with(nodes, Vec::new);
        self.level.clear();
        self.level.resize(nodes, -1);
        self.iter.clear();
        self.iter.resize(nodes, 0);
        self.src_edge.clear();
        self.src_edge.resize(n, -1);
        self.snk_edge.clear();
        self.snk_edge.resize(n, -1);
        self.gain.clear();
        self.gain.resize(n, 0);
        self.frozen.clear();
        self.frozen.resize(n, false);
        self.frozen[0] = true;
        self.total_positive = 0;
        self.flow = 0;
        let (s, t) = (self.source(), self.sink());
        for v in 1..n {
            let v_id = VertexId::new(v);
            if system.is_frozen(v_id) {
                self.frozen[v] = true;
                self.snk_edge[v] = self.add_edge(v, t, INF) as i32;
                continue;
            }
            let g = system.gain(v_id);
            self.gain[v] = g;
            if g > 0 {
                self.src_edge[v] = self.add_edge(s, v, g) as i32;
                self.total_positive += g;
            } else if g < 0 {
                self.snk_edge[v] = self.add_edge(v, t, -g) as i32;
            }
        }
        for &(p, q) in system.arc_log() {
            self.add_edge(p as usize, q as usize, INF);
        }
        self.arc_cursor = system.arc_log().len();
        self.gain_cursor = system.gain_log().len();
        self.built = true;
        self.resume();
        self.extract();
    }

    /// Applies the pending change-log deltas (the dirty vertices are
    /// already collected in `scratch`) and advances the cursors.
    fn apply_deltas(&mut self, system: &ConstraintSystem) {
        let dirty = std::mem::take(&mut self.scratch);
        for &v in &dirty {
            self.apply_vertex_state(system, v as usize);
        }
        self.scratch = dirty;
        for i in self.arc_cursor..system.arc_log().len() {
            let (p, q) = system.arc_log()[i];
            self.add_edge(p as usize, q as usize, INF);
        }
        self.arc_cursor = system.arc_log().len();
        self.gain_cursor = system.gain_log().len();
    }

    /// Reconciles one vertex's source/sink capacities with its current
    /// state in the system (no-op when nothing effectively changed).
    fn apply_vertex_state(&mut self, system: &ConstraintSystem, v: usize) {
        if self.frozen[v] {
            return; // freezes are permanent; gains of frozen vertices are ignored
        }
        let v_id = VertexId::new(v);
        if system.is_frozen(v_id) {
            let g = self.gain[v];
            if g > 0 {
                self.total_positive -= g;
                self.set_source_cap(v, 0);
            }
            self.set_sink_cap(v, INF);
            self.frozen[v] = true;
            self.gain[v] = 0;
        } else {
            let g_new = system.gain(v_id);
            let g_old = self.gain[v];
            if g_new == g_old {
                return;
            }
            self.total_positive += g_new.max(0) - g_old.max(0);
            if g_old > 0 || g_new > 0 {
                self.set_source_cap(v, g_new.max(0));
            }
            if g_old < 0 || g_new < 0 {
                self.set_sink_cap(v, (-g_new).max(0));
            }
            self.gain[v] = g_new;
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> u32 {
        self.touched += 1;
        let id = self.to.len() as u32;
        self.adj[from].push(id);
        self.to.push(to as u32);
        self.cap.push(cap);
        self.adj[to].push(id + 1);
        self.to.push(from as u32);
        self.cap.push(0);
        id
    }

    fn ensure_src_edge(&mut self, v: usize) -> usize {
        if self.src_edge[v] < 0 {
            let s = self.source();
            self.src_edge[v] = self.add_edge(s, v, 0) as i32;
        }
        self.src_edge[v] as usize
    }

    fn ensure_snk_edge(&mut self, v: usize) -> usize {
        if self.snk_edge[v] < 0 {
            let t = self.sink();
            self.snk_edge[v] = self.add_edge(v, t, 0) as i32;
        }
        self.snk_edge[v] as usize
    }

    /// Sets the total capacity of the source→v arc to `target`. When
    /// the arc's current flow exceeds `target`, the overflow is
    /// cancelled downstream (v ⇝ sink along flow-carrying arcs) first.
    fn set_source_cap(&mut self, v: usize, target: i64) {
        let e = self.ensure_src_edge(v);
        self.touched += 1;
        let flow_on = self.cap[e ^ 1];
        if target >= flow_on {
            self.cap[e] = target - flow_on;
        } else {
            let excess = flow_on - target;
            self.cancel(v, excess, true);
            self.cap[e ^ 1] = target;
            self.cap[e] = 0;
            self.flow -= excess;
        }
    }

    /// Sets the total capacity of the v→sink arc to `target`. When the
    /// arc's current flow exceeds `target`, the overflow is cancelled
    /// upstream (v ⇝ source backward along flow-carrying arcs) first.
    fn set_sink_cap(&mut self, v: usize, target: i64) {
        let e = self.ensure_snk_edge(v);
        self.touched += 1;
        let flow_on = self.cap[e ^ 1];
        if target >= flow_on {
            self.cap[e] = target - flow_on;
        } else {
            let excess = flow_on - target;
            self.cancel(v, excess, false);
            self.cap[e ^ 1] = target;
            self.cap[e] = 0;
            self.flow -= excess;
        }
    }

    /// Cancels `amount` units of flow through `start`: `downstream`
    /// follows flow-carrying forward arcs to the sink (restoring
    /// conservation after a source-side inflow cut), otherwise
    /// flow-carrying arcs are walked backward to the source (after a
    /// sink-side outflow cut). Flow decomposition guarantees the paths
    /// exist; see the module docs.
    fn cancel(&mut self, start: usize, mut amount: i64, downstream: bool) {
        let target = if downstream {
            self.sink()
        } else {
            self.source()
        };
        while amount > 0 {
            let path = self
                .find_flow_path(start, target, downstream)
                .expect("flow conservation guarantees a cancellation path");
            let mut step = amount;
            for &e in &path {
                let carried = if downstream {
                    self.cap[(e ^ 1) as usize]
                } else {
                    self.cap[e as usize]
                };
                step = step.min(carried);
            }
            debug_assert!(step > 0);
            for &e in &path {
                if downstream {
                    self.cap[e as usize] += step;
                    self.cap[(e ^ 1) as usize] -= step;
                } else {
                    self.cap[e as usize] -= step;
                    self.cap[(e ^ 1) as usize] += step;
                }
            }
            amount -= step;
        }
    }

    /// DFS for a simple path of flow-carrying arcs from `start` to
    /// `target`. Downstream paths use forward arcs (even ids) whose
    /// reverse residual — the flow — is positive; upstream paths use
    /// reverse arcs (odd ids) whose own residual is the paired forward
    /// arc's flow.
    fn find_flow_path(
        &mut self,
        start: usize,
        target: usize,
        downstream: bool,
    ) -> Option<Vec<u32>> {
        let mut visited = vec![false; self.adj.len()];
        visited[start] = true;
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        let mut path: Vec<u32> = Vec::new();
        while let Some(&(node, idx)) = stack.last() {
            if idx >= self.adj[node].len() {
                stack.pop();
                path.pop();
                continue;
            }
            stack.last_mut().expect("non-empty stack").1 += 1;
            let e = self.adj[node][idx];
            self.touched += 1;
            let usable = if downstream {
                e.is_multiple_of(2) && self.cap[(e ^ 1) as usize] > 0
            } else {
                !e.is_multiple_of(2) && self.cap[e as usize] > 0
            };
            if !usable {
                continue;
            }
            let next = self.to[e as usize] as usize;
            if visited[next] {
                continue;
            }
            visited[next] = true;
            path.push(e);
            if next == target {
                return Some(path);
            }
            stack.push((next, 0));
        }
        None
    }

    /// Resumes Dinic's phases from the current (feasible) residual
    /// until no augmenting path remains.
    fn resume(&mut self) {
        let (s, t) = (self.source(), self.sink());
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, INF);
                if f == 0 {
                    break;
                }
                self.flow += f;
            }
        }
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            self.touched += self.adj[v].len() as u64;
            for &e in &self.adj[v] {
                let u = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && self.level[u] < 0 {
                    self.level[u] = self.level[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: i64) -> i64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let e = self.adj[v][self.iter[v]] as usize;
            let u = self.to[e] as usize;
            self.touched += 1;
            if self.cap[e] > 0 && self.level[u] == self.level[v] + 1 {
                let d = self.dfs(u, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Re-extracts the canonical closure from the residual of the
    /// current maximum flow into the cache.
    fn extract(&mut self) {
        self.cached.clear();
        if self.flow >= self.total_positive {
            return; // best closure has gain <= 0 (or no positive gain at all)
        }
        let s = self.source();
        let mut seen = vec![false; self.adj.len()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            self.touched += self.adj[v].len() as u64;
            for &e in &self.adj[v] {
                let u = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        self.cached.extend(
            seen.iter()
                .enumerate()
                .take(self.n)
                .skip(1)
                .filter(|&(_, &reachable)| reachable)
                .map(|(v, _)| VertexId::new(v)),
        );
    }

    /// Test hook: overrides the encoded gain of `v` directly (the
    /// production path only ever sees the monotone raises and freezes
    /// the change log carries; sign flips and magnitude drops are
    /// exercised through this hook).
    #[cfg(test)]
    fn force_gain(&mut self, v: usize, g_new: i64) {
        assert!(self.built && !self.frozen[v]);
        let g_old = self.gain[v];
        self.total_positive += g_new.max(0) - g_old.max(0);
        if g_old > 0 || g_new > 0 {
            self.set_source_cap(v, g_new.max(0));
        }
        if g_old < 0 || g_new < 0 {
            self.set_sink_cap(v, (-g_new).max(0));
        }
        self.gain[v] = g_new;
    }

    /// Test hook: re-optimizes after [`IncrementalClosure::force_gain`]
    /// and returns the canonical closure.
    #[cfg(test)]
    fn reoptimize(&mut self) -> Vec<VertexId> {
        self.resume();
        self.extract();
        self.cached.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// Fresh oracle over explicit gains/arcs/freezes (weights all 1,
    /// so `gain == b`).
    fn fresh(gains: &[i64], arcs: &[(usize, usize)], frozen: &[usize]) -> Vec<VertexId> {
        let mut cs = ConstraintSystem::new(gains.to_vec());
        for &(p, q) in arcs {
            cs.add_arc(v(p), v(q));
        }
        for &f in frozen {
            cs.freeze(v(f));
        }
        cs.max_gain_closed_set()
    }

    /// Builds a warm engine over the same instance.
    fn warm(gains: &[i64], arcs: &[(usize, usize)]) -> (IncrementalClosure, PerfCounters) {
        let mut cs = ConstraintSystem::new(gains.to_vec());
        for &(p, q) in arcs {
            cs.add_arc(v(p), v(q));
        }
        let mut engine = IncrementalClosure::new(100);
        let mut perf = PerfCounters::default();
        let got = engine.select(&cs, &mut perf);
        assert_eq!(got, fresh(gains, arcs, &[]), "initial build must agree");
        (engine, perf)
    }

    #[test]
    fn capacity_drop_below_current_flow_is_repaired() {
        // v1 (gain 10) drags v2 (gain -4): flow 4 crosses the network.
        let gains = [0, 10, -4];
        let arcs = [(1, 2)];
        let (mut engine, _) = warm(&gains, &arcs);
        assert_eq!(engine.flow, 4);
        // Drop v1's gain to 2 < flow 4: repair must cancel 2 units
        // downstream, then conclude the closure is empty (2 - 4 < 0).
        engine.force_gain(1, 2);
        assert_eq!(engine.reoptimize(), fresh(&[0, 2, -4], &arcs, &[]));
        assert!(engine.reoptimize().is_empty());
        // And back up: the drained residual must accept new flow.
        engine.force_gain(1, 9);
        assert_eq!(engine.reoptimize(), fresh(&[0, 9, -4], &arcs, &[]));
    }

    #[test]
    fn gain_sign_flip_migrates_arc_sides() {
        // v1 feeds flow through the chain; flipping its gain negative
        // moves it from a source-side arc to a sink-side arc, and the
        // previously-pushed flow must be fully cancelled.
        let gains = [0, 6, -3, 4];
        let arcs = [(1, 2), (3, 2)];
        let (mut engine, _) = warm(&gains, &arcs);
        engine.force_gain(1, -5);
        assert_eq!(engine.reoptimize(), fresh(&[0, -5, -3, 4], &arcs, &[]));
        // Flip the other way: a cost becomes a seed.
        engine.force_gain(2, 7);
        assert_eq!(engine.reoptimize(), fresh(&[0, -5, 7, 4], &arcs, &[]));
        // And flip v1 back positive again.
        engine.force_gain(1, 1);
        assert_eq!(engine.reoptimize(), fresh(&[0, 1, 7, 4], &arcs, &[]));
    }

    #[test]
    fn empty_closure_after_delta_and_recovery() {
        let gains = [0, 5, -2];
        let arcs = [(1, 2)];
        let (mut engine, _) = warm(&gains, &arcs);
        assert_eq!(engine.cached.len(), 2);
        // Shrink the seed until the closure gain goes non-positive.
        engine.force_gain(1, 2);
        assert!(engine.reoptimize().is_empty());
        assert_eq!(engine.reoptimize(), fresh(&[0, 2, -2], &arcs, &[]));
        // total_positive bookkeeping survives the empty round.
        engine.force_gain(1, 4);
        assert_eq!(engine.reoptimize(), fresh(&[0, 4, -2], &arcs, &[]));
    }

    #[test]
    fn repeated_deltas_to_the_same_vertex() {
        let gains = [0, 8, -5, -5];
        let arcs = [(1, 2), (1, 3)];
        let (mut engine, _) = warm(&gains, &arcs);
        let mut cur = gains.to_vec();
        for g in [12, 3, -1, 0, 15, 9, 11] {
            engine.force_gain(1, g);
            cur[1] = g;
            assert_eq!(engine.reoptimize(), fresh(&cur, &arcs, &[]), "gain {g}");
        }
    }

    #[test]
    fn freeze_with_flow_cancels_downstream_via_public_path() {
        // The production-path capacity drop: freezing a positive-gain
        // vertex whose source arc carries flow.
        let mut cs = ConstraintSystem::new(vec![0, 10, -4, 3]);
        cs.add_arc(v(1), v(2));
        let mut engine = IncrementalClosure::new(100);
        let mut perf = PerfCounters::default();
        assert_eq!(engine.select(&cs, &mut perf), cs.max_gain_closed_set());
        cs.freeze(v(1));
        assert_eq!(engine.select(&cs, &mut perf), cs.max_gain_closed_set());
        assert_eq!(engine.select(&cs, &mut perf), vec![v(3)]);
    }

    #[test]
    fn warm_engine_tracks_system_mutations() {
        let mut cs = ConstraintSystem::new(vec![0, 8, -3, 5, -6, 2]);
        let mut engine = IncrementalClosure::new(100);
        let mut perf = PerfCounters::default();
        let mut step = |engine: &mut IncrementalClosure, cs: &ConstraintSystem, what: &str| {
            let got = engine.select(cs, &mut perf);
            let want = cs.max_gain_closed_set();
            assert_eq!(got, want, "after {what}");
            assert_eq!(cs.gain_of(&got), cs.gain_of(&want), "gain after {what}");
        };
        step(&mut engine, &cs, "build");
        cs.add_arc(v(1), v(2));
        step(&mut engine, &cs, "arc 1->2");
        cs.raise_weight(v(2), 2);
        step(&mut engine, &cs, "raise w(2)");
        cs.add_arc(v(3), v(4));
        step(&mut engine, &cs, "arc 3->4");
        cs.raise_weight(v(4), 2);
        step(&mut engine, &cs, "raise w(4): {3,4} turns net-negative");
        cs.add_arc(v(5), v(4));
        step(&mut engine, &cs, "arc 5->4");
        cs.freeze(v(1));
        step(&mut engine, &cs, "freeze 1");
        cs.freeze(v(3));
        step(&mut engine, &cs, "freeze 3");
        cs.raise_weight(v(1), 5); // weight raise on a frozen vertex: no-op
        step(&mut engine, &cs, "raise w(1) while frozen");
        cs.freeze(v(5));
        step(&mut engine, &cs, "freeze 5: nothing positive remains");
        assert!(engine.select(&cs, &mut perf).is_empty());
    }

    #[test]
    fn unchanged_system_serves_cached_closure() {
        let mut cs = ConstraintSystem::new(vec![0, 4, -1]);
        cs.add_arc(v(1), v(2));
        let mut engine = IncrementalClosure::new(100);
        let mut perf = PerfCounters::default();
        let first = engine.select(&cs, &mut perf);
        let after_build = perf.closure_arcs_touched;
        assert!(after_build > 0);
        let second = engine.select(&cs, &mut perf);
        assert_eq!(first, second);
        assert_eq!(
            perf.closure_arcs_touched, after_build,
            "a cached call must not touch any arc"
        );
        assert_eq!(perf.closure_calls, 2);
    }

    #[test]
    fn rebuild_threshold_forces_and_forbids_fallback() {
        let gains = vec![0, 6, -2, 3];
        // threshold 0: every pending delta forces a full rebuild.
        let mut cs = ConstraintSystem::new(gains.clone());
        let mut engine = IncrementalClosure::new(0);
        let mut perf = PerfCounters::default();
        engine.select(&cs, &mut perf);
        assert_eq!(
            perf.closure_fallback_full, 0,
            "initial build is not a fallback"
        );
        cs.add_arc(v(1), v(2));
        assert_eq!(engine.select(&cs, &mut perf), cs.max_gain_closed_set());
        assert_eq!(perf.closure_fallback_full, 1);
        // threshold 100: the dirty set can never exceed |V|, so the
        // engine never falls back.
        let mut cs = ConstraintSystem::new(gains);
        let mut engine = IncrementalClosure::new(100);
        let mut perf = PerfCounters::default();
        engine.select(&cs, &mut perf);
        cs.add_arc(v(1), v(2));
        cs.raise_weight(v(2), 3);
        cs.freeze(v(3));
        assert_eq!(engine.select(&cs, &mut perf), cs.max_gain_closed_set());
        assert_eq!(perf.closure_fallback_full, 0);
    }
}
