//! Full verification of Problem 1's constraints for a candidate
//! retiming, and the prioritized violation finder driving Algorithm 1.

use retime::labels::{P1Violation, P2Violation};
use retime::timing::zero_weight_topo;
use retime::{EdgeId, LrLabels, RetimeGraph, Retiming, VertexId};

use crate::problem::Problem;

/// A violation of one of Problem 1's constraint families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// P0: a retimed edge went negative.
    P0 {
        /// The offending edge.
        edge: EdgeId,
        /// Its (negative) retimed weight.
        weight: i64,
    },
    /// P1: a combinational path exceeds `Φ − T_s`.
    P1(P1Violation),
    /// P2: a register-launched path is shorter than `R_min`.
    P2(P2Violation),
}

/// Finds the highest-priority violation of `r` against the instance.
///
/// Priority: **P0 first** (a structurally invalid retiming makes the
/// timing labels meaningless), then P2, then P1 — the paper's
/// Algorithm 1 lists P2 before P0, but its checks are incremental and
/// always see structurally valid states; checking P0 first is the
/// equivalent formulation for a from-scratch checker (see DESIGN.md).
pub fn find_violation(graph: &RetimeGraph, problem: &Problem, r: &Retiming) -> Option<Violation> {
    for (i, _) in graph.edges().iter().enumerate() {
        let e = EdgeId::new(i);
        let w = graph.retimed_weight(e, r);
        if w < 0 {
            return Some(Violation::P0 { edge: e, weight: w });
        }
    }
    let order = zero_weight_topo(graph, r).expect(
        "P0-clean retimings of circuit graphs cannot create zero-weight cycles \
         (cycle weight is retiming-invariant)",
    );
    let labels = LrLabels::compute_with_order(graph, r, problem.params, &order);
    if let Some(v) = labels.find_p2_violation(graph, r, problem.r_min) {
        return Some(Violation::P2(v));
    }
    if let Some(v) = labels.find_p1_violation(graph, r) {
        return Some(Violation::P1(v));
    }
    None
}

/// Checks all of P0 ∧ P1' ∧ P2'. `Ok(())` means `r` is feasible for
/// the instance.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_feasible(
    graph: &RetimeGraph,
    problem: &Problem,
    r: &Retiming,
) -> Result<(), Violation> {
    match find_violation(graph, problem, r) {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

/// Counts all violations (diagnostics; the solver only ever needs the
/// first).
pub fn count_violations(
    graph: &RetimeGraph,
    problem: &Problem,
    r: &Retiming,
) -> (usize, usize, usize) {
    let mut p0 = 0;
    for i in 0..graph.num_edges() {
        if graph.retimed_weight(EdgeId::new(i), r) < 0 {
            p0 += 1;
        }
    }
    if p0 > 0 {
        return (p0, 0, 0);
    }
    let order = zero_weight_topo(graph, r).expect("valid");
    let labels = LrLabels::compute_with_order(graph, r, problem.params, &order);
    let mut p1 = 0;
    for &v in &order {
        if let Some(l) = labels.l(v) {
            if l < graph.delay(v) {
                p1 += 1;
            }
        }
    }
    let mut p2 = 0;
    for (i, edge) in graph.edges().iter().enumerate() {
        let e = EdgeId::new(i);
        if edge.to.is_host() || graph.retimed_weight(e, r) <= 0 {
            continue;
        }
        if let Some(sp) = labels.short_path(graph, edge.to) {
            if sp < problem.r_min {
                p2 += 1;
            }
        }
    }
    (0, p1, p2)
}

/// The vertex blamed for a violation (used to anchor the new active
/// constraint) plus the vertex that must join the decrease and by how
/// much *in total* under the tentative move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintRequest {
    /// `p`: a vertex of the current move set responsible for the
    /// violation.
    pub p: VertexId,
    /// `q`: the vertex that must also decrease (the host when the fix
    /// is impossible — move must be frozen).
    pub q: VertexId,
    /// Additional decrease of `q` required on top of its current plan.
    pub extra: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};
    use retime::ElwParams;

    fn instance(phi: i64, r_min: i64) -> (netlist::Circuit, RetimeGraph, Problem) {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let counts = vec![1i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(phi), r_min);
        (c, g, p)
    }

    #[test]
    fn zero_retiming_feasible_with_loose_bounds() {
        let (_, g, p) = instance(10, 1);
        assert!(check_feasible(&g, &p, &Retiming::zero(&g)).is_ok());
    }

    #[test]
    fn p0_found_first() {
        let (c, g, p) = instance(10, 1);
        let mut r = Retiming::zero(&g);
        let s1 = g.vertex_of(c.find("s1").unwrap()).unwrap();
        r.set(s1, -1); // edge (s0,s1) goes negative
        match find_violation(&g, &p, &r) {
            Some(Violation::P0 { weight, .. }) => assert_eq!(weight, -1),
            other => panic!("expected P0, got {other:?}"),
        }
    }

    #[test]
    fn p1_detected_under_tight_phi() {
        let (_, g, p) = instance(2, 1);
        match find_violation(&g, &p, &Retiming::zero(&g)) {
            Some(Violation::P1(v)) => assert!(v.slack < 0),
            other => panic!("expected P1, got {other:?}"),
        }
    }

    #[test]
    fn p2_detected_under_tight_rmin() {
        let (_, g, p) = instance(10, 4);
        match find_violation(&g, &p, &Retiming::zero(&g)) {
            Some(Violation::P2(v)) => assert!(v.short_path < 4),
            other => panic!("expected P2, got {other:?}"),
        }
    }

    #[test]
    fn p2_takes_priority_over_p1() {
        // Both violated: tight phi AND tight r_min (possible because
        // different paths bind). P2 must be reported first.
        let (_, g, p) = instance(2, 4);
        match find_violation(&g, &p, &Retiming::zero(&g)) {
            Some(Violation::P2(_)) => {}
            other => panic!("expected P2 first, got {other:?}"),
        }
    }

    #[test]
    fn violation_counters() {
        let (_, g, p) = instance(2, 1);
        let (p0, p1, p2) = count_violations(&g, &p, &Retiming::zero(&g));
        assert_eq!(p0, 0);
        assert!(p1 > 0);
        assert_eq!(p2, 0);
    }
}
