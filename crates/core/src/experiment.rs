//! End-to-end experiment driver: circuit → SER analysis → Problem 1 →
//! MinObs / MinObsWin → retimed netlists → SER re-analysis. One call
//! produces everything a row of the paper's Table I reports.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use netlist::{Circuit, DelayModel};
use retime::apply::apply_retiming;
use retime::{ElwParams, RetimeGraph, Retiming};
use ser_engine::odc::Observability;
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{
    analyze, propprob_report_with_trace, vertex_observabilities, ErrorRateModel, SerConfig,
};

use crate::algorithm::{SolverConfig, SolverStats};
use crate::init::InitConfig;
use crate::problem::Problem;
use crate::session::SolverSession;
use crate::supervisor::{
    BreakerTrip, Checkpoint, FileCheckpointSink, SolveBudget, Supervision, TripCause,
};
use crate::SolveError;

/// Configuration of a full experiment run.
///
/// Construct with [`RunConfig::default`] (or [`RunConfig::small`]) and
/// chain `with_*` builders — the struct is `#[non_exhaustive]`, so
/// literals do not compile outside this crate and future knobs are
/// non-breaking.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct RunConfig {
    /// Simulation parameters (K vectors, n frames, warm-up, seed).
    pub sim: SimConfig,
    /// Gate delay model.
    pub delays: DelayModel,
    /// Raw rate characterization.
    pub rates: ErrorRateModel,
    /// §V initialization knobs (T_s, T_h, ε).
    pub init: InitConfig,
    /// Overrides the §V-derived `R_min` bound (the `retimer --r-min`
    /// flag). §V always chooses a bound the starting retiming
    /// satisfies, so an over-tight override is the supported way to
    /// drive the pipeline into [`SolveError::InfeasibleInitial`].
    pub r_min_override: Option<i64>,
    /// Resource budget shared by both solver runs (MinObs and
    /// MinObsWin race the same deadline through the budget's shared
    /// cancellation token). An expired budget degrades the affected
    /// method to its best-so-far retiming; see
    /// [`MethodResult::stats`]'s degradation report.
    pub budget: SolveBudget,
    /// Checkpoint path prefix: each method writes
    /// `<prefix>.<method>.ckpt` periodically (the `retimer
    /// --checkpoint` flag).
    pub checkpoint: Option<PathBuf>,
    /// Resume each method from its checkpoint file when one exists
    /// (the `retimer --resume` flag; requires [`RunConfig::checkpoint`]).
    pub resume: bool,
    /// Base solver configuration shared by both methods (the MinObs
    /// baseline additionally applies `with_p2(false)`). Lets embedding
    /// callers — the serve daemon's per-job configs — select e.g. the
    /// closure engine without bypassing the experiment driver.
    pub solver: SolverConfig,
    /// Phase/progress event stream (see [`ExperimentEvent`]); unset by
    /// default.
    pub progress: ProgressHook,
}

/// A pipeline phase notification streamed by [`Experiment::run`]
/// through [`RunConfig::with_progress`]. The serve daemon maps these
/// onto its per-job `levelized` / `iteration` protocol events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentEvent {
    /// The retiming graph is built, §V initialization succeeded and
    /// the circuit is levelized; solving is about to start.
    Levelized {
        /// Retiming-graph vertices (excluding the host).
        vertices: usize,
        /// Retiming-graph edges.
        edges: usize,
        /// Combinational levels in the circuit.
        levels: usize,
        /// The chosen period constraint Φ.
        phi: i64,
        /// The chosen (or overridden) `R_min` bound.
        r_min: i64,
    },
    /// Periodic solver progress (method is `"minobs"` or
    /// `"minobswin"`).
    SolveProgress {
        /// Which method is solving.
        method: &'static str,
        /// Total solver iterations so far.
        iterations: usize,
        /// Committed improvement rounds so far.
        commits: usize,
    },
    /// One method's solve finished.
    MethodDone {
        /// Which method finished.
        method: &'static str,
    },
}

/// A shareable experiment progress callback.
pub type ExperimentProgressFn = dyn Fn(ExperimentEvent) + Send + Sync;

/// An optional [`ExperimentProgressFn`], wrapped so [`RunConfig`]
/// stays `Debug + Clone + Default`.
#[derive(Clone, Default)]
pub struct ProgressHook(Option<Arc<ExperimentProgressFn>>);

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProgressHook")
            .field(&self.0.is_some())
            .finish()
    }
}

impl ProgressHook {
    /// Wraps a callback.
    pub fn new(f: Arc<ExperimentProgressFn>) -> Self {
        Self(Some(f))
    }

    /// Emits one event (a no-op when unset).
    pub fn emit(&self, event: ExperimentEvent) {
        if let Some(f) = &self.0 {
            f(event);
        }
    }

    /// Whether a callback is registered.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }
}

impl RunConfig {
    /// A light configuration for tests.
    pub fn small() -> Self {
        Self::default().with_sim(SimConfig::small())
    }

    /// Sets the simulation parameters.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the gate delay model.
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }

    /// Sets the raw rate characterization.
    pub fn with_rates(mut self, rates: ErrorRateModel) -> Self {
        self.rates = rates;
        self
    }

    /// Sets the §V initialization knobs.
    pub fn with_init(mut self, init: InitConfig) -> Self {
        self.init = init;
        self
    }

    /// Overrides the `R_min` bound instead of deriving it per §V.
    pub fn with_r_min_override(mut self, r_min: Option<i64>) -> Self {
        self.r_min_override = r_min;
        self
    }

    /// Sets the solver budget (shared by both methods).
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the checkpoint path prefix.
    pub fn with_checkpoint(mut self, prefix: Option<PathBuf>) -> Self {
        self.checkpoint = prefix;
        self
    }

    /// Resumes from existing checkpoint files.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the base solver configuration (both methods start from it;
    /// MinObs additionally disables P2).
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Streams [`ExperimentEvent`]s through `f` as the pipeline runs.
    pub fn with_progress(mut self, f: Arc<ExperimentProgressFn>) -> Self {
        self.progress = ProgressHook::new(f);
        self
    }
}

/// The per-method checkpoint file for a `--checkpoint` prefix.
pub fn checkpoint_path(prefix: &Path, method: &str) -> PathBuf {
    PathBuf::from(format!("{}.{method}.ckpt", prefix.display()))
}

/// Result of one optimization method on one circuit.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// The final retiming.
    pub retiming: Retiming,
    /// Registers in the rebuilt netlist.
    pub registers: usize,
    /// Relative register change vs. the original circuit
    /// (`Δ#FF` column; negative = fewer registers).
    pub delta_ff: f64,
    /// SER of the rebuilt netlist (eq. (4)).
    pub ser: f64,
    /// Relative SER change vs. the original circuit (`ΔSER` column;
    /// negative = improvement).
    pub delta_ser: f64,
    /// Wall-clock seconds spent inside the retiming solver.
    pub solve_seconds: f64,
    /// Solver counters (`#J` = `stats.commits`).
    pub stats: SolverStats,
}

/// Everything one Table I row reports.
#[derive(Debug, Clone)]
pub struct CircuitRun {
    /// Circuit name.
    pub name: String,
    /// `|V|`: retiming-graph vertices (excluding the host).
    pub v: usize,
    /// `|E|`: retiming-graph edges.
    pub e: usize,
    /// `#FF`: registers in the original circuit.
    pub ff: usize,
    /// The period constraint Φ chosen by §V.
    pub phi: i64,
    /// The `R_min` bound chosen by §V.
    pub r_min: i64,
    /// Whether the setup-and-hold initialization succeeded.
    pub used_setup_hold: bool,
    /// SER of the original circuit at Φ.
    pub ser_original: f64,
    /// SER of the original circuit per the independent
    /// propagation-probability engine (a built-in second opinion on
    /// `ser_original`; see [`ser_engine::propprob`]).
    pub ser_propprob: f64,
    /// The Efficient MinObs baseline result.
    pub minobs: MethodResult,
    /// The MinObsWin result.
    pub minobswin: MethodResult,
}

impl CircuitRun {
    /// The paper's `SER_ref / SER_new` comparison column.
    pub fn ser_ratio(&self) -> f64 {
        self.minobs.ser / self.minobswin.ser
    }
}

/// A configured end-to-end experiment over one circuit, built in the
/// same builder style as [`SolverSession`]:
///
/// ```no_run
/// use minobswin::experiment::{Experiment, RunConfig};
/// # use netlist::samples;
/// # fn main() -> Result<(), minobswin::SolveError> {
/// let run = Experiment::new(&samples::s27_like())
///     .config(RunConfig::small())
///     .run()?;
/// println!("{}: SER ratio {:.3}", run.name, run.ser_ratio());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[must_use = "an Experiment does nothing until `run()` is called"]
pub struct Experiment<'a> {
    circuit: &'a Circuit,
    config: RunConfig,
}

impl<'a> Experiment<'a> {
    /// Creates an experiment over `circuit` with the default
    /// [`RunConfig`].
    pub fn new(circuit: &'a Circuit) -> Self {
        Self {
            circuit,
            config: RunConfig::default(),
        }
    }

    /// Replaces the experiment configuration.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the full pipeline: simulate → Problem 1 → MinObs and
    /// MinObsWin → rebuild → SER re-analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] on infeasible initialization or solver
    /// failure, and wraps retiming/netlist errors from the substrate
    /// crates.
    pub fn run(self) -> Result<CircuitRun, SolveError> {
        run_experiment(self.circuit, &self.config)
    }
}

fn run_experiment(circuit: &Circuit, config: &RunConfig) -> Result<CircuitRun, SolveError> {
    let graph = RetimeGraph::from_circuit(circuit, &config.delays)?;
    let init = config.init.initialize(&graph)?;
    let r_min = config.r_min_override.unwrap_or(init.r_min);
    let params = ElwParams {
        phi: init.phi,
        t_setup: config.init.t_setup,
        t_hold: config.init.t_hold,
    };

    config.progress.emit(ExperimentEvent::Levelized {
        vertices: graph.num_vertices() - 1,
        edges: graph.num_edges(),
        levels: netlist::Levelization::of(circuit).num_levels(),
        phi: init.phi,
        r_min,
    });

    // The simulation data plane dominates memory at scale (frames ×
    // gates × vectors); check it against the budget's memory cap
    // before allocating anything, so an over-budget instance fails
    // with a structured error instead of an OOM abort.
    if let Some(cap) = config.budget.max_memory_estimate {
        let bytes = FrameTrace::data_plane_bytes(circuit, &config.sim);
        if bytes > cap {
            return Err(SolveError::Initialization(format!(
                "simulation data plane needs ~{bytes} bytes \
                 ({} frames x {} gates x {} vectors), over the \
                 {cap}-byte memory budget",
                config.sim.frames,
                circuit.len(),
                config.sim.num_vectors
            )));
        }
    }

    // One simulation serves everything: retiming does not change the
    // observability of combinational gates (§III.B).
    let trace = FrameTrace::simulate(circuit, config.sim);
    let observability = Observability::compute(circuit, &trace);
    let vertex_obs = vertex_observabilities(circuit, &graph, &observability);
    let problem =
        Problem::from_observabilities(&graph, &vertex_obs, config.sim.num_vectors, params, r_min);

    let ser_config = SerConfig {
        sim: config.sim,
        delays: config.delays.clone(),
        rates: config.rates.clone(),
        elw: params,
    };
    let original_report = analyze(circuit, &ser_config)?;
    // Second opinion from the propagation-probability engine, reusing
    // the one simulation above for its signal densities.
    let propprob_report = propprob_report_with_trace(circuit, &ser_config, &trace)?;
    let ff = circuit.num_registers();

    // Any SER engine breaker trip (sampled audit caught the parallel
    // engine diverging; results came from the scalar fallback) is
    // surfaced on each method's degradation report.
    let sim_engine = observability.engine().merged(original_report.engine);
    let evaluate = |retiming: &Retiming,
                    seconds: f64,
                    mut stats: SolverStats|
     -> Result<MethodResult, SolveError> {
        let rebuilt = apply_retiming(circuit, &graph, retiming)?;
        let report = analyze(&rebuilt, &ser_config)?;
        let engine = sim_engine.merged(report.engine);
        if !engine.is_clean() {
            stats.degradation.ser_trip = Some(BreakerTrip {
                iteration: 0,
                cause: TripCause::Divergence,
            });
            stats.perf.breaker_trips += engine.trips;
        }
        Ok(MethodResult {
            retiming: retiming.clone(),
            registers: rebuilt.num_registers(),
            delta_ff: rebuilt.num_registers() as f64 / ff.max(1) as f64 - 1.0,
            ser: report.ser,
            delta_ser: report.ser / original_report.ser - 1.0,
            solve_seconds: seconds,
            stats,
        })
    };

    // Both methods run under the same budget: wall-time expiry in one
    // cancels the shared token, so the other degrades promptly instead
    // of doubling the overrun.
    let supervise = |method: &'static str| -> Result<Supervision, SolveError> {
        let mut sup = Supervision::new().budget(config.budget.clone());
        if let Some(prefix) = &config.checkpoint {
            let path = checkpoint_path(prefix, method);
            if config.resume && path.exists() {
                match Checkpoint::read_file(&path) {
                    Ok(checkpoint) => sup = sup.resume_from(checkpoint),
                    Err(e) => {
                        // Self-healing: a checkpoint that fails its
                        // seal or parse is moved aside (preserved for
                        // inspection, never rewritten in place) and
                        // the solve starts fresh — recomputing is
                        // always safe, resuming corrupt state never is.
                        let quarantined = path.with_extension("ckpt.corrupt");
                        let _ = netlist::fio::rename(&path, &quarantined);
                        eprintln!(
                            "warning: ignoring corrupt checkpoint ({e}); \
                             moved to {} and solving from scratch",
                            quarantined.display()
                        );
                    }
                }
            }
            sup = sup.checkpoint_to(FileCheckpointSink::new(path));
        }
        if config.progress.is_set() {
            let hook = config.progress.clone();
            sup = sup.on_progress(Arc::new(move |p: crate::SolveProgress| {
                hook.emit(ExperimentEvent::SolveProgress {
                    method,
                    iterations: p.iterations,
                    commits: p.commits,
                });
            }));
        }
        Ok(sup)
    };

    let t0 = Instant::now();
    let ref_sol = SolverSession::new(&graph, &problem)
        .config(config.solver.with_p2(false))
        .initial(init.retiming.clone())
        .run_supervised(supervise("minobs")?)?
        .into_solution();
    let ref_secs = t0.elapsed().as_secs_f64();
    config
        .progress
        .emit(ExperimentEvent::MethodDone { method: "minobs" });

    let t1 = Instant::now();
    let win_sol = SolverSession::new(&graph, &problem)
        .config(config.solver)
        .initial(init.retiming.clone())
        .run_supervised(supervise("minobswin")?)?
        .into_solution();
    let win_secs = t1.elapsed().as_secs_f64();
    config.progress.emit(ExperimentEvent::MethodDone {
        method: "minobswin",
    });

    Ok(CircuitRun {
        name: circuit.name().to_string(),
        v: graph.num_vertices() - 1,
        e: graph.num_edges(),
        ff,
        phi: init.phi,
        r_min,
        used_setup_hold: init.used_setup_hold,
        ser_original: original_report.ser,
        ser_propprob: propprob_report.ser,
        minobs: evaluate(&ref_sol.retiming, ref_secs, ref_sol.stats)?,
        minobswin: evaluate(&win_sol.retiming, win_secs, win_sol.stats)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn s27_runs_end_to_end() {
        let c = samples::s27_like();
        let run = Experiment::new(&c)
            .config(RunConfig::small())
            .run()
            .unwrap();
        assert!(run.ser_original > 0.0);
        assert!(run.ser_propprob > 0.0);
        assert!(run.minobs.ser > 0.0);
        assert!(run.minobswin.ser > 0.0);
        assert_eq!(run.ff, 3);
        assert_eq!(run.v, c.num_combinational());
    }

    #[test]
    fn generated_circuit_runs_end_to_end() {
        let c = netlist::generator::GeneratorConfig::new("exp", 11)
            .gates(120)
            .registers(24)
            .build();
        let run = Experiment::new(&c)
            .config(RunConfig::small())
            .run()
            .unwrap();
        // The optimizers only ever improve (or match) the scaled
        // register-observability objective; SER usually follows, but is
        // evaluated with fresh ELWs so we only sanity-check structure.
        assert!(run.minobs.registers > 0);
        assert!(run.minobswin.registers > 0);
        assert!(run.minobswin.stats.commits <= run.minobswin.stats.iterations);
    }

    #[test]
    fn r_min_override_can_force_infeasibility() {
        let c = samples::s27_like();
        let err = Experiment::new(&c)
            .config(RunConfig::small().with_r_min_override(Some(1_000_000)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SolveError::InfeasibleInitial(_)));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn memory_cap_below_data_plane_fails_structured() {
        let c = samples::s27_like();
        // A cap of 1 byte is below any data plane: the run must fail
        // with a structured initialization error (exit 1), not abort.
        let budget = SolveBudget::new().with_max_memory_estimate(Some(1));
        let err = Experiment::new(&c)
            .config(RunConfig::small().with_budget(budget))
            .run()
            .unwrap_err();
        assert!(matches!(err, SolveError::Initialization(_)), "{err}");
        assert!(err.to_string().contains("memory budget"), "{err}");
        assert_eq!(err.exit_code(), 1);
        // A generous cap admits the same run.
        let budget = SolveBudget::new().with_max_memory_estimate(Some(1 << 30));
        Experiment::new(&c)
            .config(RunConfig::small().with_budget(budget))
            .run()
            .unwrap();
    }

    #[test]
    fn deterministic_runs() {
        let c = samples::s27_like();
        let a = Experiment::new(&c)
            .config(RunConfig::small())
            .run()
            .unwrap();
        let b = Experiment::new(&c)
            .config(RunConfig::small())
            .run()
            .unwrap();
        assert_eq!(a.ser_original, b.ser_original);
        assert_eq!(a.minobswin.ser, b.minobswin.ser);
        assert_eq!(a.minobswin.retiming, b.minobswin.retiming);
    }
}
