//! The builder-style solver facade: the one solver entry point (the
//! loose `initialize`/`solve`/`min_obs` free functions it replaced
//! are gone as of 0.3).
//!
//! ```
//! use minobswin::{Problem, SolverSession};
//! use minobswin::algorithm::SolverConfig;
//! use netlist::{samples, DelayModel};
//! use retime::{ElwParams, RetimeGraph};
//!
//! # fn main() -> Result<(), minobswin::SolveError> {
//! let circuit = samples::pipeline(9, 3);
//! let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit())?;
//! let counts = vec![1i64; graph.num_vertices()];
//! let problem =
//!     Problem::from_observability_counts(&graph, &counts, ElwParams::with_phi(20), 1);
//! let solution = SolverSession::new(&graph, &problem)
//!     .config(SolverConfig::default().with_p2(false))
//!     .run()?;
//! assert!(solution.objective_gain >= 0);
//! # Ok(())
//! # }
//! ```

use retime::{RetimeGraph, Retiming};

use crate::algorithm::{run_solver, run_supervised_solver, Solution, SolverConfig};
use crate::problem::Problem;
use crate::supervisor::{SolveOutcome, Supervision};
use crate::SolveError;

/// A configured solver run over one instance.
///
/// Construct with [`SolverSession::new`], refine with the builder
/// methods, and execute with [`SolverSession::run`]. The default
/// configuration is MinObsWin ([`SolverConfig::default`]) starting
/// from the zero retiming; disable P2 via
/// [`SolverConfig::with_p2`] for the Efficient MinObs baseline.
#[derive(Debug, Clone)]
#[must_use = "a SolverSession does nothing until `run()` is called"]
pub struct SolverSession<'a> {
    graph: &'a RetimeGraph,
    problem: &'a Problem,
    config: SolverConfig,
    initial: Option<Retiming>,
}

impl<'a> SolverSession<'a> {
    /// Creates a session over `graph` and `problem` with the default
    /// configuration and the zero starting retiming.
    pub fn new(graph: &'a RetimeGraph, problem: &'a Problem) -> Self {
        Self {
            graph,
            problem,
            config: SolverConfig::default(),
            initial: None,
        }
    }

    /// Replaces the solver configuration.
    pub fn config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the starting retiming (it must be feasible for the
    /// instance; [`crate::init::InitConfig`] produces one). Defaults
    /// to the zero retiming.
    pub fn initial(mut self, retiming: Retiming) -> Self {
        self.initial = Some(retiming);
        self
    }

    /// The configuration this session will run with.
    pub fn current_config(&self) -> SolverConfig {
        self.config
    }

    /// Runs the solver.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InfeasibleInitial`] if the starting retiming
    ///   violates the instance (P2 violations are ignored when
    ///   `enable_p2` is off).
    /// * [`SolveError::IterationLimit`] if the iteration safety cap is
    ///   hit (would indicate a bug; the cap is far above the paper's
    ///   `|V|²` bound).
    pub fn run(self) -> Result<Solution, SolveError> {
        let initial = self.initial.unwrap_or_else(|| Retiming::zero(self.graph));
        run_solver(self.graph, self.problem, initial, self.config)
    }

    /// Runs the solver under [`Supervision`]: budgets, panic-isolated
    /// incremental engines with self-healing fallback, and
    /// checkpoint/resume (see [`crate::supervisor`]). With the default
    /// supervision this behaves exactly like [`SolverSession::run`]
    /// and the outcome is always [`SolveOutcome::Complete`].
    ///
    /// # Errors
    ///
    /// Everything [`SolverSession::run`] reports, plus
    /// [`SolveError::Checkpoint`] when resuming from a checkpoint that
    /// is unreadable or does not match this instance. A budget expiry
    /// is **not** an error: it yields [`SolveOutcome::Degraded`] with
    /// the best feasible retiming found so far.
    pub fn run_supervised(self, supervision: Supervision) -> Result<SolveOutcome, SolveError> {
        let initial = self.initial.unwrap_or_else(|| Retiming::zero(self.graph));
        run_supervised_solver(self.graph, self.problem, initial, self.config, supervision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_feasible;
    use netlist::{samples, DelayModel};
    use retime::ElwParams;

    fn instance(phi: i64) -> (RetimeGraph, Problem) {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let counts = vec![1i64; g.num_vertices()];
        let p = Problem::from_observability_counts(&g, &counts, ElwParams::with_phi(phi), 1);
        (g, p)
    }

    #[test]
    fn session_defaults_to_zero_retiming() {
        let (g, p) = instance(20);
        let sol = SolverSession::new(&g, &p).run().unwrap();
        assert!(check_feasible(&g, &p, &sol.retiming).is_ok());
        assert!(sol.objective_gain >= 0);
    }

    #[test]
    fn explicit_zero_initial_matches_default() {
        let (g, p) = instance(20);
        let explicit = SolverSession::new(&g, &p)
            .initial(Retiming::zero(&g))
            .run()
            .unwrap();
        let defaulted = SolverSession::new(&g, &p).run().unwrap();
        assert_eq!(explicit.retiming, defaulted.retiming);
        assert_eq!(explicit.objective_gain, defaulted.objective_gain);
    }

    #[test]
    fn incremental_and_full_engines_agree() {
        let (g, p) = instance(10);
        // The tiny pipeline's dirty cones exceed the default 50% cap,
        // so raise it to actually exercise the incremental path.
        let incremental = SolverSession::new(&g, &p)
            .config(SolverConfig::default().with_max_dirty_percent(100))
            .run()
            .unwrap();
        let full = SolverSession::new(&g, &p)
            .config(SolverConfig::default().with_incremental(false))
            .run()
            .unwrap();
        assert_eq!(incremental.retiming, full.retiming);
        assert_eq!(incremental.objective_gain, full.objective_gain);
        assert_eq!(incremental.stats.commits, full.stats.commits);
        assert!(incremental.stats.perf.incremental_checks > 0);
        assert_eq!(full.stats.perf.incremental_checks, 0);
    }

    #[test]
    fn closure_engines_agree_end_to_end() {
        use crate::closure_inc::ClosureEngine;
        let (g, p) = instance(10);
        let warm = SolverSession::new(&g, &p).run().unwrap();
        let fresh = SolverSession::new(&g, &p)
            .config(SolverConfig::default().with_closure_engine(ClosureEngine::Fresh))
            .run()
            .unwrap();
        assert_eq!(warm.retiming, fresh.retiming);
        assert_eq!(warm.objective_gain, fresh.objective_gain);
        assert_eq!(warm.stats.commits, fresh.stats.commits);
        assert_eq!(
            warm.stats.perf.closure_calls,
            fresh.stats.perf.closure_calls
        );
        // Both engines count the arcs they examine; reuse must not
        // cost more than rebuilding on every call.
        assert!(warm.stats.perf.closure_calls > 0);
        assert!(
            warm.stats.perf.closure_arcs_touched <= fresh.stats.perf.closure_arcs_touched,
            "warm engine touched more arcs ({}) than fresh ({})",
            warm.stats.perf.closure_arcs_touched,
            fresh.stats.perf.closure_arcs_touched,
        );
        assert_eq!(fresh.stats.perf.closure_warm_nanos, 0);
    }

    #[test]
    fn infeasible_initial_reported() {
        let (g, p) = instance(2); // phi too tight for r = 0
        let err = SolverSession::new(&g, &p).run().unwrap_err();
        assert!(matches!(err, SolveError::InfeasibleInitial(_)));
        assert_eq!(err.exit_code(), 1);
    }
}
