//! # minobswin — retiming for soft error minimization under
//! error-latching window constraints
//!
//! A from-scratch Rust reproduction of **Lu & Zhou, DATE 2013**. The
//! paper formulates *Problem 1* — minimize the total observability of a
//! sequential circuit's registers (the logic-masking share of its soft
//! error rate) by retiming, subject to error-latching-window (ELW)
//! constraints that stop the retiming from degrading timing masking —
//! and solves it with an incremental algorithm over a **weighted
//! regular forest**.
//!
//! This crate provides:
//!
//! * [`Problem`]: the instance (gain coefficients `b(v)` from
//!   observability counts, clocking parameters, `R_min`),
//! * [`forest::WeightedRegularForest`]: the paper's §IV data structure,
//! * [`SolverSession`]: **Algorithm 1 (MinObsWin)** — and, with
//!   [`algorithm::SolverConfig::with_p2`]`(false)`, the *Efficient
//!   MinObs* baseline of ref \[17\],
//! * [`incremental::IncrementalChecker`]: the dirty-cone constraint
//!   engine behind the solver's per-move feasibility checks,
//! * [`closure_inc::IncrementalClosure`]: the warm-started max-gain
//!   closure engine (select with
//!   [`algorithm::SolverConfig::with_closure_engine`]),
//! * [`init::InitConfig`]: the §V choice of `Φ`, `R_min` and the
//!   starting retiming,
//! * [`experiment::Experiment`]: the end-to-end driver producing a
//!   Table-I row (SER before/after both methods, Δ#FF, timings, `#J`).
//!
//! # Examples
//!
//! ```
//! use minobswin::experiment::{Experiment, RunConfig};
//! use netlist::samples;
//! # fn main() -> Result<(), minobswin::SolveError> {
//! let circuit = samples::s27_like();
//! let run = Experiment::new(&circuit).config(RunConfig::small()).run()?;
//! println!(
//!     "SER {:.3e} -> MinObs {:.3e} / MinObsWin {:.3e}",
//!     run.ser_original, run.minobs.ser, run.minobswin.ser
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod closure;
pub mod closure_inc;
pub mod experiment;
pub mod forest;
pub mod incremental;
pub mod init;
pub mod minobs;
mod problem;
pub mod session;
pub mod supervisor;
pub mod verify;

pub use problem::Problem;
pub use session::SolverSession;
pub use supervisor::{
    CancelToken, Checkpoint, CheckpointSink, DegradationReport, FileCheckpointSink,
    MemoryCheckpointSink, SolveBudget, SolveOutcome, SolveProgress, StopReason, Supervision,
};

use std::error::Error;
use std::fmt;
use std::io;

/// Errors of the MinObsWin solver pipeline.
///
/// This is the unifying error type of the suite: the substrate crates'
/// errors ([`netlist::NetlistError`], [`retime::RetimeError`], and the
/// `ser` engine's, which *are* `RetimeError`) convert into it via
/// `From`, so pipeline code — including the `retimer` CLI — composes
/// with `?`. [`SolveError::exit_code`] maps every variant onto the
/// CLI's stable exit codes.
#[derive(Debug)]
#[non_exhaustive]
pub enum SolveError {
    /// The provided starting retiming violates the instance.
    InfeasibleInitial(String),
    /// The iteration safety cap was hit (indicates a bug: the cap is
    /// far above the paper's `|V|²` bound).
    IterationLimit(usize),
    /// §V initialization failed.
    Initialization(String),
    /// A netlist-level failure (parsing, structure, or wrapped I/O).
    Netlist(netlist::NetlistError),
    /// A retiming-substrate failure (also covers the `ser` engine,
    /// whose analyses report [`retime::RetimeError`]).
    Retime(retime::RetimeError),
    /// An I/O failure outside the netlist parser.
    Io(io::Error),
    /// A checkpoint file could not be read or parsed, or does not
    /// match the instance being resumed.
    Checkpoint(String),
    /// The solver's final verification gate failed even after the
    /// from-scratch re-solve (indicates a bug in the core algorithm,
    /// not the incremental engines).
    Verification(String),
}

impl SolveError {
    /// The stable CLI exit code for this error: `1` infeasible
    /// instance, `2` I/O or parse failure, `3` internal error.
    /// (Success is `0` and "budget exceeded, degraded result emitted"
    /// is `4`; neither is an error.)
    pub fn exit_code(&self) -> u8 {
        match self {
            SolveError::InfeasibleInitial(_) | SolveError::Initialization(_) => 1,
            SolveError::Retime(retime::RetimeError::Infeasible(_)) => 1,
            SolveError::Netlist(_) | SolveError::Io(_) | SolveError::Checkpoint(_) => 2,
            SolveError::IterationLimit(_) | SolveError::Retime(_) | SolveError::Verification(_) => {
                3
            }
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InfeasibleInitial(why) => {
                write!(f, "initial retiming is infeasible: {why}")
            }
            SolveError::IterationLimit(n) => {
                write!(f, "iteration safety cap hit after {n} iterations")
            }
            SolveError::Initialization(why) => write!(f, "initialization failed: {why}"),
            SolveError::Netlist(e) => write!(f, "netlist error: {e}"),
            SolveError::Retime(e) => write!(f, "retiming error: {e}"),
            SolveError::Io(e) => write!(f, "i/o error: {e}"),
            SolveError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            SolveError::Verification(why) => write!(f, "verification failed: {why}"),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Netlist(e) => Some(e),
            SolveError::Retime(e) => Some(e),
            SolveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for SolveError {
    fn from(e: netlist::NetlistError) -> Self {
        SolveError::Netlist(e)
    }
}

impl From<retime::RetimeError> for SolveError {
    fn from(e: retime::RetimeError) -> Self {
        SolveError::Retime(e)
    }
}

impl From<io::Error> for SolveError {
    fn from(e: io::Error) -> Self {
        SolveError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SolveError::IterationLimit(42);
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(SolveError::InfeasibleInitial(String::new()).exit_code(), 1);
        assert_eq!(SolveError::Initialization(String::new()).exit_code(), 1);
        assert_eq!(
            SolveError::from(retime::RetimeError::Infeasible("no slack".into())).exit_code(),
            1
        );
        assert_eq!(
            SolveError::from(io::Error::other("disk on fire")).exit_code(),
            2
        );
        assert_eq!(
            SolveError::from(netlist::NetlistError::EmptyCircuit).exit_code(),
            2
        );
        assert_eq!(SolveError::IterationLimit(1).exit_code(), 3);
        assert_eq!(
            SolveError::from(retime::RetimeError::ZeroWeightCycle).exit_code(),
            3
        );
        assert_eq!(SolveError::Checkpoint(String::new()).exit_code(), 2);
        assert_eq!(SolveError::Verification(String::new()).exit_code(), 3);
    }

    #[test]
    fn wrapped_errors_expose_source() {
        use std::error::Error as _;
        let e = SolveError::from(retime::RetimeError::ZeroWeightCycle);
        assert!(e.source().is_some());
        assert!(SolveError::IterationLimit(0).source().is_none());
    }
}
