//! # minobswin — retiming for soft error minimization under
//! error-latching window constraints
//!
//! A from-scratch Rust reproduction of **Lu & Zhou, DATE 2013**. The
//! paper formulates *Problem 1* — minimize the total observability of a
//! sequential circuit's registers (the logic-masking share of its soft
//! error rate) by retiming, subject to error-latching-window (ELW)
//! constraints that stop the retiming from degrading timing masking —
//! and solves it with an incremental algorithm over a **weighted
//! regular forest**.
//!
//! This crate provides:
//!
//! * [`Problem`]: the instance (gain coefficients `b(v)` from
//!   observability counts, clocking parameters, `R_min`),
//! * [`forest::WeightedRegularForest`]: the paper's §IV data structure,
//! * [`algorithm::solve`]: **Algorithm 1 (MinObsWin)**,
//! * [`minobs::min_obs`]: the *Efficient MinObs* baseline of ref \[17\]
//!   (Algorithm 1 with the P2 machinery disabled),
//! * [`init::initialize`]: the §V choice of `Φ`, `R_min` and the
//!   starting retiming,
//! * [`experiment::run_circuit`]: the end-to-end driver producing a
//!   Table-I row (SER before/after both methods, Δ#FF, timings, `#J`).
//!
//! # Examples
//!
//! ```
//! use minobswin::experiment::{run_circuit, RunConfig};
//! use netlist::samples;
//! # fn main() -> Result<(), minobswin::SolveError> {
//! let circuit = samples::s27_like();
//! let run = run_circuit(&circuit, &RunConfig::small())?;
//! println!(
//!     "SER {:.3e} -> MinObs {:.3e} / MinObsWin {:.3e}",
//!     run.ser_original, run.minobs.ser, run.minobswin.ser
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod closure;
pub mod experiment;
pub mod forest;
pub mod init;
pub mod minobs;
mod problem;
pub mod verify;

pub use problem::Problem;

use std::error::Error;
use std::fmt;

/// Errors of the MinObsWin solver pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The provided starting retiming violates the instance.
    InfeasibleInitial(String),
    /// The iteration safety cap was hit (indicates a bug: the cap is
    /// far above the paper's `|V|²` bound).
    IterationLimit(usize),
    /// §V initialization failed.
    Initialization(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InfeasibleInitial(why) => {
                write!(f, "initial retiming is infeasible: {why}")
            }
            SolveError::IterationLimit(n) => {
                write!(f, "iteration safety cap hit after {n} iterations")
            }
            SolveError::Initialization(why) => write!(f, "initialization failed: {why}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SolveError::IterationLimit(42);
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
