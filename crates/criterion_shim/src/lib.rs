//! # criterion (offline shim)
//!
//! A small, dependency-free stand-in for the [`criterion`] benchmark
//! harness, exposing the subset of its API this workspace's
//! `crates/bench/benches/*.rs` use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The workspace pins its registry to an offline mirror, so the real
//! crate cannot be fetched at build time. This shim keeps `cargo bench`
//! and `cargo test` (which runs bench targets in test mode) working:
//!
//! * under `cargo bench`, every benchmark is warmed up and timed for a
//!   short budget, and a `name  time/iter  (iters)` line is printed —
//!   enough for coarse regression spotting, with none of criterion's
//!   statistics;
//! * under `cargo test` (cargo passes `--test` to bench binaries),
//!   every benchmark body runs exactly once, as a smoke test.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How benchmarks execute: timed (default) or single-shot smoke mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Warm up, then time for a budget and report.
    Measure,
    /// Run each body once without reporting times (`--test`).
    Test,
}

fn mode_from_args() -> Mode {
    // Cargo invokes bench targets with `--test` under `cargo test` and
    // with `--bench` under `cargo bench`; filters and criterion's own
    // flags may follow. Everything except `--test` selects measuring.
    if std::env::args().any(|a| a == "--test") {
        Mode::Test
    } else {
        Mode::Measure
    }
}

/// A benchmark identifier: `name`, or `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// measured routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean nanoseconds per iteration and iteration count, filled by
    /// [`Bencher::iter`].
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`. In test mode it runs exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Test {
            black_box(routine());
            self.result = Some((0.0, 1));
            return;
        }
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(routine());
        let budget = Duration::from_millis(300);
        let max_iters = self.sample_size.max(1) as u64 * 10;
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < max_iters {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
        self.result = Some((nanos, iters));
    }
}

fn run_one<F>(mode: Mode, sample_size: usize, id: &str, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let mut bencher = Bencher {
        mode,
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match (mode, bencher.result) {
        (Mode::Test, _) => println!("test {id} ... ok"),
        (Mode::Measure, Some((nanos, iters))) => {
            println!("{id:<50} {:>14}/iter  ({iters} iters)", human_time(nanos));
        }
        (Mode::Measure, None) => println!("{id:<50} (no iter() call)"),
    }
}

fn human_time(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

/// The shim's benchmark manager; created by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Benchmarks a routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(self.mode, 10, id, |b| f(b));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (the shim uses it only to scale its
    /// iteration cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.mode, self.sample_size, &full, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a routine under the group's prefix.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.mode, self.sample_size, &full, |b| f(b));
        self
    }

    /// Ends the group (report-flushing no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("solve", 64).to_string(), "solve/64");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }

    #[test]
    fn bencher_runs_routines() {
        let mut calls = 0u64;
        run_one(Mode::Test, 10, "smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1, "test mode runs the routine exactly once");

        let mut timed_calls = 0u64;
        run_one(Mode::Measure, 1, "timed", |b| {
            b.iter(|| timed_calls += 1);
        });
        assert!(timed_calls >= 2, "warm-up plus at least one sample");
    }

    #[test]
    fn groups_chain() {
        let mut c = Criterion { mode: Mode::Test };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let data = 21u64;
        group.bench_with_input(BenchmarkId::from_parameter(data), &data, |b, &d| {
            b.iter(|| d * 2)
        });
        group.finish();
    }
}
