//! A minimal JSON value, parser and writer.
//!
//! The workspace deliberately has no external dependencies (the build
//! environment pins crates-io to an offline mirror), so the serve
//! protocol carries its own JSON layer: the subset the newline-
//! delimited protocol needs — objects, arrays, strings with standard
//! escapes, `f64` numbers, booleans, null — parsed by a small
//! recursive-descent parser with a depth limit.

use std::fmt;

/// Maximum nesting depth accepted by the parser; protocol messages are
/// flat objects, so anything deep is hostile input.
const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; the protocol's integers stay well
    /// inside the 2⁵³ exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (the writer preserves it, so
    /// emitted messages are deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// An object from key/value pairs (helper for building messages).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects
    /// fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as a (possibly negative) integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf-8".to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf-8".to_string())?;
                let c = s.chars().next().ok_or_else(|| "bad utf-8".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the 4 hex digits after `\u`; `pos` points at `u` on entry
/// and at the last digit on exit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let start = *pos + 1;
    let hex = bytes
        .get(start..start + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a key string at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let text = r#"{"cmd":"submit","id":"j1","vectors":256,"deep":[1,2.5,-3,true,false,null],"s":"a\"b\\c\nd"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("vectors").and_then(Json::as_u64), Some(256));
        let reprinted = v.to_string();
        assert_eq!(Json::parse(&reprinted).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "{} {}",
            "\"unterminated",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_hostile_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("Aé😀".to_string())
        );
        assert!(Json::parse(r#""\ud800""#).is_err()); // lone surrogate
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(4u32).to_string(), "4");
        assert_eq!(Json::num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(-0.0).to_string(), "0");
    }

    #[test]
    fn control_chars_escape_on_output() {
        let s = Json::Str("a\u{1}b".to_string()).to_string();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("a\u{1}b".to_string()));
    }
}
