//! Job specifications and the per-job state machine.
//!
//! A job is one netlist plus one solve configuration. Its lifecycle
//! maps 1:1 onto the `retimer` CLI's stable exit codes:
//!
//! ```text
//! queued → parsing → levelized → running(iter k) ─┬─ done       exit 0
//!                                                 ├─ degraded   exit 4
//!                                                 ├─ cancelled  exit 4
//!                                                 └─ failed     exit 1|2|3
//! queued ──(deadline_ms elapsed before a worker dequeues)─ expired  exit 5
//! ```

use crate::json::Json;

/// A job identifier (client-chosen or daemon-generated, unique for
/// the daemon's lifetime).
pub type JobId = String;

pub use netlist::NetlistFormat;

/// Parses a protocol name or file extension into a [`NetlistFormat`],
/// with the daemon's error message.
///
/// # Errors
///
/// A message naming the unknown format.
pub fn format_from_name(name: &str) -> Result<NetlistFormat, String> {
    NetlistFormat::from_name(name)
        .ok_or_else(|| format!("unknown netlist format `{name}` (use bench, blif or verilog)"))
}

/// Which optimizer a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// The Efficient MinObs baseline.
    MinObs,
    /// MinObsWin (the paper's Algorithm 1; the default).
    #[default]
    MinObsWin,
}

impl Method {
    /// The protocol name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::MinObs => "minobs",
            Method::MinObsWin => "minobswin",
        }
    }

    /// Parses a protocol name.
    ///
    /// # Errors
    ///
    /// A message naming the unknown method.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "minobs" => Ok(Method::MinObs),
            "minobswin" => Ok(Method::MinObsWin),
            other => Err(format!("unknown method `{other}`")),
        }
    }
}

/// Which closure engine a job's solver uses (part of the config
/// fingerprint; see `cache::config_fingerprint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureChoice {
    /// The warm-started incremental engine (default).
    #[default]
    Warm,
    /// From-scratch Dinic builds every call.
    Fresh,
}

impl ClosureChoice {
    /// The protocol name.
    pub fn name(&self) -> &'static str {
        match self {
            ClosureChoice::Warm => "warm",
            ClosureChoice::Fresh => "fresh",
        }
    }

    /// Parses a protocol name.
    ///
    /// # Errors
    ///
    /// A message naming the unknown engine.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "warm" => Ok(ClosureChoice::Warm),
            "fresh" => Ok(ClosureChoice::Fresh),
            other => Err(format!("unknown closure engine `{other}` (warm|fresh)")),
        }
    }
}

/// One job: a netlist (inline source; the server resolves `path`
/// submissions to content before admission, so the cache is keyed on
/// content, never on file names) plus the solve configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id.
    pub id: JobId,
    /// The netlist text.
    pub source: String,
    /// How to parse [`JobSpec::source`].
    pub format: NetlistFormat,
    /// Which optimizer's result the job reports.
    pub method: Method,
    /// Simulation vectors (default 256).
    pub vectors: usize,
    /// Simulation frames (default 8).
    pub frames: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Per-job simulation worker threads (default 1: the daemon's
    /// parallelism is across jobs). Not part of the config
    /// fingerprint — the SER engine is bit-identical across thread
    /// counts by construction.
    pub threads: usize,
    /// Optional `R_min` override.
    pub r_min: Option<i64>,
    /// Wall-clock budget in seconds (`None`: the daemon default).
    pub time_budget: Option<f64>,
    /// Iteration budget (`None`: the daemon default).
    pub max_iters: Option<usize>,
    /// Solver closure engine.
    pub closure: ClosureChoice,
    /// Admission deadline in milliseconds: if the job is still queued
    /// this long after admission, a worker rejects it as
    /// [`JobState::Expired`] instead of running it (`None`: wait
    /// forever). Not part of the config fingerprint — it decides
    /// whether the job runs, never what the solve produces.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with the daemon defaults for `id` and `source`.
    pub fn new(id: impl Into<JobId>, source: impl Into<String>, format: NetlistFormat) -> Self {
        Self {
            id: id.into(),
            source: source.into(),
            format,
            method: Method::default(),
            vectors: 256,
            frames: 8,
            seed: 0xC0FFEE,
            threads: 1,
            r_min: None,
            time_budget: None,
            max_iters: None,
            closure: ClosureChoice::default(),
            deadline_ms: None,
        }
    }

    /// Serializes to the JSON shape shared by `submit` requests and
    /// the persisted `jobs/<id>.job` recovery files.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::str(&self.id)),
            ("source", Json::str(&self.source)),
            ("format", Json::str(self.format.name())),
            ("method", Json::str(self.method.name())),
            ("vectors", Json::num(self.vectors as f64)),
            ("frames", Json::num(self.frames as f64)),
            ("seed", Json::num(self.seed as f64)),
            ("threads", Json::num(self.threads as f64)),
            ("closure", Json::str(self.closure.name())),
        ];
        if let Some(r) = self.r_min {
            pairs.push(("r_min", Json::num(r as f64)));
        }
        if let Some(t) = self.time_budget {
            pairs.push(("time_budget", Json::num(t)));
        }
        if let Some(n) = self.max_iters {
            pairs.push(("max_iters", Json::num(n as f64)));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::num(ms as f64)));
        }
        Json::obj(pairs)
    }

    /// Parses the JSON shape of [`JobSpec::to_json`] (also the
    /// `submit` request body, minus the server-resolved `path` form).
    ///
    /// # Errors
    ///
    /// A message describing the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or("missing string field `id`")?
            .to_string();
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or("missing string field `source`")?
            .to_string();
        let format = format_from_name(
            v.get("format")
                .and_then(Json::as_str)
                .ok_or("missing string field `format`")?,
        )?;
        let mut spec = JobSpec::new(id, source, format);
        if let Some(m) = v.get("method") {
            spec.method = Method::from_name(m.as_str().ok_or("`method` must be a string")?)?;
        }
        if let Some(c) = v.get("closure") {
            spec.closure =
                ClosureChoice::from_name(c.as_str().ok_or("`closure` must be a string")?)?;
        }
        let uint = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("`{key}` must be a non-negative integer")),
            }
        };
        if let Some(n) = uint("vectors")? {
            // The SER engine's bit-packed signatures require a
            // positive multiple of 64.
            if n == 0 || n % 64 != 0 {
                return Err("`vectors` must be a positive multiple of 64".into());
            }
            spec.vectors = n as usize;
        }
        if let Some(n) = uint("frames")? {
            if n == 0 {
                return Err("`frames` must be positive".into());
            }
            spec.frames = n as usize;
        }
        if let Some(n) = uint("seed")? {
            spec.seed = n;
        }
        if let Some(n) = uint("threads")? {
            spec.threads = n as usize;
        }
        if let Some(n) = uint("max_iters")? {
            spec.max_iters = Some(n as usize);
        }
        if let Some(ms) = uint("deadline_ms")? {
            spec.deadline_ms = Some(ms);
        }
        if let Some(r) = v.get("r_min") {
            spec.r_min = Some(r.as_i64().ok_or("`r_min` must be an integer")?);
        }
        if let Some(t) = v.get("time_budget") {
            let secs = t.as_f64().ok_or("`time_budget` must be a number")?;
            if !secs.is_finite() || secs < 0.0 {
                return Err("`time_budget` must be non-negative".into());
            }
            spec.time_budget = Some(secs);
        }
        Ok(spec)
    }
}

/// Where a job is in its lifecycle. Terminal states map 1:1 onto the
/// CLI's stable exit codes (see [`JobState::exit_code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is parsing the netlist.
    Parsing,
    /// Parsed and levelized; the solve is starting.
    Levelized,
    /// Solving (latest streamed progress).
    Running {
        /// Which method is currently solving.
        method: &'static str,
        /// Total solver iterations so far.
        iterations: usize,
        /// Committed improvement rounds so far.
        commits: usize,
    },
    /// Completed; the result netlist is available (exit 0).
    Done,
    /// A budget expired; the best feasible retiming was emitted
    /// (exit 4).
    Degraded,
    /// Cancelled by request, before or during the solve (exit 4: the
    /// cancellation travels the same budget-stop path).
    Cancelled,
    /// The job failed (exit 1 infeasible, 2 parse/I-O, 3 internal).
    Failed {
        /// The stable exit code the one-shot CLI would have returned.
        exit: u8,
        /// The error message.
        error: String,
    },
    /// Still queued when its [`JobSpec::deadline_ms`] elapsed; a
    /// worker rejected it without running the solve (exit 5 — the
    /// first code beyond the one-shot CLI's 0–4 range, since a
    /// one-shot run has no queue to expire in).
    Expired,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done
                | JobState::Degraded
                | JobState::Cancelled
                | JobState::Failed { .. }
                | JobState::Expired
        )
    }

    /// The stable exit code of a terminal state (`None` while the job
    /// is still live).
    pub fn exit_code(&self) -> Option<u8> {
        match self {
            JobState::Done => Some(0),
            JobState::Degraded | JobState::Cancelled => Some(4),
            JobState::Failed { exit, .. } => Some(*exit),
            JobState::Expired => Some(5),
            _ => None,
        }
    }

    /// The protocol status string.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Parsing => "parsing",
            JobState::Levelized => "levelized",
            JobState::Running { .. } => "running",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::Cancelled => "cancelled",
            JobState::Failed { .. } => "failed",
            JobState::Expired => "expired",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::new("j1", "INPUT(a)\nOUTPUT(a)\n", NetlistFormat::Bench);
        spec.method = Method::MinObs;
        spec.r_min = Some(-3);
        spec.time_budget = Some(1.5);
        spec.max_iters = Some(99);
        spec.closure = ClosureChoice::Fresh;
        spec.deadline_ms = Some(2_500);
        let json = spec.to_json().to_string();
        let back = JobSpec::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_rejects_bad_fields() {
        let bad = |s: &str| JobSpec::from_json(&Json::parse(s).unwrap()).unwrap_err();
        assert!(bad(r#"{"source":"x","format":"bench"}"#).contains("id"));
        assert!(bad(r#"{"id":"a","source":"x","format":"edif"}"#).contains("edif"));
        assert!(bad(r#"{"id":"a","source":"x","format":"bench","vectors":0}"#).contains("vectors"));
        assert!(
            bad(r#"{"id":"a","source":"x","format":"bench","time_budget":-1}"#)
                .contains("time_budget")
        );
        assert!(bad(r#"{"id":"a","source":"x","format":"bench","method":7}"#).contains("method"));
    }

    #[test]
    fn exit_codes_map_one_to_one() {
        assert_eq!(JobState::Done.exit_code(), Some(0));
        assert_eq!(JobState::Degraded.exit_code(), Some(4));
        assert_eq!(JobState::Cancelled.exit_code(), Some(4));
        assert_eq!(
            JobState::Failed {
                exit: 2,
                error: String::new()
            }
            .exit_code(),
            Some(2)
        );
        assert_eq!(JobState::Expired.exit_code(), Some(5));
        assert_eq!(JobState::Expired.name(), "expired");
        assert_eq!(JobState::Queued.exit_code(), None);
        assert!(!JobState::Parsing.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Expired.is_terminal());
    }
}
