//! `retimer serve`: a concurrent retiming daemon.
//!
//! This crate turns the one-shot solver pipeline into a long-running
//! service:
//!
//! - **Protocol** ([`server`]): newline-delimited JSON over
//!   stdin/stdout or a unix socket — `submit` / `status` / `cancel` /
//!   `result` / `stats` / `drain`, with per-job progress events
//!   (`queued → parsing → parsed → levelized → iteration → done`)
//!   whose terminal statuses map 1:1 onto the CLI's stable exit codes
//!   0–4.
//! - **Daemon** ([`daemon`]): a bounded admission queue with
//!   backpressure, a worker pool sized by the same
//!   explicit-flag → `SER_THREADS` → hardware precedence as every
//!   other parallel surface, per-job cancellation tokens and budget
//!   defaults, and a graceful drain.
//! - **Cache** ([`cache`]): content-addressed storage keyed on tagged
//!   FNV digests (`fnv1a-v1:…`) with independent entries for the
//!   parsed netlist, the levelization and the solve result;
//!   resubmitting a completed job is a counter-verified cache hit. Job
//!   specs persist until terminal, so a killed daemon re-enqueues
//!   in-flight jobs on restart and resumes their solver checkpoints.
//!
//! The serialization layer ([`json`]) is hand-rolled: the workspace
//! deliberately has no external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod job;
pub mod json;
pub mod server;

pub use cache::{config_fingerprint, CacheCounters, ResultCache};
pub use daemon::{Daemon, Event, ServeConfig, SubmitError};
pub use job::{format_from_name, ClosureChoice, JobSpec, JobState, Method, NetlistFormat};
#[cfg(unix)]
pub use server::run_socket;
pub use server::run_stdio;
