//! Protocol frontends: newline-delimited JSON over stdin/stdout, or
//! over a unix socket with one reader thread per connection.
//!
//! One request per line; responses and asynchronous job events share
//! the output stream, every line a single JSON object tagged with an
//! `"event"` field. Closing stdin (or sending `{"op":"drain"}`) drains
//! the daemon: admission stops, queued and running jobs finish, the
//! final `{"event":"drained"}` line is written, and the process exits
//! cleanly. The process installs no signal handlers — a supervisor
//! that wants a graceful stop closes the daemon's input, which is the
//! portable equivalent of SIGTERM here.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::daemon::{Daemon, Event, ServeConfig, SubmitError};
use crate::job::{JobSpec, JobState, NetlistFormat};
use crate::json::Json;

/// A line sink shared by the request handler and the event pump.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(w: &SharedWriter, v: &Json) {
    let mut w = w.lock().expect("writer poisoned");
    let _ = writeln!(w, "{v}");
    let _ = w.flush();
}

/// Serializes a daemon event onto the wire.
pub fn event_to_json(event: &Event) -> Json {
    let base = |kind: &str, id: &str| vec![("event", Json::str(kind)), ("id", Json::str(id))];
    match event {
        Event::Queued { id } => Json::obj(base("queued", id)),
        Event::Parsing { id } => Json::obj(base("parsing", id)),
        Event::Parsed {
            id,
            key,
            gates,
            cached,
        } => {
            let mut o = base("parsed", id);
            o.push(("key", Json::str(key)));
            o.push(("gates", Json::num(*gates as f64)));
            o.push(("cached", Json::Bool(*cached)));
            Json::obj(o)
        }
        Event::Levelized { id, levels, cached } => {
            let mut o = base("levelized", id);
            o.push(("levels", Json::num(*levels as f64)));
            o.push(("cached", Json::Bool(*cached)));
            Json::obj(o)
        }
        Event::Iteration {
            id,
            method,
            iterations,
            commits,
        } => {
            let mut o = base("iteration", id);
            o.push(("method", Json::str(*method)));
            o.push(("iterations", Json::num(*iterations as f64)));
            o.push(("commits", Json::num(*commits as f64)));
            Json::obj(o)
        }
        Event::Terminal {
            id,
            state,
            cached,
            key,
        } => {
            let mut o = base("done", id);
            o.push(("status", Json::str(state.name())));
            o.push(("exit", Json::num(f64::from(state.exit_code().unwrap_or(3)))));
            o.push(("cached", Json::Bool(*cached)));
            if let Some(key) = key {
                o.push(("key", Json::str(key)));
            }
            if let JobState::Failed { error, .. } = state {
                o.push(("error", Json::str(error)));
            }
            Json::obj(o)
        }
        Event::Drained => Json::obj(vec![("event", Json::str("drained"))]),
    }
}

fn job_state_json(id: &str, state: &JobState) -> Json {
    let mut o = vec![
        ("event", Json::str("status")),
        ("id", Json::str(id)),
        ("state", Json::str(state.name())),
    ];
    if let Some(exit) = state.exit_code() {
        o.push(("exit", Json::num(f64::from(exit))));
    }
    if let JobState::Running {
        method,
        iterations,
        commits,
    } = state
    {
        o.push(("method", Json::str(*method)));
        o.push(("iterations", Json::num(*iterations as f64)));
        o.push(("commits", Json::num(*commits as f64)));
    }
    if let JobState::Failed { error, .. } = state {
        o.push(("error", Json::str(error)));
    }
    Json::obj(o)
}

fn error_json(context: &str, message: &str) -> Json {
    Json::obj(vec![
        ("event", Json::str("error")),
        ("context", Json::str(context)),
        ("reason", Json::str(message)),
    ])
}

/// Builds a [`JobSpec`] from a `submit` request object, resolving a
/// `"path"` submission to inline content and generating an id when the
/// client did not choose one.
fn spec_from_request(v: &Json, next_id: &AtomicU64) -> Result<JobSpec, String> {
    let mut obj = match v {
        Json::Obj(pairs) => pairs.clone(),
        _ => return Err("submit body must be an object".into()),
    };
    if let Some(path) = v.get("path").and_then(Json::as_str) {
        if v.get("source").is_some() {
            return Err("give `source` or `path`, not both".into());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        obj.push(("source".into(), Json::Str(text)));
        if v.get("format").is_none() {
            let ext = Path::new(path)
                .extension()
                .and_then(|e| e.to_str())
                .unwrap_or("");
            let format = NetlistFormat::from_name(ext)
                .ok_or_else(|| format!("cannot infer a netlist format from `{path}`"))?;
            obj.push(("format".into(), Json::str(format.name())));
        }
        obj.retain(|(k, _)| k != "path");
    }
    if v.get("id").is_none() {
        let n = next_id.fetch_add(1, Ordering::Relaxed);
        obj.push(("id".into(), Json::str(format!("job-{n}"))));
    }
    JobSpec::from_json(&Json::Obj(obj))
}

fn submit_error_json(id: Option<&str>, err: &SubmitError) -> Json {
    let mut o = vec![
        ("event", Json::str("rejected")),
        ("reason", Json::str(err.to_string())),
    ];
    if let Some(id) = id {
        o.insert(1, ("id", Json::str(id)));
    }
    if matches!(err, SubmitError::QueueFull { .. }) {
        o.push(("retry", Json::Bool(true)));
    }
    Json::obj(o)
}

/// Handles one request line. Returns `true` when the connection asked
/// the daemon to drain.
fn handle_request(daemon: &Daemon, line: &str, out: &SharedWriter, next_id: &AtomicU64) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            write_line(out, &error_json("parse", &e));
            return false;
        }
    };
    let op = v.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "submit" => match spec_from_request(&v, next_id) {
            Ok(spec) => {
                let id = spec.id.clone();
                match daemon.submit(spec) {
                    Ok(()) => write_line(
                        out,
                        &Json::obj(vec![
                            ("event", Json::str("accepted")),
                            ("id", Json::str(&id)),
                        ]),
                    ),
                    Err(e) => write_line(out, &submit_error_json(Some(&id), &e)),
                }
            }
            Err(e) => write_line(out, &error_json("submit", &e)),
        },
        "status" => match v.get("id").and_then(Json::as_str) {
            Some(id) => match daemon.status(id) {
                Some(state) => write_line(out, &job_state_json(id, &state)),
                None => write_line(out, &error_json("status", &format!("unknown job `{id}`"))),
            },
            None => write_line(out, &error_json("status", "missing `id`")),
        },
        "result" => match v.get("id").and_then(Json::as_str) {
            Some(id) => match daemon.result(id) {
                Some((netlist, report)) => write_line(
                    out,
                    &Json::obj(vec![
                        ("event", Json::str("result")),
                        ("id", Json::str(id)),
                        ("netlist", Json::Str(netlist)),
                        ("report", report),
                    ]),
                ),
                None => write_line(
                    out,
                    &error_json("result", &format!("no completed result for `{id}`")),
                ),
            },
            None => write_line(out, &error_json("result", "missing `id`")),
        },
        "cancel" => match v.get("id").and_then(Json::as_str) {
            Some(id) => write_line(
                out,
                &Json::obj(vec![
                    ("event", Json::str("cancel")),
                    ("id", Json::str(id)),
                    ("ok", Json::Bool(daemon.cancel(id))),
                ]),
            ),
            None => write_line(out, &error_json("cancel", "missing `id`")),
        },
        "stats" => {
            let (queued, running, terminal) = daemon.population();
            write_line(
                out,
                &Json::obj(vec![
                    ("event", Json::str("stats")),
                    ("queued", Json::num(queued as f64)),
                    ("running", Json::num(running as f64)),
                    ("terminal", Json::num(terminal as f64)),
                    ("workers", Json::num(daemon.worker_count as f64)),
                    ("cache", daemon.cache().counters.to_json()),
                ]),
            );
        }
        "drain" => {
            write_line(out, &Json::obj(vec![("event", Json::str("draining"))]));
            return true;
        }
        other => write_line(
            out,
            &error_json("request", &format!("unknown op `{other}`")),
        ),
    }
    false
}

/// Runs the stdin/stdout frontend to completion: boots the daemon,
/// pumps events, serves requests until EOF or `drain`, drains, and
/// returns the process exit code (always 0 on a clean drain).
///
/// # Errors
///
/// Returns the daemon boot failure message (cache directory not
/// creatable) — request-level failures are protocol responses, not
/// errors.
pub fn run_stdio(config: ServeConfig) -> Result<u8, String> {
    let stdin = std::io::stdin();
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    run_over(config, BufReader::new(stdin.lock()), out)
}

/// [`run_stdio`] over arbitrary streams (tests drive this with pipes).
///
/// # Errors
///
/// See [`run_stdio`].
pub fn run_over(config: ServeConfig, input: impl BufRead, out: SharedWriter) -> Result<u8, String> {
    let daemon = Daemon::start(config).map_err(|e| format!("starting daemon: {e}"))?;
    let events = daemon.events().expect("fresh daemon has an event stream");
    write_line(
        &out,
        &Json::obj(vec![
            ("event", Json::str("ready")),
            ("workers", Json::num(daemon.worker_count as f64)),
            ("queue_capacity", Json::num(daemon.queue_capacity() as f64)),
        ]),
    );

    let pump = {
        let out = Arc::clone(&out);
        std::thread::Builder::new()
            .name("serve-events".into())
            .spawn(move || {
                for event in events {
                    write_line(&out, &event_to_json(&event));
                }
            })
            .expect("spawning the event pump")
    };

    let next_id = AtomicU64::new(1);
    for line in input.lines() {
        let Ok(line) = line else { break };
        if handle_request(&daemon, &line, &out, &next_id) {
            break;
        }
    }

    // EOF or an explicit drain request: finish everything admitted.
    daemon.drain();
    daemon.close_events(); // the pump sees the channel close
    let _ = pump.join();
    Ok(0)
}

/// Runs the unix-socket frontend: accepts connections on `socket`,
/// one request per line per connection, events broadcast to every
/// connected client. Returns on `drain` (from any client).
///
/// # Errors
///
/// Returns bind/boot failure messages.
#[cfg(unix)]
pub fn run_socket(config: ServeConfig, socket: &Path) -> Result<u8, String> {
    use std::os::unix::net::UnixListener;
    use std::sync::atomic::AtomicBool;

    let _ = std::fs::remove_file(socket);
    let listener =
        UnixListener::bind(socket).map_err(|e| format!("binding {}: {e}", socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket setup: {e}"))?;

    let daemon = Daemon::start(config).map_err(|e| format!("starting daemon: {e}"))?;
    let events = daemon.events().expect("fresh daemon has an event stream");
    let clients: Arc<Mutex<Vec<SharedWriter>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let pump = {
        let clients = Arc::clone(&clients);
        std::thread::Builder::new()
            .name("serve-events".into())
            .spawn(move || {
                for event in events {
                    let line = event_to_json(&event);
                    for client in clients.lock().expect("client registry poisoned").iter() {
                        write_line(client, &line);
                    }
                }
            })
            .expect("spawning the event pump")
    };

    let daemon = Arc::new(daemon);
    let next_id = Arc::new(AtomicU64::new(1));
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(
                    stream
                        .try_clone()
                        .map_err(|e| format!("socket clone: {e}"))?,
                )));
                clients
                    .lock()
                    .expect("client registry poisoned")
                    .push(Arc::clone(&writer));
                write_line(
                    &writer,
                    &Json::obj(vec![
                        ("event", Json::str("ready")),
                        ("workers", Json::num(daemon.worker_count as f64)),
                    ]),
                );
                let daemon = Arc::clone(&daemon);
                let stop = Arc::clone(&stop);
                let next_id = Arc::clone(&next_id);
                // Readers are deliberately detached: a quiet client
                // blocked in `read` must not wedge the drain path.
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        for line in BufReader::new(stream).lines() {
                            let Ok(line) = line else { break };
                            if handle_request(&daemon, &line, &writer, &next_id) {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    })
                    .expect("spawning a connection reader");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }

    daemon.drain();
    daemon.close_events();
    let _ = pump.join();
    let _ = std::fs::remove_file(socket);
    Ok(0)
}
