//! The content-addressed result cache.
//!
//! Three independent stages, each keyed on content rather than on file
//! names or submission order:
//!
//! | stage     | key                                    | payload                     |
//! |-----------|----------------------------------------|-----------------------------|
//! | `netlist` | digest of the raw submitted bytes      | canonical `.bench` text     |
//! | `levels`  | digest of the canonical circuit        | levelization summary (JSON) |
//! | `result`  | circuit digest + config fingerprint    | retimed `.bench` + report   |
//!
//! Keys embed the self-describing `fnv1a-v1:` tag, so a cache
//! directory written by one digest scheme can never be silently
//! misread by another. All writes are atomic (`tmp` + rename): a
//! killed daemon leaves either the old entry or the new one, never a
//! torn file.
//!
//! Only clean exit-0 results are cached. Degraded results depend on
//! where a wall-clock budget happened to expire, so caching them would
//! let one slow run poison every future resubmission.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use netlist::digest::{content_digest, format_digest, parse_digest, Fnv1a};

use crate::job::{ClosureChoice, JobSpec, Method};
use crate::json::Json;

/// Hit/miss counters for each cache stage. The soak test uses
/// [`CacheCounters::result_hits`] to prove a resubmission was served
/// from the cache rather than re-solved.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Netlist-stage hits.
    pub netlist_hits: AtomicU64,
    /// Netlist-stage misses.
    pub netlist_misses: AtomicU64,
    /// Levelization-stage hits.
    pub levels_hits: AtomicU64,
    /// Levelization-stage misses.
    pub levels_misses: AtomicU64,
    /// Result-stage hits.
    pub result_hits: AtomicU64,
    /// Result-stage misses.
    pub result_misses: AtomicU64,
}

impl CacheCounters {
    /// Current result-stage hit count.
    pub fn result_hits(&self) -> u64 {
        self.result_hits.load(Ordering::Relaxed)
    }

    /// A JSON snapshot (the `stats` protocol response body).
    pub fn to_json(&self) -> Json {
        let n = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        Json::obj(vec![
            ("netlist_hits", n(&self.netlist_hits)),
            ("netlist_misses", n(&self.netlist_misses)),
            ("levels_hits", n(&self.levels_hits)),
            ("levels_misses", n(&self.levels_misses)),
            ("result_hits", n(&self.result_hits)),
            ("result_misses", n(&self.result_misses)),
        ])
    }
}

/// The on-disk cache rooted at one directory.
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    /// Stage hit/miss counters.
    pub counters: CacheCounters,
}

/// A cached levelization summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelsEntry {
    /// Combinational levels.
    pub levels: usize,
    /// Total gates.
    pub gates: usize,
    /// Registers.
    pub registers: usize,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root` with the
    /// stage subdirectories `netlist/`, `levels/`, `result/` and
    /// `jobs/`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        for sub in ["netlist", "levels", "result", "jobs"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Self {
            root,
            counters: CacheCounters::default(),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The checkpoint path prefix for a result key: in-flight solver
    /// checkpoints live next to the job files so a restarted daemon
    /// resumes them.
    pub fn checkpoint_prefix(&self, result_key: &str) -> PathBuf {
        self.root.join("jobs").join(result_key)
    }

    // ----- netlist stage -------------------------------------------------

    /// The netlist-stage key for raw submitted bytes.
    pub fn netlist_key(source: &str) -> String {
        format_digest(content_digest(source.as_bytes()))
    }

    /// Looks up the canonical `.bench` text for a netlist key.
    pub fn lookup_netlist(&self, key: &str) -> Option<String> {
        let hit = read_valid(&self.stage_path("netlist", key, "bench"));
        self.count(
            hit.is_some(),
            &self.counters.netlist_hits,
            &self.counters.netlist_misses,
        );
        hit
    }

    /// Stores the canonical `.bench` text for a netlist key.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers may treat the cache as
    /// best-effort and continue).
    pub fn store_netlist(&self, key: &str, canonical_bench: &str) -> io::Result<()> {
        write_atomic(&self.stage_path("netlist", key, "bench"), canonical_bench)
    }

    // ----- levels stage --------------------------------------------------

    /// Looks up the levelization summary for a circuit digest key.
    pub fn lookup_levels(&self, key: &str) -> Option<LevelsEntry> {
        let hit = read_valid(&self.stage_path("levels", key, "json")).and_then(|text| {
            let v = Json::parse(&text).ok()?;
            Some(LevelsEntry {
                levels: v.get("levels")?.as_u64()? as usize,
                gates: v.get("gates")?.as_u64()? as usize,
                registers: v.get("registers")?.as_u64()? as usize,
            })
        });
        self.count(
            hit.is_some(),
            &self.counters.levels_hits,
            &self.counters.levels_misses,
        );
        hit
    }

    /// Stores a levelization summary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn store_levels(&self, key: &str, entry: LevelsEntry) -> io::Result<()> {
        let body = Json::obj(vec![
            ("levels", Json::num(entry.levels as f64)),
            ("gates", Json::num(entry.gates as f64)),
            ("registers", Json::num(entry.registers as f64)),
        ]);
        write_atomic(&self.stage_path("levels", key, "json"), &body.to_string())
    }

    // ----- result stage --------------------------------------------------

    /// The result-stage key: circuit digest plus config fingerprint.
    pub fn result_key(circuit_key: &str, fingerprint: u64) -> String {
        format!("{circuit_key}-{fingerprint:016x}")
    }

    /// Looks up a completed result: the retimed `.bench` text and the
    /// JSON report stored by [`ResultCache::store_result`].
    pub fn lookup_result(&self, key: &str) -> Option<(String, Json)> {
        let hit = (|| {
            let bench = read_valid(&self.stage_path("result", key, "bench"))?;
            let meta = Json::parse(&read_valid(&self.stage_path("result", key, "meta"))?).ok()?;
            Some((bench, meta))
        })();
        self.count(
            hit.is_some(),
            &self.counters.result_hits,
            &self.counters.result_misses,
        );
        hit
    }

    /// [`ResultCache::lookup_result`] without touching the hit/miss
    /// counters — for `result` queries about an already-completed job,
    /// which say nothing about cache effectiveness.
    pub fn peek_result(&self, key: &str) -> Option<(String, Json)> {
        let bench = read_valid(&self.stage_path("result", key, "bench"))?;
        let meta = Json::parse(&read_valid(&self.stage_path("result", key, "meta"))?).ok()?;
        Some((bench, meta))
    }

    /// Stores a completed (exit-0) result.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn store_result(&self, key: &str, bench: &str, meta: &Json) -> io::Result<()> {
        write_atomic(&self.stage_path("result", key, "bench"), bench)?;
        write_atomic(&self.stage_path("result", key, "meta"), &meta.to_string())
    }

    // ----- job persistence (restart recovery) ----------------------------

    /// Persists a job spec to `jobs/<id>.job` so a killed daemon can
    /// re-enqueue it on restart.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn persist_job(&self, spec: &JobSpec) -> io::Result<()> {
        write_atomic(&self.job_path(&spec.id), &spec.to_json().to_string())
    }

    /// Removes the persisted spec of a terminal job (best-effort).
    pub fn remove_job(&self, id: &str) {
        let _ = fs::remove_file(self.job_path(id));
    }

    /// Scans `jobs/` for specs persisted by a previous daemon process,
    /// in sorted order. Unreadable entries are skipped.
    pub fn scan_jobs(&self) -> Vec<JobSpec> {
        let mut paths: Vec<PathBuf> = fs::read_dir(self.root.join("jobs"))
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "job"))
                    .collect()
            })
            .unwrap_or_default();
        paths.sort();
        paths
            .iter()
            .filter_map(|p| {
                let text = fs::read_to_string(p).ok()?;
                JobSpec::from_json(&Json::parse(&text).ok()?).ok()
            })
            .collect()
    }

    fn stage_path(&self, stage: &str, key: &str, ext: &str) -> PathBuf {
        self.root.join(stage).join(format!("{key}.{ext}"))
    }

    fn job_path(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{id}.job"))
    }

    fn count(&self, hit: bool, hits: &AtomicU64, misses: &AtomicU64) {
        if hit { hits } else { misses }.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reads a stage entry, but only if its key carries the digest tag
/// this build understands: a cache written by a future `fnv2-…` scheme
/// is skipped (a miss), never misinterpreted.
fn read_valid(path: &Path) -> Option<String> {
    let stem = path.file_stem()?.to_str()?;
    // Result keys are `<tag>:<hex>-<fp>`; stage keys are `<tag>:<hex>`.
    // The tag itself contains `-`, so split after the `:`-delimited
    // hex run, not on the first dash.
    let colon = stem.find(':')?;
    let hex_end = stem[colon + 1..]
        .find('-')
        .map_or(stem.len(), |i| colon + 1 + i);
    if parse_digest(&stem[..hex_end]).is_err() {
        return None;
    }
    fs::read_to_string(path).ok()
}

fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// The solve-configuration fingerprint half of a result key.
///
/// Every knob that can change the result (or whether the solve
/// completes cleanly) is hashed: method, simulation shape and seed,
/// `R_min` override, both budget axes and the closure engine. The
/// thread count is deliberately **excluded** — the SER engine is
/// bit-identical for every worker count, so the same circuit solved
/// with 1 or 8 threads shares one cache entry.
pub fn config_fingerprint(spec: &JobSpec) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("serve-config-v1");
    h.write_str(match spec.method {
        Method::MinObs => "minobs",
        Method::MinObsWin => "minobswin",
    });
    h.write_u64(spec.vectors as u64);
    h.write_u64(spec.frames as u64);
    h.write_u64(spec.seed);
    match spec.r_min {
        None => h.write_str("rmin-default"),
        Some(r) => {
            h.write_str("rmin-override");
            h.write_i64(r);
        }
    }
    match spec.time_budget {
        None => h.write_str("time-default"),
        Some(secs) => {
            h.write_str("time-budget");
            h.write_u64(secs.to_bits());
        }
    }
    match spec.max_iters {
        None => h.write_str("iters-default"),
        Some(n) => {
            h.write_str("iters-budget");
            h.write_u64(n as u64);
        }
    }
    h.write_str(match spec.closure {
        ClosureChoice::Warm => "closure-warm",
        ClosureChoice::Fresh => "closure-fresh",
    });
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::NetlistFormat;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stages_round_trip_and_count() {
        let cache = ResultCache::open(tmpdir("stages")).unwrap();
        let key = ResultCache::netlist_key("INPUT(a)\n");
        assert!(key.starts_with("fnv1a-v1:"));
        assert!(cache.lookup_netlist(&key).is_none());
        cache.store_netlist(&key, "canonical").unwrap();
        assert_eq!(cache.lookup_netlist(&key).as_deref(), Some("canonical"));

        let entry = LevelsEntry {
            levels: 4,
            gates: 17,
            registers: 3,
        };
        cache.store_levels(&key, entry).unwrap();
        assert_eq!(cache.lookup_levels(&key), Some(entry));

        let rkey = ResultCache::result_key(&key, 0xabcd);
        assert!(cache.lookup_result(&rkey).is_none());
        let meta = Json::obj(vec![("exit", Json::num(0.0))]);
        cache.store_result(&rkey, "retimed", &meta).unwrap();
        let (bench, back) = cache.lookup_result(&rkey).unwrap();
        assert_eq!(bench, "retimed");
        assert_eq!(back.get("exit").and_then(Json::as_u64), Some(0));

        assert_eq!(cache.counters.netlist_hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.netlist_misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.result_hits(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn untagged_keys_are_misses() {
        let cache = ResultCache::open(tmpdir("tags")).unwrap();
        // Simulate an entry written by a different digest scheme.
        fs::write(cache.root().join("netlist/deadbeef.bench"), "old").unwrap();
        assert!(cache.lookup_netlist("deadbeef").is_none());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn job_persistence_round_trips() {
        let cache = ResultCache::open(tmpdir("jobs")).unwrap();
        let spec = JobSpec::new("job-7", "INPUT(a)\n", NetlistFormat::Bench);
        cache.persist_job(&spec).unwrap();
        assert_eq!(cache.scan_jobs(), vec![spec.clone()]);
        cache.remove_job(&spec.id);
        assert!(cache.scan_jobs().is_empty());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn fingerprint_separates_configs() {
        let base = JobSpec::new("a", "x", NetlistFormat::Bench);
        let fp = config_fingerprint(&base);
        let mut other = base.clone();
        other.id = "different-id".into();
        other.threads = 8;
        assert_eq!(config_fingerprint(&other), fp, "id/threads excluded");

        let mut m = base.clone();
        m.method = Method::MinObs;
        assert_ne!(config_fingerprint(&m), fp);
        let mut r = base.clone();
        r.r_min = Some(0);
        assert_ne!(config_fingerprint(&r), fp);
        let mut t = base.clone();
        t.time_budget = Some(5.0);
        assert_ne!(config_fingerprint(&t), fp);
        let mut c = base.clone();
        c.closure = ClosureChoice::Fresh;
        assert_ne!(config_fingerprint(&c), fp);
    }
}
