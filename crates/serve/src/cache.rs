//! The content-addressed result cache, with self-healing storage.
//!
//! Three independent stages, each keyed on content rather than on file
//! names or submission order:
//!
//! | stage     | key                                    | payload                     |
//! |-----------|----------------------------------------|-----------------------------|
//! | `netlist` | digest of the raw submitted bytes      | canonical `.bench` text     |
//! | `levels`  | digest of the canonical circuit        | levelization summary (JSON) |
//! | `result`  | circuit digest + config fingerprint    | retimed `.bench` + report   |
//!
//! Keys embed the self-describing `fnv1a-v1:` tag, so a cache
//! directory written by one digest scheme can never be silently
//! misread by another. All writes go through the fault-injectable
//! `netlist::fio` shim: atomic (`.tmp` + rename, so a killed daemon
//! leaves either the old entry or the new one) **and sealed** — every
//! entry carries an embedded content digest written atomically with
//! the payload.
//!
//! **Verify-on-read**: every read re-hashes the payload against its
//! seal. A torn, bit-flipped or otherwise undecodable entry is moved
//! to `quarantine/` (preserved for inspection, never served, never
//! rewritten in place), a structured warning is printed, and the
//! lookup reports a miss so the pipeline recomputes. Corrupt bytes
//! are never returned to a caller.
//!
//! **Size budget**: with [`ResultCache::with_max_bytes`] set, every
//! store is followed by an LRU eviction pass over the three stage
//! directories (mtime-ordered; hits touch their entry's mtime, so
//! recency survives restarts without a sidecar). `jobs/` — recovery
//! files and in-flight checkpoints — is never evicted.
//!
//! Only clean exit-0 results are cached. Degraded results depend on
//! where a wall-clock budget happened to expire, so caching them would
//! let one slow run poison every future resubmission.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use netlist::digest::{content_digest, format_digest, parse_digest, Fnv1a};
use netlist::fio;

use crate::job::{ClosureChoice, JobSpec, Method};
use crate::json::Json;

/// Hit/miss and health counters for the cache. The soak test uses
/// [`CacheCounters::result_hits`] to prove a resubmission was served
/// from the cache rather than re-solved; the chaos soak uses the
/// health counters to prove corruption was detected and contained.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Netlist-stage hits.
    pub netlist_hits: AtomicU64,
    /// Netlist-stage misses.
    pub netlist_misses: AtomicU64,
    /// Levelization-stage hits.
    pub levels_hits: AtomicU64,
    /// Levelization-stage misses.
    pub levels_misses: AtomicU64,
    /// Result-stage hits.
    pub result_hits: AtomicU64,
    /// Result-stage misses.
    pub result_misses: AtomicU64,
    /// Entries that failed verify-on-read (or fsck) and were moved to
    /// `quarantine/`.
    pub quarantined: AtomicU64,
    /// Eviction units removed by the size-budget pass (a result
    /// `bench`+`meta` pair counts once).
    pub evictions: AtomicU64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: AtomicU64,
    /// Failed deletions of terminal jobs' recovery files — previously
    /// swallowed silently; now counted and surfaced in `stats`.
    pub remove_failures: AtomicU64,
}

impl CacheCounters {
    /// Current result-stage hit count.
    pub fn result_hits(&self) -> u64 {
        self.result_hits.load(Ordering::Relaxed)
    }

    /// Current quarantine count.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Current eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Current count of failed recovery-file deletions.
    pub fn remove_failures(&self) -> u64 {
        self.remove_failures.load(Ordering::Relaxed)
    }

    /// A JSON snapshot (the `stats` protocol response body).
    pub fn to_json(&self) -> Json {
        let n = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
        Json::obj(vec![
            ("netlist_hits", n(&self.netlist_hits)),
            ("netlist_misses", n(&self.netlist_misses)),
            ("levels_hits", n(&self.levels_hits)),
            ("levels_misses", n(&self.levels_misses)),
            ("result_hits", n(&self.result_hits)),
            ("result_misses", n(&self.result_misses)),
            ("quarantined", n(&self.quarantined)),
            ("evictions", n(&self.evictions)),
            ("evicted_bytes", n(&self.evicted_bytes)),
            ("remove_failures", n(&self.remove_failures)),
        ])
    }
}

/// What a startup (or `retimer serve --fsck`) integrity pass found and
/// fixed. See [`ResultCache::fsck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Orphaned `.tmp` files removed (interrupted atomic writes).
    pub tmp_removed: usize,
    /// Entries quarantined: bad seal, foreign digest tag, undecodable
    /// job spec or checkpoint.
    pub quarantined: usize,
    /// Healthy entries kept across the three stage directories.
    pub entries: usize,
    /// Bytes those healthy stage entries occupy.
    pub bytes: u64,
}

impl FsckReport {
    /// A JSON rendering (the `--fsck` CLI report line).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("event", Json::str("fsck")),
            ("tmp_removed", Json::num(self.tmp_removed as f64)),
            ("quarantined", Json::num(self.quarantined as f64)),
            ("entries", Json::num(self.entries as f64)),
            ("bytes", Json::num(self.bytes as f64)),
        ])
    }

    /// Whether the pass changed anything worth reporting.
    pub fn dirty(&self) -> bool {
        self.tmp_removed > 0 || self.quarantined > 0
    }
}

/// The on-disk cache rooted at one directory.
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    max_bytes: Option<u64>,
    /// Stage hit/miss and health counters.
    pub counters: CacheCounters,
}

/// A cached levelization summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelsEntry {
    /// Combinational levels.
    pub levels: usize,
    /// Total gates.
    pub gates: usize,
    /// Registers.
    pub registers: usize,
}

/// The subdirectory quarantined entries move to.
const QUARANTINE_DIR: &str = "quarantine";

/// The stage directories subject to verify-on-read and eviction.
const STAGES: [&str; 3] = ["netlist", "levels", "result"];

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root` with the
    /// stage subdirectories `netlist/`, `levels/`, `result/`, `jobs/`
    /// and `quarantine/`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        for sub in ["netlist", "levels", "result", "jobs", QUARANTINE_DIR] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Self {
            root,
            max_bytes: None,
            counters: CacheCounters::default(),
        })
    }

    /// Caps the three stage directories at `max` bytes, enforced by
    /// LRU eviction after every store (`None`: unbounded). `jobs/`
    /// and `quarantine/` never count against, and are never evicted
    /// by, the budget.
    #[must_use]
    pub fn with_max_bytes(mut self, max: Option<u64>) -> Self {
        self.max_bytes = max;
        self
    }

    /// The configured stage-size budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory (corrupt entries are preserved here).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// The checkpoint path prefix for a result key: in-flight solver
    /// checkpoints live next to the job files so a restarted daemon
    /// resumes them.
    pub fn checkpoint_prefix(&self, result_key: &str) -> PathBuf {
        self.root.join("jobs").join(result_key)
    }

    // ----- netlist stage -------------------------------------------------

    /// The netlist-stage key for raw submitted bytes.
    pub fn netlist_key(source: &str) -> String {
        format_digest(content_digest(source.as_bytes()))
    }

    /// Looks up the canonical `.bench` text for a netlist key.
    pub fn lookup_netlist(&self, key: &str) -> Option<String> {
        let hit = self.read_verified(&self.stage_path("netlist", key, "bench"));
        self.count(
            hit.is_some(),
            &self.counters.netlist_hits,
            &self.counters.netlist_misses,
        );
        hit
    }

    /// Stores the canonical `.bench` text for a netlist key.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers may treat the cache as
    /// best-effort and continue).
    pub fn store_netlist(&self, key: &str, canonical_bench: &str) -> io::Result<()> {
        self.write_sealed(&self.stage_path("netlist", key, "bench"), canonical_bench)
    }

    // ----- levels stage --------------------------------------------------

    /// Looks up the levelization summary for a circuit digest key.
    pub fn lookup_levels(&self, key: &str) -> Option<LevelsEntry> {
        let hit = self
            .read_verified(&self.stage_path("levels", key, "json"))
            .and_then(|text| {
                let v = Json::parse(&text).ok()?;
                Some(LevelsEntry {
                    levels: v.get("levels")?.as_u64()? as usize,
                    gates: v.get("gates")?.as_u64()? as usize,
                    registers: v.get("registers")?.as_u64()? as usize,
                })
            });
        self.count(
            hit.is_some(),
            &self.counters.levels_hits,
            &self.counters.levels_misses,
        );
        hit
    }

    /// Stores a levelization summary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn store_levels(&self, key: &str, entry: LevelsEntry) -> io::Result<()> {
        let body = Json::obj(vec![
            ("levels", Json::num(entry.levels as f64)),
            ("gates", Json::num(entry.gates as f64)),
            ("registers", Json::num(entry.registers as f64)),
        ]);
        self.write_sealed(&self.stage_path("levels", key, "json"), &body.to_string())
    }

    // ----- result stage --------------------------------------------------

    /// The result-stage key: circuit digest plus config fingerprint.
    pub fn result_key(circuit_key: &str, fingerprint: u64) -> String {
        format!("{circuit_key}-{fingerprint:016x}")
    }

    /// Looks up a completed result: the retimed `.bench` text and the
    /// JSON report stored by [`ResultCache::store_result`].
    pub fn lookup_result(&self, key: &str) -> Option<(String, Json)> {
        let hit = self.peek_result(key);
        self.count(
            hit.is_some(),
            &self.counters.result_hits,
            &self.counters.result_misses,
        );
        hit
    }

    /// [`ResultCache::lookup_result`] without touching the hit/miss
    /// counters — for `result` queries about an already-completed job,
    /// which say nothing about cache effectiveness. (Verify-on-read
    /// and quarantine still apply: corrupt bytes are never returned.)
    pub fn peek_result(&self, key: &str) -> Option<(String, Json)> {
        let bench = self.read_verified(&self.stage_path("result", key, "bench"))?;
        let meta =
            Json::parse(&self.read_verified(&self.stage_path("result", key, "meta"))?).ok()?;
        Some((bench, meta))
    }

    /// Stores a completed (exit-0) result.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn store_result(&self, key: &str, bench: &str, meta: &Json) -> io::Result<()> {
        self.write_sealed(&self.stage_path("result", key, "bench"), bench)?;
        self.write_sealed(&self.stage_path("result", key, "meta"), &meta.to_string())
    }

    // ----- job persistence (restart recovery) ----------------------------

    /// Persists a job spec to `jobs/<id>.job` so a killed daemon can
    /// re-enqueue it on restart.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn persist_job(&self, spec: &JobSpec) -> io::Result<()> {
        fio::write_atomic(
            &self.job_path(&spec.id),
            &fio::seal(&spec.to_json().to_string()),
        )
    }

    /// Removes the persisted spec of a terminal job. Failures other
    /// than the file already being gone are counted in
    /// [`CacheCounters::remove_failures`] and surfaced in `stats` —
    /// a recovery file that cannot be deleted means the job will be
    /// spuriously re-run on restart, which an operator should see.
    pub fn remove_job(&self, id: &str) {
        match fio::remove_file(&self.job_path(id)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                self.counters
                    .remove_failures
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "warning: could not remove terminal job recovery file jobs/{id}.job: {e} \
                     (the job may be re-run on restart)"
                );
            }
        }
    }

    /// Scans `jobs/` for specs persisted by a previous daemon process,
    /// in sorted order. Sealed entries must verify; headerless entries
    /// are accepted when they parse (legacy files — the strict spec
    /// parser is the only guard they ever had). Everything else is
    /// skipped here and quarantined by [`ResultCache::fsck`].
    pub fn scan_jobs(&self) -> Vec<JobSpec> {
        let mut paths: Vec<PathBuf> = fs::read_dir(self.root.join("jobs"))
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "job"))
                    .collect()
            })
            .unwrap_or_default();
        paths.sort();
        paths
            .iter()
            .filter_map(|p| {
                let text = fio::read_to_string(p).ok()?;
                let body = match fio::unseal(&text) {
                    Ok(payload) => payload,
                    Err(fio::SealError::Missing) => &text,
                    Err(_) => return None,
                };
                JobSpec::from_json(&Json::parse(body).ok()?).ok()
            })
            .collect()
    }

    // ----- integrity: fsck, quarantine, eviction --------------------------

    /// One integrity pass over the whole cache root: removes orphaned
    /// `.tmp` files (interrupted atomic writes), quarantines entries
    /// that fail their seal or carry a foreign digest tag, validates
    /// persisted job specs and solver checkpoints under `jobs/`,
    /// rebuilds the stage byte count, and (when a budget is set)
    /// evicts down to it. The daemon runs this at every startup;
    /// `retimer serve --fsck` runs it standalone.
    pub fn fsck(&self) -> FsckReport {
        let mut report = FsckReport::default();
        for stage in STAGES {
            for path in dir_files(&self.root.join(stage)) {
                if is_tmp(&path) {
                    if fio::remove_file(&path).is_ok() {
                        report.tmp_removed += 1;
                    }
                    continue;
                }
                if !valid_key_name(&path) {
                    self.quarantine(&path, "file name is not a tagged digest key");
                    report.quarantined += 1;
                    continue;
                }
                match fio::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| match fio::unseal(&text) {
                        Ok(_) => Ok(text.len() as u64),
                        Err(e) => Err(e.to_string()),
                    }) {
                    Ok(len) => {
                        report.entries += 1;
                        report.bytes += len;
                    }
                    Err(reason) => {
                        self.quarantine(&path, &reason);
                        report.quarantined += 1;
                    }
                }
            }
        }
        for path in dir_files(&self.root.join("jobs")) {
            if is_tmp(&path) {
                if fio::remove_file(&path).is_ok() {
                    report.tmp_removed += 1;
                }
                continue;
            }
            let ext = path.extension().and_then(|e| e.to_str());
            let Ok(text) = fio::read_to_string(&path) else {
                continue; // unreadable: leave for the operator
            };
            let verdict = match (ext, fio::unseal(&text)) {
                // A sealed file of either kind must verify.
                (_, Ok(payload)) => match ext {
                    Some("job") => JobSpec::from_json(&Json::parse(payload).unwrap_or(Json::Null))
                        .map(|_| ())
                        .map_err(|e| format!("undecodable job spec: {e}")),
                    _ => Ok(()),
                },
                // Headerless job files are legacy iff they parse.
                (Some("job"), Err(fio::SealError::Missing)) => {
                    JobSpec::from_json(&Json::parse(&text).unwrap_or(Json::Null))
                        .map(|_| ())
                        .map_err(|e| format!("undecodable job spec: {e}"))
                }
                // Headerless checkpoints predate sealing; their strict
                // text format is the only guard they ever had.
                (_, Err(fio::SealError::Missing)) => Ok(()),
                (_, Err(e)) => Err(e.to_string()),
            };
            if let Err(reason) = verdict {
                self.quarantine(&path, &reason);
                report.quarantined += 1;
            }
        }
        self.evict_to_budget();
        report
    }

    /// The bytes currently occupied by healthy entries in the three
    /// stage directories (`.tmp` orphans excluded).
    pub fn stage_bytes(&self) -> u64 {
        STAGES
            .iter()
            .flat_map(|stage| dir_files(&self.root.join(stage)))
            .filter(|p| !is_tmp(p))
            .filter_map(|p| fs::metadata(&p).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Evicts least-recently-used stage entries until the stage
    /// directories fit the configured budget. A result `bench`+`meta`
    /// pair is one eviction unit (recency = the newer of the two).
    fn evict_to_budget(&self) {
        let Some(max) = self.max_bytes else { return };
        // Collect (newest-mtime, total-size, paths) eviction units.
        let mut units: Vec<(SystemTime, u64, Vec<PathBuf>)> = Vec::new();
        for stage in STAGES {
            let mut groups: std::collections::HashMap<String, (SystemTime, u64, Vec<PathBuf>)> =
                std::collections::HashMap::new();
            for path in dir_files(&self.root.join(stage)) {
                if is_tmp(&path) {
                    continue;
                }
                let Ok(meta) = fs::metadata(&path) else {
                    continue;
                };
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let entry = groups
                    .entry(stem)
                    .or_insert_with(|| (SystemTime::UNIX_EPOCH, 0, Vec::new()));
                entry.0 = entry.0.max(mtime);
                entry.1 += meta.len();
                entry.2.push(path);
            }
            units.extend(groups.into_values());
        }
        let mut total: u64 = units.iter().map(|(_, size, _)| size).sum();
        if total <= max {
            return;
        }
        units.sort_by_key(|(mtime, _, _)| *mtime);
        for (_, size, paths) in units {
            if total <= max {
                break;
            }
            let mut removed = false;
            for path in paths {
                removed |= fio::remove_file(&path).is_ok();
            }
            if removed {
                total = total.saturating_sub(size);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .evicted_bytes
                    .fetch_add(size, Ordering::Relaxed);
            }
        }
    }

    /// Moves a failed entry to `quarantine/` (falling back to removal
    /// if the move itself fails), counts it, and prints a structured
    /// warning. The entry is never left where a reader could trust it.
    fn quarantine(&self, path: &Path, reason: &str) {
        let stage = path
            .parent()
            .and_then(|p| p.file_name())
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let dest = self.quarantine_dir().join(format!("{stage}__{name}"));
        if fio::rename(path, &dest).is_err() {
            let _ = fio::remove_file(path);
        }
        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "warning: quarantined corrupt cache entry {stage}/{name}: {reason} \
             (moved to {}; the pipeline will recompute)",
            dest.display()
        );
    }

    /// Reads a stage entry: the file name must carry this build's
    /// digest tag and the sealed payload must verify. Corruption (or
    /// a missing seal — these files are always written sealed) is
    /// quarantined and reported as a miss; hits touch the entry's
    /// mtime so LRU eviction sees the access.
    fn read_verified(&self, path: &Path) -> Option<String> {
        if !valid_key_name(path) {
            // A foreign-scheme key is a miss, not corruption: a future
            // digest scheme's cache must survive an old binary.
            return fs::metadata(path).ok().and(None);
        }
        let text = match fio::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                // Transient read failure (e.g. injected EIO): miss and
                // recompute; nothing on disk to quarantine yet.
                eprintln!(
                    "warning: cache read of {} failed: {e} (treating as a miss)",
                    path.display()
                );
                return None;
            }
        };
        match fio::unseal(&text) {
            Ok(payload) => {
                touch(path);
                Some(payload.to_string())
            }
            Err(e) => {
                self.quarantine(path, &e.to_string());
                None
            }
        }
    }

    /// Seals and atomically writes one stage entry, then enforces the
    /// size budget.
    fn write_sealed(&self, path: &Path, payload: &str) -> io::Result<()> {
        fio::write_atomic(path, &fio::seal(payload))?;
        self.evict_to_budget();
        Ok(())
    }

    fn stage_path(&self, stage: &str, key: &str, ext: &str) -> PathBuf {
        self.root.join(stage).join(format!("{key}.{ext}"))
    }

    fn job_path(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{id}.job"))
    }

    fn count(&self, hit: bool, hits: &AtomicU64, misses: &AtomicU64) {
        if hit { hits } else { misses }.fetch_add(1, Ordering::Relaxed);
    }
}

/// The regular files directly inside `dir` (subdirectories skipped).
fn dir_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn is_tmp(path: &Path) -> bool {
    path.file_name()
        .is_some_and(|n| n.to_string_lossy().ends_with(".tmp"))
}

/// Whether a stage file's name carries the digest tag this build
/// understands: a cache written by a future `fnv2-…` scheme is skipped
/// (a miss), never misinterpreted.
fn valid_key_name(path: &Path) -> bool {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
        return false;
    };
    // Result keys are `<tag>:<hex>-<fp>`; stage keys are `<tag>:<hex>`.
    // The tag itself contains `-`, so split after the `:`-delimited
    // hex run, not on the first dash.
    let Some(colon) = stem.find(':') else {
        return false;
    };
    let hex_end = stem[colon + 1..]
        .find('-')
        .map_or(stem.len(), |i| colon + 1 + i);
    parse_digest(&stem[..hex_end]).is_ok()
}

/// Best-effort mtime bump on a cache hit, so LRU eviction orders by
/// last access rather than last write.
fn touch(path: &Path) {
    if let Ok(file) = fs::File::options().append(true).open(path) {
        let _ = file.set_modified(SystemTime::now());
    }
}

/// The solve-configuration fingerprint half of a result key.
///
/// Every knob that can change the result (or whether the solve
/// completes cleanly) is hashed: method, simulation shape and seed,
/// `R_min` override, both budget axes and the closure engine. The
/// thread count is deliberately **excluded** — the SER engine is
/// bit-identical for every worker count, so the same circuit solved
/// with 1 or 8 threads shares one cache entry. The `deadline_ms`
/// admission deadline is likewise excluded: it decides whether a job
/// runs at all, never what the solve produces.
pub fn config_fingerprint(spec: &JobSpec) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("serve-config-v1");
    h.write_str(match spec.method {
        Method::MinObs => "minobs",
        Method::MinObsWin => "minobswin",
    });
    h.write_u64(spec.vectors as u64);
    h.write_u64(spec.frames as u64);
    h.write_u64(spec.seed);
    match spec.r_min {
        None => h.write_str("rmin-default"),
        Some(r) => {
            h.write_str("rmin-override");
            h.write_i64(r);
        }
    }
    match spec.time_budget {
        None => h.write_str("time-default"),
        Some(secs) => {
            h.write_str("time-budget");
            h.write_u64(secs.to_bits());
        }
    }
    match spec.max_iters {
        None => h.write_str("iters-default"),
        Some(n) => {
            h.write_str("iters-budget");
            h.write_u64(n as u64);
        }
    }
    h.write_str(match spec.closure {
        ClosureChoice::Warm => "closure-warm",
        ClosureChoice::Fresh => "closure-fresh",
    });
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::NetlistFormat;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stages_round_trip_and_count() {
        let cache = ResultCache::open(tmpdir("stages")).unwrap();
        let key = ResultCache::netlist_key("INPUT(a)\n");
        assert!(key.starts_with("fnv1a-v1:"));
        assert!(cache.lookup_netlist(&key).is_none());
        cache.store_netlist(&key, "canonical").unwrap();
        assert_eq!(cache.lookup_netlist(&key).as_deref(), Some("canonical"));

        let entry = LevelsEntry {
            levels: 4,
            gates: 17,
            registers: 3,
        };
        cache.store_levels(&key, entry).unwrap();
        assert_eq!(cache.lookup_levels(&key), Some(entry));

        let rkey = ResultCache::result_key(&key, 0xabcd);
        assert!(cache.lookup_result(&rkey).is_none());
        let meta = Json::obj(vec![("exit", Json::num(0.0))]);
        cache.store_result(&rkey, "retimed", &meta).unwrap();
        let (bench, back) = cache.lookup_result(&rkey).unwrap();
        assert_eq!(bench, "retimed");
        assert_eq!(back.get("exit").and_then(Json::as_u64), Some(0));

        assert_eq!(cache.counters.netlist_hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.netlist_misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.result_hits(), 1);
        assert_eq!(cache.counters.quarantined(), 0);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn untagged_keys_are_misses() {
        let cache = ResultCache::open(tmpdir("tags")).unwrap();
        // Simulate an entry written by a different digest scheme.
        fs::write(cache.root().join("netlist/deadbeef.bench"), "old").unwrap();
        assert!(cache.lookup_netlist("deadbeef").is_none());
        // A miss, not corruption: the foreign entry stays untouched.
        assert!(cache.root().join("netlist/deadbeef.bench").exists());
        assert_eq!(cache.counters.quarantined(), 0);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entries_are_quarantined_never_served() {
        let cache = ResultCache::open(tmpdir("verify")).unwrap();
        let key = ResultCache::netlist_key("INPUT(a)\n");
        cache.store_netlist(&key, "INPUT(a)\nOUTPUT(a)\n").unwrap();
        let path = cache.stage_path("netlist", &key, "bench");

        // Flip one payload bit on disk, exactly like the chaos plan.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x04;
        fs::write(&path, &bytes).unwrap();

        assert!(cache.lookup_netlist(&key).is_none(), "corrupt entry served");
        assert!(!path.exists(), "corrupt entry left in place");
        assert_eq!(cache.counters.quarantined(), 1);
        let quarantined = dir_files(&cache.quarantine_dir());
        assert_eq!(quarantined.len(), 1);
        // The quarantined bytes are preserved for inspection.
        assert_eq!(fs::read(&quarantined[0]).unwrap(), bytes);

        // The stage heals on the next store.
        cache.store_netlist(&key, "INPUT(a)\nOUTPUT(a)\n").unwrap();
        assert_eq!(
            cache.lookup_netlist(&key).as_deref(),
            Some("INPUT(a)\nOUTPUT(a)\n")
        );
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn truncated_entries_are_quarantined() {
        let cache = ResultCache::open(tmpdir("torn")).unwrap();
        let key = ResultCache::netlist_key("x");
        cache
            .store_netlist(&key, &"G = AND(a, b)\n".repeat(10))
            .unwrap();
        let path = cache.stage_path("netlist", &key, "bench");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap(); // torn
        assert!(cache.lookup_netlist(&key).is_none());
        assert_eq!(cache.counters.quarantined(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn fsck_removes_tmp_orphans_and_quarantines_undecodables() {
        let cache = ResultCache::open(tmpdir("fsck")).unwrap();
        let key = ResultCache::netlist_key("good");
        cache.store_netlist(&key, "good entry").unwrap();

        // An interrupted atomic write, a corrupt sealed entry, and a
        // garbage key name that still claims our tag.
        fs::write(cache.root().join("netlist/half.bench.tmp"), "partial").unwrap();
        let bad_key = ResultCache::netlist_key("bad");
        cache.store_netlist(&bad_key, "soon corrupt").unwrap();
        let bad_path = cache.stage_path("netlist", &bad_key, "bench");
        let mut bytes = fs::read(&bad_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&bad_path, &bytes).unwrap();
        fs::write(cache.root().join("levels/garbage.json"), "{}").unwrap();

        let report = cache.fsck();
        assert_eq!(report.tmp_removed, 1);
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.entries, 1);
        assert!(report.bytes > 0);
        assert!(report.dirty());
        // The healthy entry still reads back.
        assert_eq!(cache.lookup_netlist(&key).as_deref(), Some("good entry"));

        // A second pass is clean and idempotent.
        let again = cache.fsck();
        assert_eq!(
            (again.tmp_removed, again.quarantined, again.entries),
            (0, 0, 1)
        );
        assert!(!again.dirty());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn eviction_keeps_stage_bytes_under_budget() {
        let payload = "x".repeat(512);
        let cache = ResultCache::open(tmpdir("evict"))
            .unwrap()
            .with_max_bytes(Some(2048));
        for i in 0..12 {
            let key = ResultCache::netlist_key(&format!("circuit-{i}"));
            cache.store_netlist(&key, &payload).unwrap();
            assert!(
                cache.stage_bytes() <= 2048,
                "budget exceeded after store {i}: {} bytes",
                cache.stage_bytes()
            );
        }
        assert!(cache.counters.evictions() > 0, "evictions never fired");
        assert!(cache.counters.evicted_bytes.load(Ordering::Relaxed) > 0);
        // The most recent entry must have survived (LRU, not random).
        let newest = ResultCache::netlist_key("circuit-11");
        assert_eq!(
            cache.lookup_netlist(&newest).as_deref(),
            Some(payload.as_str())
        );
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn result_pairs_evict_together_and_jobs_are_exempt() {
        let cache = ResultCache::open(tmpdir("evict-pairs"))
            .unwrap()
            .with_max_bytes(Some(1)); // evict everything evictable
        let spec = JobSpec::new("keep-me", "INPUT(a)\n", NetlistFormat::Bench);
        cache.persist_job(&spec).unwrap();

        let rkey = ResultCache::result_key(&ResultCache::netlist_key("c"), 1);
        let meta = Json::obj(vec![("exit", Json::num(0.0))]);
        cache.store_result(&rkey, "retimed", &meta).unwrap();
        assert!(cache.peek_result(&rkey).is_none(), "pair must be evicted");
        assert!(
            !cache.stage_path("result", &rkey, "meta").exists(),
            "meta must go with its bench"
        );
        // jobs/ is never evicted.
        assert_eq!(cache.scan_jobs(), vec![spec]);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn job_persistence_round_trips() {
        let cache = ResultCache::open(tmpdir("jobs")).unwrap();
        let spec = JobSpec::new("job-7", "INPUT(a)\n", NetlistFormat::Bench);
        cache.persist_job(&spec).unwrap();
        assert_eq!(cache.scan_jobs(), vec![spec.clone()]);
        cache.remove_job(&spec.id);
        assert!(cache.scan_jobs().is_empty());
        assert_eq!(cache.counters.remove_failures(), 0, "clean remove");
        // Removing an already-gone job is not a failure either.
        cache.remove_job(&spec.id);
        assert_eq!(cache.counters.remove_failures(), 0);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn undeletable_job_files_are_counted() {
        let cache = ResultCache::open(tmpdir("rmfail")).unwrap();
        // A *directory* named like a job file: remove_file must fail,
        // and the failure must be counted, not swallowed.
        fs::create_dir_all(cache.root().join("jobs/stuck.job")).unwrap();
        cache.remove_job("stuck");
        assert_eq!(cache.counters.remove_failures(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn legacy_unsealed_job_files_still_scan() {
        let cache = ResultCache::open(tmpdir("legacy")).unwrap();
        let spec = JobSpec::new("old-1", "INPUT(a)\n", NetlistFormat::Bench);
        fs::write(
            cache.root().join("jobs/old-1.job"),
            spec.to_json().to_string(),
        )
        .unwrap();
        assert_eq!(cache.scan_jobs(), vec![spec]);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn fingerprint_separates_configs() {
        let base = JobSpec::new("a", "x", NetlistFormat::Bench);
        let fp = config_fingerprint(&base);
        let mut other = base.clone();
        other.id = "different-id".into();
        other.threads = 8;
        other.deadline_ms = Some(5_000);
        assert_eq!(
            config_fingerprint(&other),
            fp,
            "id/threads/deadline excluded"
        );

        let mut m = base.clone();
        m.method = Method::MinObs;
        assert_ne!(config_fingerprint(&m), fp);
        let mut r = base.clone();
        r.r_min = Some(0);
        assert_ne!(config_fingerprint(&r), fp);
        let mut t = base.clone();
        t.time_budget = Some(5.0);
        assert_ne!(config_fingerprint(&t), fp);
        let mut c = base.clone();
        c.closure = ClosureChoice::Fresh;
        assert_ne!(config_fingerprint(&c), fp);
    }
}
