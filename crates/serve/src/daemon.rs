//! The daemon: a bounded job queue, a worker pool over the solver
//! pipeline, and the event stream gluing them to a protocol frontend.
//!
//! Locking discipline: one mutex guards the queue and the job table;
//! no worker holds it while parsing or solving. Progress callbacks
//! take it briefly to update the job's `Running` snapshot.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use minobswin::algorithm::SolverConfig;
use minobswin::closure_inc::ClosureEngine;
use minobswin::experiment::{checkpoint_path, Experiment, ExperimentEvent, RunConfig};
use minobswin::{CancelToken, SolveBudget};
use netlist::digest::{circuit_digest, format_digest};
use netlist::parallel::resolve_workers;
use netlist::{bench_format, Circuit, Levelization, ParseLimits};
use retime::apply::apply_retiming;
use retime::RetimeGraph;

use crate::cache::{config_fingerprint, LevelsEntry, ResultCache};
use crate::job::{ClosureChoice, JobId, JobSpec, JobState, Method, NetlistFormat};
use crate::json::Json;

/// All jobs are parsed under this circuit name so the canonical text
/// — and therefore every cache key — depends only on netlist content,
/// never on the job id or submitting file name.
const CANONICAL_NAME: &str = "serve";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent solve workers (`0`: resolve via `SER_THREADS` /
    /// available parallelism, like every other parallel surface).
    pub workers: usize,
    /// Admission bound: jobs queued (not yet running) beyond this are
    /// rejected with backpressure instead of buffered without limit.
    pub queue_capacity: usize,
    /// Cache directory (see [`ResultCache`]).
    pub cache_dir: PathBuf,
    /// Default per-job wall-clock budget in seconds, applied when a
    /// spec does not set its own.
    pub default_time_budget: Option<f64>,
    /// Default per-job iteration budget.
    pub default_max_iters: Option<usize>,
    /// Size budget for the cache's stage directories, enforced by LRU
    /// eviction (`None`: unbounded). See
    /// [`ResultCache::with_max_bytes`].
    pub cache_max_bytes: Option<u64>,
}

impl ServeConfig {
    /// A configuration with the given cache directory and the default
    /// knobs (resolved workers, queue of 64, unlimited budgets).
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            cache_dir: cache_dir.into(),
            default_time_budget: None,
            default_max_iters: None,
            cache_max_bytes: None,
        }
    }
}

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The daemon is draining and admits nothing new.
    Draining,
    /// The queue is full (backpressure; resubmit later).
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// A live or finished job already uses this id.
    DuplicateId,
    /// The id is empty, too long, or contains characters unsafe for a
    /// file name.
    InvalidId(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "daemon is draining"),
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue is full (capacity {capacity})")
            }
            SubmitError::DuplicateId => write!(f, "job id already in use"),
            SubmitError::InvalidId(why) => write!(f, "invalid job id: {why}"),
        }
    }
}

/// One entry in the daemon's event stream. A frontend serializes
/// these onto its wire; tests consume them directly.
#[derive(Debug, Clone)]
pub enum Event {
    /// The job was admitted.
    Queued {
        /// Job id.
        id: JobId,
    },
    /// A worker started parsing the job's netlist.
    Parsing {
        /// Job id.
        id: JobId,
    },
    /// The netlist parsed (or was served from the netlist cache).
    Parsed {
        /// Job id.
        id: JobId,
        /// The tagged circuit digest (the cache key prefix).
        key: String,
        /// Gates in the circuit.
        gates: usize,
        /// Whether the netlist stage was a cache hit.
        cached: bool,
    },
    /// The circuit is levelized; the solve is starting.
    Levelized {
        /// Job id.
        id: JobId,
        /// Combinational levels.
        levels: usize,
        /// Whether the levelization stage was a cache hit.
        cached: bool,
    },
    /// Periodic solver progress.
    Iteration {
        /// Job id.
        id: JobId,
        /// Which method is solving (`"minobs"` / `"minobswin"`).
        method: &'static str,
        /// Total solver iterations so far.
        iterations: usize,
        /// Committed improvement rounds so far.
        commits: usize,
    },
    /// The job reached a terminal state.
    Terminal {
        /// Job id.
        id: JobId,
        /// The terminal state (`Done` / `Degraded` / `Cancelled` /
        /// `Failed` / `Expired`).
        state: JobState,
        /// Whether the result came from the cache.
        cached: bool,
        /// The result-stage cache key, when one exists.
        key: Option<String>,
    },
    /// Drain finished: every admitted job is terminal and all workers
    /// exited.
    Drained,
}

impl Event {
    /// The job id this event concerns (`None` for [`Event::Drained`]).
    pub fn job_id(&self) -> Option<&str> {
        match self {
            Event::Queued { id }
            | Event::Parsing { id }
            | Event::Parsed { id, .. }
            | Event::Levelized { id, .. }
            | Event::Iteration { id, .. }
            | Event::Terminal { id, .. } => Some(id),
            Event::Drained => None,
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    token: CancelToken,
    cancel_requested: bool,
    result_key: Option<String>,
    /// When this process admitted the job; the `deadline_ms` clock.
    /// Recovered jobs get a fresh clock — a restart must not expire
    /// everything that sat out the downtime.
    admitted: Instant,
}

struct State {
    pending: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    /// Jobs reserved by an in-flight `enqueue` but not yet published
    /// to `pending`; counted against the queue bound so concurrent
    /// admissions cannot overshoot it.
    admitting: usize,
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    cache: ResultCache,
    tx: Mutex<Sender<Event>>,
    defaults: (Option<f64>, Option<usize>),
}

impl Shared {
    fn emit(&self, event: Event) {
        // A disconnected receiver (frontend gone) must not wedge the
        // workers; drop the event instead.
        let _ = self.tx.lock().expect("event sender poisoned").send(event);
    }

    fn set_state(&self, id: &str, state: JobState) {
        let mut st = self.state.lock().expect("daemon state poisoned");
        if let Some(entry) = st.jobs.get_mut(id) {
            entry.state = state;
        }
    }
}

/// The running daemon. Construct with [`Daemon::start`]; shut down
/// with [`Daemon::drain`].
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    rx: Mutex<Option<Receiver<Event>>>,
    capacity: usize,
    /// Resolved worker count (for banners and tests).
    pub worker_count: usize,
}

impl Daemon {
    /// Starts the worker pool and re-enqueues any jobs a previous
    /// daemon process persisted but never finished (their solver
    /// checkpoints, if any, are resumed). Before recovery scanning,
    /// one [`ResultCache::fsck`] pass heals the cache: orphaned
    /// `.tmp` files from interrupted writes are removed and corrupt
    /// entries quarantined, so recovery never trusts a torn file.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        let cache = ResultCache::open(&config.cache_dir)?.with_max_bytes(config.cache_max_bytes);
        let fsck = cache.fsck();
        if fsck.dirty() {
            eprintln!(
                "warning: cache fsck healed {}: removed {} orphaned tmp file(s), \
                 quarantined {} corrupt entr(y/ies)",
                config.cache_dir.display(),
                fsck.tmp_removed,
                fsck.quarantined
            );
        }
        let recovered = cache.scan_jobs();
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                jobs: HashMap::new(),
                admitting: 0,
                draining: false,
            }),
            cv: Condvar::new(),
            cache,
            tx: Mutex::new(tx),
            defaults: (config.default_time_budget, config.default_max_iters),
        });

        let worker_count = resolve_workers(config.workers);
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a serve worker")
            })
            .collect();

        let daemon = Self {
            shared,
            workers: Mutex::new(workers),
            rx: Mutex::new(Some(rx)),
            capacity: config.queue_capacity.max(1),
            worker_count,
        };
        for spec in recovered {
            // Recovery bypasses the admission bound: these jobs were
            // already admitted once.
            let _ = daemon.enqueue(spec, false);
        }
        Ok(daemon)
    }

    /// Takes the event stream (once). Subsequent calls return `None`.
    pub fn events(&self) -> Option<Receiver<Event>> {
        self.rx.lock().expect("event receiver poisoned").take()
    }

    /// The daemon's cache (counters, direct lookups).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The admission bound on queued jobs.
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; the queue bound and drain state are
    /// enforced here, before the spec is persisted.
    pub fn submit(&self, spec: JobSpec) -> Result<(), SubmitError> {
        validate_id(&spec.id).map_err(SubmitError::InvalidId)?;
        self.enqueue(spec, true)
    }

    fn enqueue(&self, spec: JobSpec, enforce_capacity: bool) -> Result<(), SubmitError> {
        // Phase 1: reserve. The entry exists (so duplicate ids bounce
        // and cancel can find it) but is NOT in `pending` yet, so no
        // worker can pick it up — and therefore cannot finish it and
        // delete its recovery file — before that file is written.
        {
            let mut st = self.shared.state.lock().expect("daemon state poisoned");
            if st.draining {
                return Err(SubmitError::Draining);
            }
            if st.jobs.contains_key(&spec.id) {
                return Err(SubmitError::DuplicateId);
            }
            // The bound is on waiting jobs: running and finished jobs
            // do not count against admission. `admitting` covers jobs
            // reserved here but not yet published to `pending`.
            if enforce_capacity && st.pending.len() + st.admitting >= self.capacity {
                return Err(SubmitError::QueueFull {
                    capacity: self.capacity,
                });
            }
            st.admitting += 1;
            st.jobs.insert(
                spec.id.clone(),
                JobEntry {
                    spec: spec.clone(),
                    state: JobState::Queued,
                    token: CancelToken::new(),
                    cancel_requested: false,
                    result_key: None,
                    admitted: Instant::now(),
                },
            );
        }
        // Phase 2: persist outside the lock — recovery survives a kill
        // from here on.
        let _ = self.shared.cache.persist_job(&spec);
        // Phase 3: publish. A cancel may have raced the admission and
        // already marked the entry terminal; honour it instead of
        // handing a dead job to a worker.
        {
            let mut st = self.shared.state.lock().expect("daemon state poisoned");
            st.admitting -= 1;
            match st.jobs.get(&spec.id) {
                Some(entry) if entry.state.is_terminal() => {
                    self.shared.cache.remove_job(&spec.id);
                    return Ok(());
                }
                _ => st.pending.push_back(spec.id.clone()),
            }
        }
        self.shared.emit(Event::Queued {
            id: spec.id.clone(),
        });
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Requests cancellation. Queued jobs terminate immediately;
    /// running jobs stop at the solver's next cancellation poll.
    /// Returns `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: &str) -> bool {
        let mut st = self.shared.state.lock().expect("daemon state poisoned");
        let Some(entry) = st.jobs.get_mut(id) else {
            return false;
        };
        if entry.state.is_terminal() {
            return false;
        }
        entry.cancel_requested = true;
        entry.token.cancel();
        if entry.state == JobState::Queued {
            entry.state = JobState::Cancelled;
            st.pending.retain(|p| p != id);
            drop(st);
            self.shared.cache.remove_job(id);
            self.shared.emit(Event::Terminal {
                id: id.to_string(),
                state: JobState::Cancelled,
                cached: false,
                key: None,
            });
        }
        true
    }

    /// The current state of a job.
    pub fn status(&self, id: &str) -> Option<JobState> {
        let st = self.shared.state.lock().expect("daemon state poisoned");
        st.jobs.get(id).map(|e| e.state.clone())
    }

    /// The retimed netlist and report of a completed (`Done`) job.
    pub fn result(&self, id: &str) -> Option<(String, Json)> {
        let key = {
            let st = self.shared.state.lock().expect("daemon state poisoned");
            let entry = st.jobs.get(id)?;
            if entry.state != JobState::Done {
                return None;
            }
            entry.result_key.clone()?
        };
        self.shared.cache.peek_result(&key)
    }

    /// Counts of jobs by liveness: `(queued, running, terminal)`.
    pub fn population(&self) -> (usize, usize, usize) {
        let st = self.shared.state.lock().expect("daemon state poisoned");
        let queued = st.pending.len();
        let terminal = st.jobs.values().filter(|e| e.state.is_terminal()).count();
        (queued, st.jobs.len() - terminal - queued, terminal)
    }

    /// Stops admitting, lets every queued and running job reach a
    /// terminal state, joins the workers and emits [`Event::Drained`].
    /// Idempotent; concurrent callers all return once the drain is
    /// complete.
    pub fn drain(&self) {
        {
            let mut st = self.shared.state.lock().expect("daemon state poisoned");
            st.draining = true;
        }
        self.shared.cv.notify_all();
        let handles: Vec<_> = {
            let mut workers = self.workers.lock().expect("worker registry poisoned");
            workers.drain(..).collect()
        };
        if handles.is_empty() {
            return; // another caller drained (or is draining) already
        }
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.emit(Event::Drained);
    }

    /// Closes the event stream: the receiver returned by
    /// [`Daemon::events`] disconnects once in-flight events are
    /// consumed. Call after [`Daemon::drain`] so an event pump
    /// iterating the receiver terminates.
    pub fn close_events(&self) {
        *self.shared.tx.lock().expect("event sender poisoned") = mpsc::channel().0;
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("daemon state poisoned")
            .draining
    }
}

fn validate_id(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("empty".into());
    }
    if id.len() > 64 {
        return Err(format!("{} bytes long (max 64)", id.len()));
    }
    if let Some(bad) = id
        .chars()
        .find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '-' | '_' | '.'))
    {
        return Err(format!("contains `{bad}` (use [A-Za-z0-9._-])"));
    }
    if id.starts_with('.') {
        return Err("starts with `.`".into());
    }
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut st = shared.state.lock().expect("daemon state poisoned");
            loop {
                if let Some(id) = st.pending.pop_front() {
                    break id;
                }
                if st.draining {
                    return;
                }
                st = shared.cv.wait(st).expect("daemon state poisoned");
            }
        };
        run_job(shared, &id);
    }
}

/// Runs one job to a terminal state. Never panics the worker: every
/// failure path maps onto `JobState::Failed` with a stable exit code.
fn run_job(shared: &Arc<Shared>, id: &str) {
    let (spec, token, admitted, cancelled_early) = {
        let st = shared.state.lock().expect("daemon state poisoned");
        let Some(entry) = st.jobs.get(id) else { return };
        (
            entry.spec.clone(),
            entry.token.clone(),
            entry.admitted,
            entry.state.is_terminal(),
        )
    };
    if cancelled_early {
        return;
    }

    let finish = |state: JobState, cached: bool, key: Option<String>| {
        shared.set_state(id, state.clone());
        shared.cache.remove_job(id);
        shared.emit(Event::Terminal {
            id: id.to_string(),
            state,
            cached,
            key,
        });
    };

    // --- spec sanity --------------------------------------------------
    // The SER engine's bit-packed signatures require the vector count
    // to be a positive multiple of 64; anything else would panic the
    // worker thread deep in the solver. Reject it as a job failure
    // (exit 2, like every other invalid input) instead.
    if spec.vectors == 0 || spec.vectors % 64 != 0 {
        finish(
            JobState::Failed {
                exit: 2,
                error: format!(
                    "`vectors` must be a positive multiple of 64, got {}",
                    spec.vectors
                ),
            },
            false,
            None,
        );
        return;
    }

    // --- admission deadline ------------------------------------------
    // Checked at dequeue: a job that waited out its deadline in the
    // queue is rejected without spending any solver time on it. A job
    // that *starts* in time runs to completion regardless.
    if spec
        .deadline_ms
        .is_some_and(|ms| admitted.elapsed() >= Duration::from_millis(ms))
    {
        finish(JobState::Expired, false, None);
        return;
    }

    // --- parse (netlist cache stage) ---------------------------------
    shared.set_state(id, JobState::Parsing);
    shared.emit(Event::Parsing { id: id.to_string() });
    let netlist_key = ResultCache::netlist_key(&spec.source);
    let cached_canonical = shared.cache.lookup_netlist(&netlist_key);
    let from_cache = cached_canonical.is_some();
    let circuit = match parse_job(&spec, cached_canonical) {
        Ok(c) => c,
        Err(e) => {
            let error = e.to_string();
            let exit = minobswin::SolveError::Netlist(e).exit_code();
            finish(JobState::Failed { exit, error }, false, None);
            return;
        }
    };
    if !from_cache {
        let _ = shared
            .cache
            .store_netlist(&netlist_key, &bench_format::write(&circuit));
    }
    let circuit_key = format_digest(circuit_digest(&circuit));
    shared.emit(Event::Parsed {
        id: id.to_string(),
        key: circuit_key.clone(),
        gates: circuit.len(),
        cached: from_cache,
    });

    // --- levelization cache stage ------------------------------------
    let levels = shared.cache.lookup_levels(&circuit_key);
    let levels_cached = levels.is_some();
    let levels = levels.unwrap_or_else(|| {
        let entry = LevelsEntry {
            levels: Levelization::of(&circuit).num_levels(),
            gates: circuit.len(),
            registers: circuit.num_registers(),
        };
        let _ = shared.cache.store_levels(&circuit_key, entry);
        entry
    });
    shared.set_state(id, JobState::Levelized);
    shared.emit(Event::Levelized {
        id: id.to_string(),
        levels: levels.levels,
        cached: levels_cached,
    });

    // --- result cache stage ------------------------------------------
    let result_key = ResultCache::result_key(&circuit_key, config_fingerprint(&spec));
    {
        let mut st = shared.state.lock().expect("daemon state poisoned");
        if let Some(entry) = st.jobs.get_mut(id) {
            entry.result_key = Some(result_key.clone());
        }
    }
    if shared.cache.lookup_result(&result_key).is_some() {
        finish(JobState::Done, true, Some(result_key));
        return;
    }

    // --- solve -------------------------------------------------------
    let budget = SolveBudget::new()
        .with_wall_time(
            spec.time_budget
                .or(shared.defaults.0)
                .map(Duration::from_secs_f64),
        )
        .with_max_iterations(spec.max_iters.or(shared.defaults.1))
        .with_token(token);
    let solver = match spec.closure {
        ClosureChoice::Warm => SolverConfig::default(),
        ClosureChoice::Fresh => SolverConfig::default().with_closure_engine(ClosureEngine::Fresh),
    };
    let sim = ser_engine::sim::SimConfig {
        num_vectors: spec.vectors,
        frames: spec.frames,
        seed: spec.seed,
        threads: spec.threads,
        ..Default::default()
    };

    let checkpoint_prefix = shared.cache.checkpoint_prefix(&result_key);
    let progress = {
        let shared = Arc::clone(shared);
        let id = id.to_string();
        move |event: ExperimentEvent| {
            if let ExperimentEvent::SolveProgress {
                method,
                iterations,
                commits,
            } = event
            {
                shared.set_state(
                    &id,
                    JobState::Running {
                        method,
                        iterations,
                        commits,
                    },
                );
                shared.emit(Event::Iteration {
                    id: id.clone(),
                    method,
                    iterations,
                    commits,
                });
            }
        }
    };
    let cfg = RunConfig::default()
        .with_sim(sim)
        .with_r_min_override(spec.r_min)
        .with_budget(budget)
        .with_checkpoint(Some(checkpoint_prefix.clone()))
        .with_resume(true)
        .with_solver(solver)
        .with_progress(Arc::new(progress));

    let run = Experiment::new(&circuit).config(cfg).run();

    // Either way the solve is over; drop its checkpoints (a finished
    // run must not leave resume bait behind).
    for method in ["minobs", "minobswin"] {
        let _ = netlist::fio::remove_file(&checkpoint_path(&checkpoint_prefix, method));
    }

    let cancel_requested = {
        let st = shared.state.lock().expect("daemon state poisoned");
        st.jobs.get(id).is_some_and(|e| e.cancel_requested)
    };

    let run = match run {
        Ok(run) => run,
        Err(e) => {
            finish(
                JobState::Failed {
                    exit: e.exit_code(),
                    error: e.to_string(),
                },
                false,
                Some(result_key),
            );
            return;
        }
    };

    let method_result = match spec.method {
        Method::MinObs => &run.minobs,
        Method::MinObsWin => &run.minobswin,
    };
    if method_result.stats.degradation.budget_stop.is_some() {
        let state = if cancel_requested {
            JobState::Cancelled
        } else {
            JobState::Degraded
        };
        finish(state, false, Some(result_key));
        return;
    }

    // Clean completion: rebuild the retimed netlist, cache, done.
    let rebuilt = RetimeGraph::from_circuit(&circuit, &Default::default())
        .and_then(|graph| apply_retiming(&circuit, &graph, &method_result.retiming));
    let rebuilt = match rebuilt {
        Ok(c) => c,
        Err(e) => {
            let error = e.to_string();
            let exit = minobswin::SolveError::Retime(e).exit_code();
            finish(JobState::Failed { exit, error }, false, Some(result_key));
            return;
        }
    };
    let bench = bench_format::write(&rebuilt);
    let meta = Json::obj(vec![
        ("exit", Json::num(0.0)),
        ("method", Json::str(spec.method.name())),
        ("circuit_key", Json::str(&circuit_key)),
        ("registers", Json::num(method_result.registers as f64)),
        ("delta_ff", Json::num(method_result.delta_ff)),
        ("ser", Json::num(method_result.ser)),
        ("delta_ser", Json::num(method_result.delta_ser)),
        ("ser_original", Json::num(run.ser_original)),
        ("ser_propprob", Json::num(run.ser_propprob)),
        ("phi", Json::num(run.phi as f64)),
        ("r_min", Json::num(run.r_min as f64)),
        (
            "iterations",
            Json::num(method_result.stats.iterations as f64),
        ),
        ("commits", Json::num(method_result.stats.commits as f64)),
    ]);
    let _ = shared.cache.store_result(&result_key, &bench, &meta);
    finish(JobState::Done, false, Some(result_key));
}

fn parse_job(
    spec: &JobSpec,
    cached_canonical: Option<String>,
) -> Result<Circuit, netlist::NetlistError> {
    if let Some(text) = cached_canonical {
        // The cache stores text this crate wrote; if it somehow fails
        // to parse (truncated disk, manual edit) fall back to the
        // submitted source rather than failing the job.
        if let Ok(c) = bench_format::parse(&text, CANONICAL_NAME) {
            return Ok(c);
        }
    }
    let limits = ParseLimits::default();
    let parsed = spec
        .format
        .parse_str(&spec.source, CANONICAL_NAME, &limits)?;
    // `.bench` carries the canonical name already; the other formats
    // round-trip through it so every format shares one key space.
    Ok(match spec.format {
        NetlistFormat::Bench => parsed,
        NetlistFormat::Blif | NetlistFormat::Verilog => rename_canonical(parsed),
    })
}

/// Round-trips a circuit through `.bench` under the canonical name so
/// every format shares one content-addressed key space.
fn rename_canonical(circuit: Circuit) -> Circuit {
    let text = bench_format::write(&circuit);
    bench_format::parse(&text, CANONICAL_NAME)
        .expect("invariant: bench writer output always re-parses")
}
