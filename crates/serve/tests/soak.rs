//! Daemon soak tests: hammer the queue with the adversarial parser
//! corpus interleaved with real solves, prove every job reaches a
//! terminal state, the drain exits cleanly, the cache serves
//! resubmissions byte-identically, and a killed daemon's persisted
//! jobs are recovered on restart.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use netlist::{bench_format, generator::GeneratorConfig, samples};
use serve::daemon::{Daemon, Event, ServeConfig, SubmitError};
use serve::job::{JobSpec, JobState, NetlistFormat};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_files() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("adversarial corpus directory exists") {
        let path = entry.expect("corpus entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let bytes = std::fs::read(&path).expect("corpus file readable");
        out.push((name, String::from_utf8_lossy(&bytes).into_owned()));
    }
    out.sort();
    assert!(out.len() >= 5, "corpus unexpectedly small: {}", out.len());
    out
}

fn format_of(name: &str) -> NetlistFormat {
    match name.rsplit('.').next() {
        Some("blif") => NetlistFormat::Blif,
        Some("v") => NetlistFormat::Verilog,
        _ => NetlistFormat::Bench,
    }
}

/// A fast real-solve spec: small simulation, the sample circuit or a
/// generated one.
fn real_spec(id: &str, source: &str) -> JobSpec {
    let mut spec = JobSpec::new(id, source, NetlistFormat::Bench);
    spec.vectors = 64;
    spec.frames = 4;
    spec
}

fn wait_terminal(daemon: &Daemon, id: &str, timeout: Duration) -> JobState {
    let deadline = Instant::now() + timeout;
    loop {
        let state = daemon
            .status(id)
            .unwrap_or_else(|| panic!("job `{id}` unknown to the daemon"));
        if state.is_terminal() {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{id}` not terminal after {timeout:?}; last state {state:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The headline soak: ≥32 concurrent jobs mixing every adversarial
/// corpus file (several times over) with real solves on three
/// circuits, all terminal, drain clean, no wedged workers, and a
/// counter-verified byte-identical cache hit on resubmission.
#[test]
fn soak_mixed_corpus_and_real_solves() {
    let mut config = ServeConfig::new(tmpdir("mixed"));
    config.workers = 4;
    config.queue_capacity = 256;
    let daemon = Daemon::start(config).expect("daemon boots");
    let events = daemon.events().expect("event stream");

    let s27 = bench_format::write(&samples::s27_like());
    let gen_a = bench_format::write(
        &GeneratorConfig::new("soak-a", 5)
            .gates(70)
            .registers(14)
            .build(),
    );
    let gen_b = bench_format::write(
        &GeneratorConfig::new("soak-b", 11)
            .gates(90)
            .registers(18)
            .build(),
    );

    let mut ids: Vec<String> = Vec::new();
    // Three rounds of the full adversarial corpus...
    for round in 0..3 {
        for (name, text) in corpus_files() {
            let id = format!("adv-{round}-{name}").replace('.', "_");
            let mut spec = JobSpec::new(&id, &text, format_of(&name));
            spec.vectors = 64;
            spec.frames = 4;
            daemon.submit(spec).expect("corpus job admitted");
            ids.push(id);
        }
    }
    // ...interleaved with real solves (4 per circuit, distinct ids;
    // identical content and config, so later ones may hit the cache).
    for (cname, source) in [("s27", &s27), ("gen-a", &gen_a), ("gen-b", &gen_b)] {
        for k in 0..4 {
            let id = format!("real-{cname}-{k}");
            daemon
                .submit(real_spec(&id, source))
                .expect("real job admitted");
            ids.push(id);
        }
    }
    assert!(ids.len() >= 32, "soak must run ≥32 jobs, got {}", ids.len());

    // Every job reaches a terminal state within the deadline.
    for id in &ids {
        let state = wait_terminal(&daemon, id, Duration::from_secs(300));
        let exit = state.exit_code().expect("terminal state has an exit code");
        if id.starts_with("real-") {
            assert_eq!(state, JobState::Done, "real solve `{id}` failed: {state:?}");
        } else {
            assert!(exit <= 4, "corpus job `{id}` exit out of range: {exit}");
        }
    }

    // Real solves on identical content+config share one result entry:
    // at least the 3 later duplicates of each circuit could hit, and
    // at least one of them must have (the first of each completes
    // before the fourth is picked up in a 4-worker pool... not
    // guaranteed — so assert on the explicit resubmission below
    // instead, and only record the baseline here).
    let hits_before = daemon.cache().counters.result_hits();

    // Resubmit a completed job's content verbatim under a fresh id:
    // must be a counter-verified cache hit with a byte-identical
    // result netlist.
    let (first_bench, _) = daemon
        .result("real-s27-0")
        .expect("completed result readable");
    daemon
        .submit(real_spec("resubmit-s27", &s27))
        .expect("resubmission admitted");
    assert_eq!(
        wait_terminal(&daemon, "resubmit-s27", Duration::from_secs(60)),
        JobState::Done
    );
    assert!(
        daemon.cache().counters.result_hits() > hits_before,
        "resubmission did not hit the result cache"
    );
    let (resubmit_bench, _) = daemon
        .result("resubmit-s27")
        .expect("cached result readable");
    assert_eq!(
        resubmit_bench, first_bench,
        "cache hit must return a byte-identical netlist"
    );

    // Drain: clean exit, no wedged workers, Drained terminates the
    // event stream.
    daemon.drain();
    daemon.close_events();
    let collected: Vec<Event> = events.iter().collect();
    assert!(
        matches!(collected.last(), Some(Event::Drained)),
        "event stream must end with Drained"
    );
    let terminals = collected
        .iter()
        .filter(|e| matches!(e, Event::Terminal { .. }))
        .count();
    assert_eq!(
        terminals,
        ids.len() + 1, // + the resubmission
        "exactly one terminal event per job"
    );
    // Terminal jobs leave no recovery files behind.
    assert!(daemon.cache().scan_jobs().is_empty());
    let _ = std::fs::remove_dir_all(daemon.cache().root());
}

/// A job persisted by a killed daemon is re-enqueued and finished by
/// the next one.
#[test]
fn restart_recovers_persisted_jobs() {
    let dir = tmpdir("restart");
    let spec = real_spec("orphan-1", &bench_format::write(&samples::s27_like()));
    {
        // Simulate the killed daemon: the job file exists, nobody ran it.
        let cache = serve::ResultCache::open(&dir).unwrap();
        cache.persist_job(&spec).unwrap();
    }

    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    let daemon = Daemon::start(config).expect("daemon boots");
    assert_eq!(
        wait_terminal(&daemon, "orphan-1", Duration::from_secs(120)),
        JobState::Done,
        "recovered job must run to completion"
    );
    daemon.drain();
    assert!(daemon.cache().scan_jobs().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: duplicate and malformed ids are rejected
/// outright; a full queue pushes back instead of buffering without
/// bound; draining admits nothing.
#[test]
fn admission_control_rejects_and_backpressures() {
    let mut config = ServeConfig::new(tmpdir("admission"));
    config.workers = 1;
    config.queue_capacity = 1;
    let daemon = Daemon::start(config).expect("daemon boots");

    // A slow job to occupy the single worker: a larger circuit and
    // simulation keep it busy while we probe admission.
    let big = bench_format::write(
        &GeneratorConfig::new("slow", 3)
            .gates(400)
            .registers(64)
            .build(),
    );
    let mut slow = JobSpec::new("slow-1", &big, NetlistFormat::Bench);
    slow.vectors = 1024;
    slow.frames = 10;
    daemon.submit(slow.clone()).expect("slow job admitted");
    // Wait for the worker to pick it up so the queue itself is empty
    // and the capacity probe below is deterministic.
    let deadline = Instant::now() + Duration::from_secs(60);
    while daemon.status("slow-1") == Some(JobState::Queued) {
        assert!(Instant::now() < deadline, "slow job never left the queue");
        std::thread::sleep(Duration::from_millis(10));
    }

    assert_eq!(
        daemon.submit(slow.clone()).unwrap_err(),
        SubmitError::DuplicateId
    );
    let mut bad = slow.clone();
    bad.id = "../escape".into();
    assert!(matches!(
        daemon.submit(bad).unwrap_err(),
        SubmitError::InvalidId(_)
    ));

    // Fill the queue (capacity 1), then expect backpressure. The
    // worker may have already picked up `slow-1`, so the first filler
    // lands in the queue either way.
    let mut filler = slow.clone();
    filler.id = "filler-1".into();
    let mut overflow = slow.clone();
    overflow.id = "overflow-1".into();
    let first = daemon.submit(filler);
    let second = daemon.submit(overflow);
    match (first, second) {
        (Ok(()), Err(SubmitError::QueueFull { capacity: 1 })) => {}
        (Ok(()), Ok(())) => panic!("queue bound of 1 admitted two waiting jobs"),
        other => panic!("unexpected admission outcome: {other:?}"),
    }

    // Cancel everything so the drain is quick.
    for id in ["slow-1", "filler-1"] {
        daemon.cancel(id);
    }
    daemon.drain();
    for id in ["slow-1", "filler-1"] {
        let state = daemon.status(id).unwrap();
        assert!(
            state.is_terminal(),
            "{id} not terminal after drain: {state:?}"
        );
    }
    // Draining daemons admit nothing.
    let mut late = slow.clone();
    late.id = "late-1".into();
    assert_eq!(daemon.submit(late).unwrap_err(), SubmitError::Draining);
    let _ = std::fs::remove_dir_all(daemon.cache().root());
}

/// Cancelling a running job terminates it as `Cancelled` (exit 4).
#[test]
fn cancel_running_job() {
    let mut config = ServeConfig::new(tmpdir("cancel"));
    config.workers = 1;
    let daemon = Daemon::start(config).expect("daemon boots");

    let big = bench_format::write(
        &GeneratorConfig::new("cancelme", 7)
            .gates(400)
            .registers(64)
            .build(),
    );
    let mut spec = JobSpec::new("victim", &big, NetlistFormat::Bench);
    spec.vectors = 1024;
    spec.frames = 10;
    daemon.submit(spec).expect("job admitted");

    // Wait until it leaves the queue, then cancel.
    let deadline = Instant::now() + Duration::from_secs(60);
    while daemon.status("victim") == Some(JobState::Queued) {
        assert!(Instant::now() < deadline, "job never left the queue");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(daemon.cancel("victim"));
    let state = wait_terminal(&daemon, "victim", Duration::from_secs(120));
    assert_eq!(state, JobState::Cancelled);
    assert_eq!(state.exit_code(), Some(4));
    assert!(
        !daemon.cancel("victim"),
        "terminal jobs cannot be cancelled"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(daemon.cache().root());
}
