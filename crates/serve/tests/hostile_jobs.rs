//! Property tests over hostile `jobs/` directory contents: whatever a
//! crashed daemon, a stray editor, or disk corruption leaves behind,
//! `scan_jobs` must never panic and must return exactly the valid
//! specs, and `fsck` must quarantine precisely the malformed job
//! files while leaving the valid ones in service.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use serve::job::{JobSpec, NetlistFormat};
use serve::ResultCache;

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("serve-hostile-{tag}-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One hostile occupant of `jobs/`, decoded from a `(kind, nonce)`
/// draw. `Valid`/`LegacyValid` must survive every pass; everything
/// else must be skipped by `scan_jobs` and quarantined (or, for
/// directories, left alone) by `fsck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Occupant {
    /// A sealed, well-formed spec — the files this build writes.
    Valid,
    /// A headerless but well-formed spec — what pre-sealing builds
    /// wrote; still honored.
    LegacyValid,
    /// JSON cut off mid-object (a torn write without a seal).
    TruncatedJson,
    /// A seal whose digest does not match its payload (bit rot).
    ForgedSeal,
    /// Zero bytes (an interrupted create).
    Empty,
    /// Arbitrary non-JSON noise (content varied by the nonce).
    Noise,
    /// A *directory* named like a job file.
    Directory,
}

const KINDS: [Occupant; 7] = [
    Occupant::Valid,
    Occupant::LegacyValid,
    Occupant::TruncatedJson,
    Occupant::ForgedSeal,
    Occupant::Empty,
    Occupant::Noise,
    Occupant::Directory,
];

fn spec_for(id: &str) -> JobSpec {
    JobSpec::new(id, "INPUT(a)\nOUTPUT(a)\n", NetlistFormat::Bench)
}

/// Plants one occupant as `jobs/<id>.job` and reports whether
/// `scan_jobs` must return it.
fn plant(cache: &ResultCache, id: &str, occupant: Occupant, nonce: u64) -> bool {
    let path = cache.root().join("jobs").join(format!("{id}.job"));
    match occupant {
        Occupant::Valid => {
            cache.persist_job(&spec_for(id)).expect("persist succeeds");
            true
        }
        Occupant::LegacyValid => {
            fs::write(&path, spec_for(id).to_json().to_string()).unwrap();
            true
        }
        Occupant::TruncatedJson => {
            let full = spec_for(id).to_json().to_string();
            // Cut anywhere strictly inside the object.
            let cut = 1 + (nonce as usize % (full.len() - 2));
            fs::write(&path, &full[..cut]).unwrap();
            false
        }
        Occupant::ForgedSeal => {
            fs::write(
                &path,
                format!("#%seal fnv1a-v1:{nonce:016x}\n{}", spec_for(id).to_json()),
            )
            .unwrap();
            false
        }
        Occupant::Empty => {
            fs::write(&path, "").unwrap();
            false
        }
        Occupant::Noise => {
            fs::write(&path, format!("{{noise {nonce:x} \u{1}\u{2}")).unwrap();
            false
        }
        Occupant::Directory => {
            fs::create_dir_all(&path).unwrap();
            false
        }
    }
}

proptest! {
    /// `scan_jobs` over any mix of hostile occupants never panics and
    /// returns exactly the valid specs, in sorted id order.
    #[test]
    fn scan_jobs_skips_precisely_the_malformed(
        draws in prop::collection::vec((0u64..7, 1u64..u64::MAX), 0usize..12),
        case in 0u64..u64::MAX,
    ) {
        let dir = tmpdir("scan", case);
        let cache = ResultCache::open(&dir).unwrap();
        let mut expected: Vec<String> = Vec::new();
        for (i, (kind, nonce)) in draws.iter().enumerate() {
            let id = format!("job-{i:02}");
            if plant(&cache, &id, KINDS[*kind as usize], *nonce) {
                expected.push(id);
            }
        }
        let scanned: Vec<String> = cache.scan_jobs().into_iter().map(|s| s.id).collect();
        prop_assert_eq!(scanned, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    /// `fsck` quarantines exactly the malformed job *files* (never the
    /// valid or legacy ones, never directories), and afterwards
    /// `scan_jobs` still returns every valid spec.
    #[test]
    fn fsck_quarantines_precisely_the_malformed(
        draws in prop::collection::vec((0u64..7, 1u64..u64::MAX), 0usize..12),
        case in 0u64..u64::MAX,
    ) {
        let dir = tmpdir("fsck", case);
        let cache = ResultCache::open(&dir).unwrap();
        let mut valid = 0usize;
        let mut quarantinable = 0usize;
        for (i, (kind, nonce)) in draws.iter().enumerate() {
            let id = format!("job-{i:02}");
            let kind = KINDS[*kind as usize];
            match (plant(&cache, &id, kind, *nonce), kind) {
                (true, _) => valid += 1,
                (false, Occupant::Directory) => {} // left alone
                (false, _) => quarantinable += 1,
            }
        }
        let report = cache.fsck();
        prop_assert_eq!(report.quarantined, quarantinable);
        prop_assert_eq!(report.tmp_removed, 0);
        prop_assert_eq!(cache.scan_jobs().len(), valid);
        // Idempotent: a second pass finds nothing left to do.
        prop_assert_eq!(cache.fsck().quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
