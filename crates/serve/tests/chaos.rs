//! Chaos soak: the daemon under a seeded filesystem fault plan
//! (ENOSPC, torn writes, bit flips, orphaned tmp files, read EIO)
//! must complete every job with results byte-identical to a
//! fault-free run, quarantine every corrupted entry instead of
//! serving it, keep a capped cache under its budget with the eviction
//! counters ticking, and come back healthy after a restart.
//!
//! The fault plan is process-global (`netlist::fio`), so every test
//! here serializes on one lock and clears the plan on exit — even the
//! tests that inject no faults, which must not run concurrently with
//! one that does.
//!
//! Cache directories live under `target/chaos-cache/` and are removed
//! on success only: a failing run leaves its quarantine directory
//! behind for CI to upload as an artifact.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use netlist::digest::{circuit_digest, format_digest};
use netlist::fio::{self, FaultPlan};
use netlist::{bench_format, generator::GeneratorConfig, samples};
use serve::daemon::{Daemon, ServeConfig};
use serve::job::{JobSpec, JobState, NetlistFormat};
use serve::{config_fingerprint, ResultCache};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn lock_plan() -> MutexGuard<'static, ()> {
    // A previous test's panic (with the plan already cleared by the
    // drop guard) must not poison the rest of the suite.
    PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears the global fault plan when the test exits, pass or fail.
struct ClearPlanOnDrop;

impl Drop for ClearPlanOnDrop {
    fn drop(&mut self) {
        fio::clear();
    }
}

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/chaos-cache")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The soak workload: 3 circuits × 12 stimulus seeds = 36 jobs, all
/// distinct result keys, each small enough to solve in well under a
/// second.
fn chaos_specs() -> Vec<JobSpec> {
    let sources = [
        ("s27", bench_format::write(&samples::s27_like())),
        (
            "gen-a",
            bench_format::write(
                &GeneratorConfig::new("chaos-a", 5)
                    .gates(60)
                    .registers(12)
                    .build(),
            ),
        ),
        (
            "gen-b",
            bench_format::write(
                &GeneratorConfig::new("chaos-b", 9)
                    .gates(80)
                    .registers(16)
                    .build(),
            ),
        ),
    ];
    let mut specs = Vec::new();
    for (name, source) in &sources {
        for k in 0..12u64 {
            let mut spec = JobSpec::new(format!("{name}-{k}"), source, NetlistFormat::Bench);
            spec.vectors = 64;
            spec.frames = 4;
            spec.seed = 0xBEEF + k;
            specs.push(spec);
        }
    }
    assert_eq!(specs.len(), 36);
    specs
}

fn wait_terminal(daemon: &Daemon, id: &str, timeout: Duration) -> JobState {
    let deadline = Instant::now() + timeout;
    loop {
        let state = daemon
            .status(id)
            .unwrap_or_else(|| panic!("job `{id}` unknown to the daemon"));
        if state.is_terminal() {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{id}` not terminal after {timeout:?}; last state {state:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn start_daemon(dir: &PathBuf, workers: usize) -> Daemon {
    let mut config = ServeConfig::new(dir);
    config.workers = workers;
    config.queue_capacity = 128;
    Daemon::start(config).expect("daemon boots")
}

/// The headline soak. Phase 1 runs the 36-job workload fault-free and
/// records every result netlist. Phase 2 reruns it on a fresh cache
/// under a seeded fault plan covering every category: all 36 jobs must
/// still complete, every readable result must be byte-identical, and
/// any result whose stored bytes were corrupted must be quarantined on
/// read — never served — and recompute byte-identically. Phase 3
/// proves the survived cache fscks clean.
#[test]
fn chaos_soak_matches_fault_free_run_byte_for_byte() {
    let _lock = lock_plan();
    let specs = chaos_specs();

    // --- phase 1: fault-free baseline --------------------------------
    let baseline_dir = chaos_dir("baseline");
    let daemon = start_daemon(&baseline_dir, 4);
    for spec in &specs {
        daemon.submit(spec.clone()).expect("baseline job admitted");
    }
    let mut baseline: HashMap<String, String> = HashMap::new();
    for spec in &specs {
        assert_eq!(
            wait_terminal(&daemon, &spec.id, Duration::from_secs(300)),
            JobState::Done,
            "baseline `{}` must complete",
            spec.id
        );
    }
    for spec in &specs {
        let (bench, _) = daemon.result(&spec.id).expect("baseline result readable");
        baseline.insert(spec.id.clone(), bench);
    }
    daemon.drain();

    // --- phase 2: the same workload under injected faults -------------
    let _clear = ClearPlanOnDrop;
    fio::install(
        FaultPlan::parse("seed=0xC0FFEE,enospc=7,tear=5,flip=9,orphan=11,eio-read=13")
            .expect("chaos plan parses"),
    );
    fio::reset_stats();
    let soak_dir = chaos_dir("soak");
    let daemon = start_daemon(&soak_dir, 4);
    for spec in &specs {
        daemon.submit(spec.clone()).expect("chaos job admitted");
    }
    for spec in &specs {
        let state = wait_terminal(&daemon, &spec.id, Duration::from_secs(300));
        assert_eq!(
            state,
            JobState::Done,
            "chaos job `{}` must complete despite injected faults",
            spec.id
        );
    }
    let stats = fio::stats();
    assert!(stats.enospc_injected > 0, "no ENOSPC injected: {stats:?}");
    assert!(
        stats.torn_injected > 0,
        "no torn writes injected: {stats:?}"
    );
    assert!(stats.flips_injected > 0, "no bit flips injected: {stats:?}");
    assert!(stats.orphans_injected > 0, "no orphans injected: {stats:?}");
    assert!(stats.eio_injected > 0, "no read EIO injected: {stats:?}");

    // Stop injecting before comparing, so the byte-identity phase
    // exercises verify-on-read against real on-disk damage only.
    fio::clear();
    let mut healed = 0usize;
    for spec in &specs {
        match daemon.result(&spec.id) {
            Some((bench, _)) => assert_eq!(
                bench, baseline[&spec.id],
                "chaos result `{}` diverged from the fault-free run",
                spec.id
            ),
            None => {
                // The stored result was corrupted by injection (or
                // never landed, under ENOSPC/orphan): the read path
                // refused to serve it. Resubmitting the identical
                // content must recompute the identical bytes.
                let mut again = spec.clone();
                again.id = format!("heal-{}", spec.id);
                daemon.submit(again.clone()).expect("heal job admitted");
                assert_eq!(
                    wait_terminal(&daemon, &again.id, Duration::from_secs(300)),
                    JobState::Done
                );
                let (bench, _) = daemon.result(&again.id).expect("healed result readable");
                assert_eq!(
                    bench, baseline[&spec.id],
                    "recomputed result `{}` diverged from the fault-free run",
                    again.id
                );
                healed += 1;
            }
        }
    }
    println!(
        "chaos soak: {} fault(s) injected ({stats:?}), {healed} result(s) recomputed, \
         {} entr(y/ies) quarantined",
        stats.total_injected(),
        daemon.cache().counters.quarantined()
    );
    daemon.drain();

    // --- phase 3: the survived cache fscks clean ----------------------
    let cache = ResultCache::open(&soak_dir).expect("cache reopens");
    let first = cache.fsck();
    let second = cache.fsck();
    assert_eq!(
        (second.tmp_removed, second.quarantined),
        (0, 0),
        "fsck must be idempotent (first pass: {first:?})"
    );
    assert!(second.entries > 0, "the healthy entries survive fsck");

    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&soak_dir);
}

/// Deterministic verify-on-read: flip one byte of a stored result on
/// disk; resubmitting the identical job must quarantine the damaged
/// entry (counter + preserved file), recompute, and return bytes
/// identical to the pristine result.
#[test]
fn targeted_corruption_is_quarantined_and_recomputed() {
    let _lock = lock_plan();
    let dir = chaos_dir("targeted");
    let daemon = start_daemon(&dir, 2);

    let source = bench_format::write(&samples::s27_like());
    let mut spec = JobSpec::new("victim", &source, NetlistFormat::Bench);
    spec.vectors = 64;
    spec.frames = 4;
    daemon.submit(spec.clone()).expect("job admitted");
    assert_eq!(
        wait_terminal(&daemon, "victim", Duration::from_secs(120)),
        JobState::Done
    );
    let (pristine, _) = daemon.result("victim").expect("pristine result readable");

    // Compute the result key the daemon used and damage its entry.
    let circuit = bench_format::parse(&source, "serve").expect("canonical source parses");
    let result_key = ResultCache::result_key(
        &format_digest(circuit_digest(&circuit)),
        config_fingerprint(&spec),
    );
    let entry = dir.join("result").join(format!("{result_key}.bench"));
    let mut bytes = std::fs::read(&entry).expect("result entry exists on disk");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&entry, &bytes).expect("corruption lands");

    let mut again = spec.clone();
    again.id = "victim-again".into();
    daemon.submit(again).expect("resubmission admitted");
    assert_eq!(
        wait_terminal(&daemon, "victim-again", Duration::from_secs(120)),
        JobState::Done
    );
    let (recomputed, _) = daemon.result("victim-again").expect("recomputed readable");
    assert_eq!(
        recomputed, pristine,
        "recompute must match the pristine bytes"
    );
    assert!(
        daemon.cache().counters.quarantined() >= 1,
        "the damaged entry must be counted as quarantined"
    );
    let quarantined: Vec<_> = std::fs::read_dir(daemon.cache().quarantine_dir())
        .expect("quarantine dir exists")
        .filter_map(Result::ok)
        .collect();
    assert!(
        !quarantined.is_empty(),
        "the damaged bytes must be preserved in quarantine/"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A capped cache never exceeds its budget across a workload much
/// larger than the cap, and the eviction counters prove LRU ran.
#[test]
fn capped_cache_stays_under_budget_with_evictions() {
    let _lock = lock_plan();
    let dir = chaos_dir("capped");
    let budget: u64 = 16 * 1024;
    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    config.queue_capacity = 64;
    config.cache_max_bytes = Some(budget);
    let daemon = Daemon::start(config).expect("daemon boots");

    // 12 distinct circuits, each leaving netlist + levels + result
    // entries behind; far more than 16 KiB in aggregate.
    let mut ids = Vec::new();
    for k in 0..12u64 {
        let source = bench_format::write(
            &GeneratorConfig::new(format!("cap-{k}"), 20 + k)
                .gates(60)
                .registers(12)
                .build(),
        );
        let mut spec = JobSpec::new(format!("cap-{k}"), &source, NetlistFormat::Bench);
        spec.vectors = 64;
        spec.frames = 4;
        daemon.submit(spec).expect("job admitted");
        ids.push(format!("cap-{k}"));
    }
    for id in &ids {
        assert_eq!(
            wait_terminal(&daemon, id, Duration::from_secs(300)),
            JobState::Done,
            "capped-cache job `{id}` must still complete"
        );
    }
    daemon.drain();
    assert!(
        daemon.cache().counters.evictions() > 0,
        "a 16 KiB budget under this workload must evict"
    );
    let used = daemon.cache().stage_bytes();
    assert!(
        used <= budget,
        "stage directories over budget after drain: {used} > {budget}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A daemon that lived through an orphan-heavy fault plan (every
/// other write abandons its `.tmp` file) leaves debris behind; the
/// next daemon's startup fsck must clean it and serve jobs normally.
#[test]
fn restart_after_chaos_heals_and_serves() {
    let _lock = lock_plan();
    let dir = chaos_dir("restart");
    let source = bench_format::write(&samples::s27_like());

    {
        let _clear = ClearPlanOnDrop;
        fio::install(FaultPlan::parse("seed=7,orphan=2,tear=3").expect("plan parses"));
        fio::reset_stats();
        let daemon = start_daemon(&dir, 2);
        for k in 0..4 {
            let mut spec = JobSpec::new(format!("pre-{k}"), &source, NetlistFormat::Bench);
            spec.vectors = 64;
            spec.frames = 4;
            spec.seed = k;
            daemon.submit(spec).expect("job admitted");
        }
        for k in 0..4 {
            wait_terminal(&daemon, &format!("pre-{k}"), Duration::from_secs(120));
        }
        daemon.drain();
        assert!(fio::stats().total_injected() > 0, "the plan never fired");
        fio::clear();
    }

    // The second daemon fscks at startup, then serves normally.
    let daemon = start_daemon(&dir, 2);
    for stage in ["netlist", "levels", "result", "jobs"] {
        let leftovers: Vec<_> = std::fs::read_dir(dir.join(stage))
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.to_string_lossy().ends_with(".tmp"))
                    .collect()
            })
            .unwrap_or_default();
        assert!(
            leftovers.is_empty(),
            "startup fsck left tmp orphans in {stage}/: {leftovers:?}"
        );
    }
    let mut spec = JobSpec::new("post-restart", &source, NetlistFormat::Bench);
    spec.vectors = 64;
    spec.frames = 4;
    daemon.submit(spec).expect("job admitted after restart");
    assert_eq!(
        wait_terminal(&daemon, "post-restart", Duration::from_secs(120)),
        JobState::Done,
        "the healed daemon must serve jobs"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt solver checkpoint planted where the daemon will try to
/// resume must be detected by its seal, set aside, and solved from
/// scratch — still `Done`, never a wrong resume and never a crash.
#[test]
fn corrupt_checkpoint_self_heals_to_done() {
    let _lock = lock_plan();
    let dir = chaos_dir("ckpt");
    let daemon = start_daemon(&dir, 1);

    let source = bench_format::write(&samples::s27_like());
    let mut spec = JobSpec::new("resume-me", &source, NetlistFormat::Bench);
    spec.vectors = 64;
    spec.frames = 4;

    // Plant a seal-mismatched checkpoint exactly where this job's
    // solve will look for one (after startup fsck, which would
    // otherwise quarantine it first).
    let circuit = bench_format::parse(&source, "serve").expect("canonical source parses");
    let result_key = ResultCache::result_key(
        &format_digest(circuit_digest(&circuit)),
        config_fingerprint(&spec),
    );
    let ckpt = dir
        .join("jobs")
        .join(format!("{result_key}.minobswin.ckpt"));
    std::fs::write(
        &ckpt,
        "#%seal fnv1a-v1:0000000000000000\nnot a checkpoint at all\n",
    )
    .expect("corrupt checkpoint planted");

    daemon.submit(spec).expect("job admitted");
    assert_eq!(
        wait_terminal(&daemon, "resume-me", Duration::from_secs(120)),
        JobState::Done,
        "a corrupt checkpoint must degrade to a fresh solve, not a failure"
    );
    assert!(
        daemon.result("resume-me").is_some(),
        "the fresh solve's result must be readable"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A job whose `deadline_ms` elapses while it waits behind a slow job
/// is rejected at dequeue as `Expired` (exit 5); a job with a generous
/// deadline runs normally.
#[test]
fn queued_past_deadline_expires_with_exit_5() {
    let _lock = lock_plan();
    let dir = chaos_dir("deadline");
    let daemon = start_daemon(&dir, 1);

    // Occupy the single worker long enough for the deadline to pass.
    let big = bench_format::write(
        &GeneratorConfig::new("slow", 3)
            .gates(400)
            .registers(64)
            .build(),
    );
    let mut slow = JobSpec::new("slow-1", &big, NetlistFormat::Bench);
    slow.vectors = 1024;
    slow.frames = 10;
    daemon.submit(slow).expect("slow job admitted");
    let deadline = Instant::now() + Duration::from_secs(60);
    while daemon.status("slow-1") == Some(JobState::Queued) {
        assert!(Instant::now() < deadline, "slow job never left the queue");
        std::thread::sleep(Duration::from_millis(10));
    }

    let source = bench_format::write(&samples::s27_like());
    let mut doomed = JobSpec::new("doomed", &source, NetlistFormat::Bench);
    doomed.vectors = 64;
    doomed.frames = 4;
    doomed.deadline_ms = Some(1);
    daemon.submit(doomed).expect("doomed job admitted");

    let mut patient = JobSpec::new("patient", &source, NetlistFormat::Bench);
    patient.vectors = 64;
    patient.frames = 4;
    patient.deadline_ms = Some(600_000);
    daemon.submit(patient).expect("patient job admitted");

    daemon.cancel("slow-1");
    let state = wait_terminal(&daemon, "doomed", Duration::from_secs(120));
    assert_eq!(state, JobState::Expired, "1 ms deadline must expire");
    assert_eq!(state.exit_code(), Some(5));
    assert_eq!(state.name(), "expired");
    assert_eq!(
        wait_terminal(&daemon, "patient", Duration::from_secs(120)),
        JobState::Done,
        "a generous deadline must not expire"
    );
    daemon.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
