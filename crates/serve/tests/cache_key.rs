//! Property tests over the result-cache key: any configuration change
//! that can alter the solve outcome must change the config
//! fingerprint, while knobs that are bit-identical by construction
//! (thread count) and identity fields (job id) must not.

use proptest::prelude::*;
use serve::job::{ClosureChoice, JobSpec, Method, NetlistFormat};
use serve::{config_fingerprint, ResultCache};

fn base_spec() -> JobSpec {
    JobSpec::new("base", "INPUT(a)\nOUTPUT(a)\n", NetlistFormat::Bench)
}

proptest! {
    /// Changing the iteration budget always changes the key.
    #[test]
    fn max_iters_always_changes_key(n in 1usize..1_000_000) {
        let base = base_spec();
        let mut changed = base.clone();
        changed.max_iters = Some(n);
        prop_assert_ne!(config_fingerprint(&changed), config_fingerprint(&base));
    }

    /// Changing the wall-clock budget always changes the key, and two
    /// distinct budgets never collide with each other.
    #[test]
    fn time_budget_always_changes_key(a in 1u32..100_000, b in 1u32..100_000) {
        let base = base_spec();
        let mut with_a = base.clone();
        with_a.time_budget = Some(f64::from(a) / 10.0);
        let mut with_b = base.clone();
        with_b.time_budget = Some(f64::from(b) / 10.0);
        prop_assert_ne!(config_fingerprint(&with_a), config_fingerprint(&base));
        if a != b {
            prop_assert_ne!(config_fingerprint(&with_a), config_fingerprint(&with_b));
        } else {
            prop_assert_eq!(config_fingerprint(&with_a), config_fingerprint(&with_b));
        }
    }

    /// Changing the `R_min` override always changes the key — even to
    /// values the §V derivation might have chosen anyway.
    #[test]
    fn r_min_always_changes_key(r in -1_000i64..1_000) {
        let base = base_spec();
        let mut changed = base.clone();
        changed.r_min = Some(r);
        prop_assert_ne!(config_fingerprint(&changed), config_fingerprint(&base));
    }

    /// The closure engine, method, and simulation shape are all part
    /// of the key.
    #[test]
    fn solver_knobs_always_change_key(vectors in 64usize..8192, seed in 0u64..u64::MAX) {
        let base = base_spec();

        let mut closure = base.clone();
        closure.closure = ClosureChoice::Fresh;
        prop_assert_ne!(config_fingerprint(&closure), config_fingerprint(&base));

        let mut method = base.clone();
        method.method = Method::MinObs;
        prop_assert_ne!(config_fingerprint(&method), config_fingerprint(&base));

        let mut sim = base.clone();
        sim.vectors = vectors;
        sim.seed = seed;
        if vectors != base.vectors || seed != base.seed {
            prop_assert_ne!(config_fingerprint(&sim), config_fingerprint(&base));
        }
    }

    /// Identity and execution-placement fields are excluded: the same
    /// circuit and config solved under any job id and thread count
    /// shares one cache entry (results are bit-identical across thread
    /// counts by the PR-5 guarantee).
    #[test]
    fn id_and_threads_never_change_key(threads in 0usize..64, tag in 0u32..1_000_000) {
        let base = base_spec();
        let mut changed = base.clone();
        changed.id = format!("other-{tag}");
        changed.threads = threads;
        prop_assert_eq!(config_fingerprint(&changed), config_fingerprint(&base));
    }

    /// The full result key separates distinct circuits even under an
    /// identical config fingerprint.
    #[test]
    fn result_key_separates_circuits(seed in 0u64..5_000) {
        let base = base_spec();
        let fp = config_fingerprint(&base);
        let a = ResultCache::netlist_key("INPUT(a)\nOUTPUT(a)\n");
        let b = ResultCache::netlist_key(&format!("INPUT(a)\nOUTPUT(a)\n# {seed}\n"));
        prop_assert_ne!(
            ResultCache::result_key(&a, fp),
            ResultCache::result_key(&b, fp)
        );
    }
}
