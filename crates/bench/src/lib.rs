//! # bench_harness — reproduction harness for the paper's evaluation
//!
//! Everything needed to regenerate the paper's Table I and the figure
//! phenomena: synthetic twins of the 21 ISCAS89/ITC99 circuits, the
//! per-circuit experiment runner (from the `minobswin` crate), table
//! formatting and summary statistics.
//!
//! Run the headline experiment with:
//!
//! ```text
//! cargo run -p minobswin-bench --release --bin table1 -- --scale 16
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ser_bench;
pub mod solver_bench;
pub mod table1;

pub use table1::{format_table, run_table1, summarize, Table1Options, Table1Row, Table1Summary};
