//! # bench_harness — reproduction harness for the paper's evaluation
//!
//! Everything needed to regenerate the paper's Table I and the figure
//! phenomena: synthetic twins of the 21 ISCAS89/ITC99 circuits, the
//! per-circuit experiment runner (from the `minobswin` crate), table
//! formatting and summary statistics.
//!
//! Run the headline experiment with:
//!
//! ```text
//! cargo run -p minobswin-bench --release --bin table1 -- --scale 16
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ser_bench;
pub mod solver_bench;
pub mod table1;

pub use table1::{format_table, run_table1, summarize, Table1Options, Table1Row, Table1Summary};

/// Display label for a generated-circuit size: exact multiples of 1000
/// read as `10k`-style suffixes (the tier names CI gates on), anything
/// else as the raw count. `generated_instance` names derive from this,
/// so the committed `BENCH_*.json` baselines and the CI diff scripts
/// agree on one spelling.
pub fn gates_label(gates: usize) -> String {
    if gates >= 1000 && gates.is_multiple_of(1000) {
        format!("{}k", gates / 1000)
    } else {
        gates.to_string()
    }
}

/// Resolves a named benchmark size tier to its generated gate counts.
/// `small` keeps the subcommand's historical default list (passed in by
/// the caller); `large` is the CI-gated 10k-gate tier and `xlarge` the
/// 50k-gate stress tier.
///
/// # Errors
///
/// An unknown tier name, echoed with the accepted spellings.
pub fn tier_gates(tier: &str, small: Vec<usize>) -> Result<Vec<usize>, String> {
    match tier {
        "small" => Ok(small),
        "large" | "10k" => Ok(vec![10_000]),
        "xlarge" | "50k" => Ok(vec![50_000]),
        other => Err(format!(
            "unknown tier `{other}` (use small, large/10k or xlarge/50k)"
        )),
    }
}

#[cfg(test)]
mod tier_tests {
    use super::*;

    #[test]
    fn labels_use_k_suffix_for_round_thousands() {
        assert_eq!(gates_label(300), "300");
        assert_eq!(gates_label(1500), "1500");
        assert_eq!(gates_label(1000), "1k");
        assert_eq!(gates_label(10_000), "10k");
        assert_eq!(gates_label(50_000), "50k");
    }

    #[test]
    fn tiers_resolve_gate_lists() {
        assert_eq!(tier_gates("small", vec![300]).unwrap(), vec![300]);
        assert_eq!(tier_gates("large", vec![300]).unwrap(), vec![10_000]);
        assert_eq!(tier_gates("10k", vec![]).unwrap(), vec![10_000]);
        assert_eq!(tier_gates("xlarge", vec![]).unwrap(), vec![50_000]);
        assert!(tier_gates("mega", vec![]).is_err());
    }
}
