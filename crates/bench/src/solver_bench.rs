//! Benchmark of the solver's incremental engines against their
//! from-scratch counterparts: the dirty-region constraint checker vs
//! full recomputes, and the warm-started closure engine vs fresh Dinic
//! builds, on sample and generated circuits. Shared by the
//! `retimer bench-solve` subcommand and the `solver` criterion bench;
//! the JSON it emits (`BENCH_solver.json`) is the tracked baseline.

use std::fmt::Write as _;
use std::time::Instant;

use minobswin::algorithm::{SolverConfig, SolverStats};
use minobswin::closure_inc::ClosureEngine;
use minobswin::init::InitConfig;
use minobswin::{Problem, SolveBudget, SolveError, SolverSession, Supervision};
use netlist::generator::GeneratorConfig;
use netlist::rng::Xoshiro256;
use netlist::{samples, Circuit, DelayModel};
use retime::{ElwParams, RetimeGraph, Retiming};

/// A prepared solver instance: graph, problem and a feasible start.
pub struct BenchInstance {
    /// Display name of the circuit.
    pub name: String,
    /// The retiming graph.
    pub graph: RetimeGraph,
    /// The MinObsWin instance over it.
    pub problem: Problem,
    /// The §V starting retiming.
    pub initial: Retiming,
}

/// Builds an instance from a circuit: §V initialization plus synthetic
/// observability counts (the solver only sees the `b` coefficients, so
/// no simulation is needed for a solver benchmark).
///
/// # Errors
///
/// Propagates graph-construction and initialization failures.
pub fn prepare(name: &str, circuit: &Circuit) -> Result<BenchInstance, SolveError> {
    let graph = RetimeGraph::from_circuit(circuit, &DelayModel::default())?;
    let init = InitConfig::default().initialize(&graph)?;
    let params = ElwParams::with_phi(init.phi);
    let mut rng = Xoshiro256::seed_from_u64(7);
    let counts: Vec<i64> = (0..graph.num_vertices())
        .map(|i| {
            if i == 0 {
                1024
            } else {
                rng.gen_range(1025) as i64
            }
        })
        .collect();
    let problem = Problem::from_observability_counts(&graph, &counts, params, init.r_min);
    Ok(BenchInstance {
        name: name.to_string(),
        graph,
        problem,
        initial: init.retiming,
    })
}

/// The repo's sample circuits, sized well below the generated set.
pub fn sample_instances() -> Vec<BenchInstance> {
    [
        ("pipeline_24x4", samples::pipeline(24, 4)),
        ("s27_like", samples::s27_like()),
        ("two_stage_loop", samples::two_stage_loop()),
    ]
    .into_iter()
    .filter_map(|(name, c)| prepare(name, &c).ok())
    .collect()
}

/// A generated circuit of roughly `gates` gates (the "medium" class
/// the ≥5× edge-relaxation claim is made on).
///
/// # Errors
///
/// See [`prepare`].
pub fn generated_instance(gates: usize) -> Result<BenchInstance, SolveError> {
    let circuit = generated_circuit(gates);
    prepare(
        &format!("generated_{}", crate::gates_label(gates)),
        &circuit,
    )
}

/// The deterministic generated circuit behind [`generated_instance`]
/// (and the same recipe the SER benchmark and the committed
/// `generated_10k` fixture use): ~`gates` gates over a `gates/5`
/// register file at fanin density 2.2.
pub fn generated_circuit(gates: usize) -> Circuit {
    GeneratorConfig::new("bench", gates as u64)
        .gates(gates)
        .registers(gates / 5)
        .inputs(12)
        .outputs(12)
        .target_edges(gates * 22 / 10)
        .build()
}

/// One engine's measured solver run.
pub struct EngineRun {
    /// Wall-clock seconds inside the solver.
    pub solve_seconds: f64,
    /// The objective gain (must agree across engines).
    pub objective_gain: i64,
    /// Full run counters, including [`SolverStats::perf`].
    pub stats: SolverStats,
}

/// Both engines' runs over one instance.
pub struct BenchRecord {
    /// Circuit name.
    pub name: String,
    /// Retiming-graph vertices (including the host).
    pub vertices: usize,
    /// Retiming-graph edges.
    pub edges: usize,
    /// The run with the incremental engines (default configuration:
    /// dirty-region checker + warm-started closure).
    pub incremental: EngineRun,
    /// The run with both incremental engines disabled (from-scratch
    /// checks, fresh Dinic per closure call).
    pub full: EngineRun,
    /// Whether either engine's run was truncated by the solve budget.
    /// Degraded rows are not comparable to converged ones: their
    /// counters reflect wherever the budget happened to stop, so CI
    /// diff scripts must never compare a degraded row against a
    /// converged baseline (or vice versa).
    pub degraded: bool,
}

impl BenchRecord {
    /// How many times fewer edges per check the incremental engine
    /// relaxes, compared to the full engine (higher is better).
    pub fn edge_relaxation_ratio(&self) -> f64 {
        let inc = self.incremental.stats.perf.edges_per_check();
        let full = self.full.stats.perf.edges_per_check();
        if inc <= 0.0 {
            return 0.0;
        }
        full / inc
    }

    /// How many times fewer arcs per closure call the warm-started
    /// engine touches, compared to a fresh Dinic build (higher is
    /// better).
    pub fn closure_arc_ratio(&self) -> f64 {
        let warm = self.incremental.stats.perf.arcs_per_closure();
        let fresh = self.full.stats.perf.arcs_per_closure();
        if warm <= 0.0 {
            return 0.0;
        }
        fresh / warm
    }
}

fn timed_run(
    instance: &BenchInstance,
    config: SolverConfig,
    budget: &SolveBudget,
) -> Result<EngineRun, SolveError> {
    // Fresh token per run: the limits are shared but a deadline expiry
    // in one engine's run must not cancel the other's.
    let per_run = SolveBudget::new()
        .with_wall_time(budget.wall_time)
        .with_max_iterations(budget.max_iterations)
        .with_max_memory_estimate(budget.max_memory_estimate);
    let t0 = Instant::now();
    let outcome = SolverSession::new(&instance.graph, &instance.problem)
        .config(config)
        .initial(instance.initial.clone())
        .run_supervised(Supervision::new().budget(per_run))?;
    let solution = outcome.into_solution();
    Ok(EngineRun {
        solve_seconds: t0.elapsed().as_secs_f64(),
        objective_gain: solution.objective_gain,
        stats: solution.stats,
    })
}

/// Runs both engines over one instance with an unlimited budget.
///
/// # Errors
///
/// Propagates solver failures (the prepared start is feasible, so this
/// indicates a bug).
///
/// # Panics
///
/// Panics if the two engines disagree on the objective gain — they are
/// required to be bit-identical.
pub fn measure(instance: &BenchInstance) -> Result<BenchRecord, SolveError> {
    measure_with_budget(instance, &SolveBudget::new())
}

/// Runs both engines over one instance under `budget` (each engine run
/// gets a fresh deadline derived from the budget's limits).
///
/// # Errors
///
/// See [`measure`].
///
/// # Panics
///
/// As [`measure`], except the bit-identity assertion is skipped when
/// either run was degraded by the budget (a truncated run legitimately
/// stops at a different objective).
pub fn measure_with_budget(
    instance: &BenchInstance,
    budget: &SolveBudget,
) -> Result<BenchRecord, SolveError> {
    let incremental = timed_run(instance, SolverConfig::default(), budget)?;
    let full = timed_run(
        instance,
        SolverConfig::default()
            .with_incremental(false)
            .with_closure_engine(ClosureEngine::Fresh),
        budget,
    )?;
    let degraded = incremental.stats.degradation.budget_stop.is_some()
        || full.stats.degradation.budget_stop.is_some();
    if !degraded {
        assert_eq!(
            incremental.objective_gain, full.objective_gain,
            "{}: the two constraint engines must agree bit-for-bit",
            instance.name
        );
    }
    Ok(BenchRecord {
        name: instance.name.clone(),
        vertices: instance.graph.num_vertices(),
        edges: instance.graph.num_edges(),
        incremental,
        full,
        degraded,
    })
}

fn push_engine(out: &mut String, indent: &str, label: &str, run: &EngineRun) {
    let s = &run.stats;
    let p = &s.perf;
    let _ = write!(
        out,
        "{indent}\"{label}\": {{\n\
         {indent}  \"solve_seconds\": {:.6},\n\
         {indent}  \"objective_gain\": {},\n\
         {indent}  \"commits\": {},\n\
         {indent}  \"iterations\": {},\n\
         {indent}  \"checks\": {},\n\
         {indent}  \"incremental_checks\": {},\n\
         {indent}  \"full_checks\": {},\n\
         {indent}  \"fallback_full\": {},\n\
         {indent}  \"edges_relaxed\": {},\n\
         {indent}  \"edges_relaxed_full\": {},\n\
         {indent}  \"edges_per_check\": {:.3},\n\
         {indent}  \"dirty_vertices\": {},\n\
         {indent}  \"max_dirty\": {},\n\
         {indent}  \"check_nanos\": {},\n\
         {indent}  \"closure_nanos\": {},\n\
         {indent}  \"closure_calls\": {},\n\
         {indent}  \"closure_arcs_touched\": {},\n\
         {indent}  \"closure_fallback_full\": {},\n\
         {indent}  \"arcs_per_closure\": {:.3},\n\
         {indent}  \"closure_warm_nanos\": {}\n\
         {indent}}}",
        run.solve_seconds,
        run.objective_gain,
        s.commits,
        s.iterations,
        p.checks(),
        p.incremental_checks,
        p.full_checks,
        p.fallback_full,
        p.edges_relaxed,
        p.edges_relaxed_full,
        p.edges_per_check(),
        p.dirty_vertices,
        p.max_dirty,
        p.check_nanos,
        p.closure_nanos,
        p.closure_calls,
        p.closure_arcs_touched,
        p.closure_fallback_full,
        p.arcs_per_closure(),
        p.closure_warm_nanos,
    );
}

/// Serializes the records as the `BENCH_solver.json` document
/// (hand-rolled: the workspace deliberately has no serde dependency).
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"solver-constraint-engines\",\n  \"version\": 3,\n");
    out.push_str("  \"circuits\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"vertices\": {},\n      \"edges\": {},\n      \
             \"degraded\": {},\n",
            r.name, r.vertices, r.edges, r.degraded
        );
        push_engine(&mut out, "      ", "incremental", &r.incremental);
        out.push_str(",\n");
        push_engine(&mut out, "      ", "full", &r.full);
        let _ = write!(
            out,
            ",\n      \"edge_relaxation_ratio\": {:.3},\n      \"closure_arc_ratio\": {:.3}\n    }}",
            r.edge_relaxation_ratio(),
            r.closure_arc_ratio()
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_records_are_consistent_and_serialize() {
        let instances = sample_instances();
        assert!(!instances.is_empty());
        let records: Vec<BenchRecord> = instances.iter().map(|i| measure(i).unwrap()).collect();
        let json = to_json(&records);
        assert!(json.contains("\"solver-constraint-engines\""));
        assert!(json.contains("\"edge_relaxation_ratio\""));
        assert!(json.contains("\"closure_arc_ratio\""));
        assert!(json.contains("\"closure_warm_nanos\""));
        assert!(json.contains("\"degraded\": false"));
        for r in &records {
            assert!(!r.degraded, "{}: unlimited budget cannot degrade", r.name);
            assert_eq!(r.incremental.stats.commits, r.full.stats.commits);
            assert_eq!(r.full.stats.perf.incremental_checks, 0);
            assert_eq!(
                r.incremental.stats.perf.closure_calls, r.full.stats.perf.closure_calls,
                "{}: identical trajectories make the same closure calls",
                r.name
            );
            assert_eq!(r.full.stats.perf.closure_warm_nanos, 0);
        }
    }

    #[test]
    fn budget_capped_run_is_flagged_degraded() {
        // The committed generated_10k row came from a --max-iters 2000
        // run; this drill pins the mechanism that tags such rows so CI
        // never compares a truncated run against a converged baseline.
        let instance = generated_instance(300).unwrap();
        let budget = SolveBudget::new().with_max_iterations(Some(3));
        let record = measure_with_budget(&instance, &budget).unwrap();
        assert!(record.degraded, "a 3-iteration cap must truncate the solve");
        let json = to_json(&[record]);
        assert!(json.contains("\"degraded\": true"));
    }

    #[test]
    fn warm_closure_beats_fresh_on_a_generated_circuit() {
        let instance = generated_instance(300).unwrap();
        let record = measure(&instance).unwrap();
        println!(
            "closure_arc_ratio = {:.2} (warm {:.0} vs fresh {:.0} arcs/call, {} calls)",
            record.closure_arc_ratio(),
            record.incremental.stats.perf.arcs_per_closure(),
            record.full.stats.perf.arcs_per_closure(),
            record.incremental.stats.perf.closure_calls,
        );
        assert!(
            record.closure_arc_ratio() >= 10.0,
            "expected >=10x fewer arcs touched per closure call, got {:.2}x",
            record.closure_arc_ratio()
        );
    }

    #[test]
    fn incremental_beats_full_on_a_generated_circuit() {
        let instance = generated_instance(300).unwrap();
        let record = measure(&instance).unwrap();
        assert!(
            record.edge_relaxation_ratio() >= 5.0,
            "expected >=5x fewer edge relaxations per check, got {:.2}x",
            record.edge_relaxation_ratio()
        );
    }
}
