//! Benchmark of the SER simulation data plane: the legacy
//! per-`Signature` scalar engine vs. the flat [`SignatureArena`] engine
//! single-threaded, vs. the arena engine with a worker pool. Each
//! column runs the same end-to-end pipeline (`n`-frame bit-parallel
//! simulation + ODC observability) and the engines are required to be
//! bit-identical, so the timings compare pure data-plane cost. Shared
//! by the `retimer bench-ser` subcommand and the `ser_engine` criterion
//! bench; the JSON it emits (`BENCH_ser.json`) is the tracked baseline.
//!
//! [`SignatureArena`]: ser_engine::SignatureArena

use std::fmt::Write as _;
use std::time::Instant;

use netlist::{parallel, samples, Circuit};
use ser_engine::odc::Observability;
use ser_engine::scalar::{self, ScalarTrace};
use ser_engine::signature_allocs;
use ser_engine::sim::{FrameTrace, SimConfig};

/// A circuit under benchmark.
pub struct BenchSerInstance {
    /// Display name.
    pub name: String,
    /// The circuit itself.
    pub circuit: Circuit,
}

/// The repo's sample circuits (small; the generated set carries the
/// headline numbers).
pub fn sample_instances() -> Vec<BenchSerInstance> {
    [
        ("pipeline_24x4", samples::pipeline(24, 4)),
        ("s27_like", samples::s27_like()),
        ("fig1_like", samples::fig1_like()),
    ]
    .into_iter()
    .map(|(name, circuit)| BenchSerInstance {
        name: name.to_string(),
        circuit,
    })
    .collect()
}

/// A generated circuit of roughly `gates` gates, shaped like the
/// Table I twins (deep combinational cones over a register file);
/// the same recipe as [`crate::solver_bench::generated_circuit`].
pub fn generated_instance(gates: usize) -> BenchSerInstance {
    BenchSerInstance {
        name: format!("generated_{}", crate::gates_label(gates)),
        circuit: crate::solver_bench::generated_circuit(gates),
    }
}

/// Simulation size of a benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BenchSerConfig {
    /// Parallel random vectors per frame (multiple of 64).
    pub num_vectors: usize,
    /// Recorded time frames `n`.
    pub frames: usize,
    /// Worker pool for the threaded column (0 = resolve via
    /// `SER_THREADS` / hardware).
    pub threads: usize,
    /// Repetitions per column; the fastest run is reported (standard
    /// wall-clock de-noising — the minimum is the least contaminated
    /// by scheduler interference).
    pub reps: usize,
}

impl Default for BenchSerConfig {
    fn default() -> Self {
        Self {
            num_vectors: 1024,
            frames: 15,
            threads: 0,
            reps: 5,
        }
    }
}

impl BenchSerConfig {
    /// A very small configuration for tests and CI smoke runs.
    pub fn tiny() -> Self {
        Self {
            num_vectors: 256,
            frames: 6,
            threads: 2,
            reps: 1,
        }
    }

    fn sim(&self, threads: usize) -> SimConfig {
        SimConfig {
            num_vectors: self.num_vectors,
            frames: self.frames,
            warmup: 8,
            seed: 0xC0FFEE,
            threads,
        }
    }
}

/// All three engine columns over one circuit.
pub struct BenchSerRecord {
    /// Circuit name.
    pub name: String,
    /// Total gate count (all kinds).
    pub gates: usize,
    /// Vectors per frame.
    pub num_vectors: usize,
    /// Recorded frames.
    pub frames: usize,
    /// Resolved worker count of the threaded column.
    pub threads: usize,
    /// Wall-clock nanoseconds of the scalar (per-`Signature`) engine.
    pub scalar_nanos: u64,
    /// `Signature` heap allocations of the scalar engine.
    pub scalar_allocs: u64,
    /// Wall-clock nanoseconds of the arena engine at one thread. This
    /// is the field the CI regression gate watches.
    pub arena_nanos: u64,
    /// `Signature` heap allocations of the arena engine (finalization
    /// only: per-gate observability masks).
    pub arena_allocs: u64,
    /// Wall-clock nanoseconds of the arena engine with the worker pool.
    pub threaded_nanos: u64,
    /// Wall-clock nanoseconds of the propagation-probability estimator
    /// (the backward pass over a pre-built trace — the marginal cost of
    /// the second opinion every experiment run now pays).
    pub propprob_nanos: u64,
}

impl BenchSerRecord {
    /// Scalar time over single-threaded arena time (higher is better).
    pub fn arena_speedup(&self) -> f64 {
        self.scalar_nanos as f64 / self.arena_nanos.max(1) as f64
    }

    /// Scalar time over pooled arena time (higher is better).
    pub fn threaded_speedup(&self) -> f64 {
        self.scalar_nanos as f64 / self.threaded_nanos.max(1) as f64
    }

    /// Single-threaded arena nanoseconds per gate, frame and vector —
    /// the normalized data-plane cost.
    pub fn arena_nanos_per_gfv(&self) -> f64 {
        self.arena_nanos as f64 / (self.gates * self.frames * self.num_vectors).max(1) as f64
    }

    /// Propagation-probability nanoseconds per gate and frame — the
    /// normalized estimator-throughput cost (the backward pass works on
    /// per-frame densities, so its cost is vector-independent).
    pub fn propprob_nanos_per_gf(&self) -> f64 {
        self.propprob_nanos as f64 / (self.gates * self.frames).max(1) as f64
    }
}

/// Runs all three columns over one circuit. The three engines must be
/// bit-identical, so the record is also an identity check.
///
/// # Panics
///
/// Panics if any engine disagrees on the observability vector.
pub fn measure(instance: &BenchSerInstance, config: &BenchSerConfig) -> BenchSerRecord {
    let circuit = &instance.circuit;
    let reps = config.reps.max(1);

    let mut scalar_nanos = u64::MAX;
    let mut scalar_allocs = 0;
    let mut scalar_obs = Vec::new();
    for _ in 0..reps {
        let a0 = signature_allocs();
        let t0 = Instant::now();
        let scalar_trace = ScalarTrace::simulate(circuit, config.sim(1));
        let (obs, _) = scalar::observability(circuit, &scalar_trace);
        scalar_nanos = scalar_nanos.min(t0.elapsed().as_nanos() as u64);
        scalar_allocs = signature_allocs() - a0;
        scalar_obs = obs;
    }

    let mut arena_nanos = u64::MAX;
    let mut arena_allocs = 0;
    let mut arena_obs = None;
    for _ in 0..reps {
        let a1 = signature_allocs();
        let t1 = Instant::now();
        let obs = run_arena(circuit, config.sim(1));
        arena_nanos = arena_nanos.min(t1.elapsed().as_nanos() as u64);
        arena_allocs = signature_allocs() - a1;
        arena_obs = Some(obs);
    }
    let arena_obs = arena_obs.expect("reps >= 1");

    let threads = parallel::resolve_workers(config.threads);
    let mut threaded_nanos = u64::MAX;
    let mut threaded_obs = None;
    for _ in 0..reps {
        let t2 = Instant::now();
        let obs = run_arena(circuit, config.sim(threads));
        threaded_nanos = threaded_nanos.min(t2.elapsed().as_nanos() as u64);
        threaded_obs = Some(obs);
    }
    let threaded_obs = threaded_obs.expect("reps >= 1");

    // Propagation-probability column: the backward pass alone, over a
    // trace built once outside the timed region (the experiment
    // pipeline reuses its existing trace the same way).
    let pp_trace = FrameTrace::simulate(circuit, config.sim(1));
    let mut propprob_nanos = u64::MAX;
    for _ in 0..reps {
        let t3 = Instant::now();
        let pp = ser_engine::PropProb::compute(circuit, &pp_trace);
        propprob_nanos = propprob_nanos.min(t3.elapsed().as_nanos() as u64);
        assert!(
            pp.as_slice().iter().all(|p| (0.0..=1.0).contains(p)),
            "{}: propprob produced a non-probability",
            instance.name
        );
    }

    assert_eq!(
        scalar_obs,
        arena_obs.as_slice().to_vec(),
        "{}: the arena engine must match the scalar engine bit-for-bit",
        instance.name
    );
    assert_eq!(
        arena_obs.as_slice(),
        threaded_obs.as_slice(),
        "{}: the threaded engine must match the single-threaded engine bit-for-bit",
        instance.name
    );

    BenchSerRecord {
        name: instance.name.clone(),
        gates: circuit.len(),
        num_vectors: config.num_vectors,
        frames: config.frames,
        threads,
        scalar_nanos,
        scalar_allocs,
        arena_nanos,
        arena_allocs,
        threaded_nanos,
        propprob_nanos,
    }
}

fn run_arena(circuit: &Circuit, config: SimConfig) -> Observability {
    let trace = FrameTrace::simulate(circuit, config);
    Observability::compute(circuit, &trace)
}

/// Serializes the records as the `BENCH_ser.json` document
/// (hand-rolled: the workspace deliberately has no serde dependency).
/// `ser_arena_nanos` is the CI-gated regression field.
pub fn to_json(records: &[BenchSerRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"ser-data-plane\",\n  \"version\": 2,\n");
    out.push_str("  \"circuits\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"gates\": {},\n      \
             \"num_vectors\": {},\n      \"frames\": {},\n      \"threads\": {},\n      \
             \"ser_scalar_nanos\": {},\n      \"ser_scalar_allocs\": {},\n      \
             \"ser_arena_nanos\": {},\n      \"ser_arena_allocs\": {},\n      \
             \"ser_threaded_nanos\": {},\n      \"ser_propprob_nanos\": {},\n      \
             \"arena_speedup\": {:.3},\n      \"threaded_speedup\": {:.3},\n      \
             \"arena_nanos_per_gate_frame_vector\": {:.4},\n      \
             \"propprob_nanos_per_gate_frame\": {:.4}\n    }}",
            r.name,
            r.gates,
            r.num_vectors,
            r.frames,
            r.threads,
            r.scalar_nanos,
            r.scalar_allocs,
            r.arena_nanos,
            r.arena_allocs,
            r.threaded_nanos,
            r.propprob_nanos,
            r.arena_speedup(),
            r.threaded_speedup(),
            r.arena_nanos_per_gfv(),
            r.propprob_nanos_per_gf(),
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_records_are_consistent_and_serialize() {
        let config = BenchSerConfig::tiny();
        let records: Vec<BenchSerRecord> = sample_instances()
            .iter()
            .map(|i| measure(i, &config))
            .collect();
        assert_eq!(records.len(), 3);
        let json = to_json(&records);
        assert!(json.contains("\"ser-data-plane\""));
        assert!(json.contains("\"ser_arena_nanos\""));
        assert!(json.contains("\"ser_scalar_allocs\""));
        assert!(json.contains("\"arena_nanos_per_gate_frame_vector\""));
        assert!(json.contains("\"ser_propprob_nanos\""));
        assert!(json.contains("\"propprob_nanos_per_gate_frame\""));
        for r in &records {
            assert!(r.scalar_nanos > 0 && r.arena_nanos > 0 && r.threaded_nanos > 0);
            assert!(r.propprob_nanos > 0);
            assert!(r.gates > 0);
            assert!(r.threads >= 1);
        }
    }

    #[test]
    fn arena_allocates_far_less_than_scalar() {
        // The scalar engine clones a Signature per gate and frame; the
        // arena engine only allocates the finalized observability masks.
        let instance = generated_instance(400);
        let record = measure(&instance, &BenchSerConfig::tiny());
        assert!(
            record.arena_allocs * 4 <= record.scalar_allocs,
            "arena {} allocs vs scalar {}",
            record.arena_allocs,
            record.scalar_allocs
        );
    }

    #[test]
    fn arena_is_not_slower_than_scalar_on_a_generated_circuit() {
        // The headline claim (>=1.5x) is asserted on the committed
        // BENCH_ser.json baseline; under a loaded test runner we only
        // require the arena engine not be meaningfully slower.
        let instance = generated_instance(400);
        let record = measure(&instance, &BenchSerConfig::tiny());
        assert!(
            record.arena_speedup() > 0.6,
            "arena speedup {:.2}x",
            record.arena_speedup()
        );
    }
}
