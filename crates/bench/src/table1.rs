//! Table I reproduction: per-circuit statistics, Efficient MinObs and
//! MinObsWin results, and the paper's summary averages.

use minobswin::experiment::{CircuitRun, Experiment, RunConfig};
use netlist::generator::{table1_twin, Table1Row as PaperRow, TABLE1_ROWS};
use netlist::parallel;
use ser_engine::sim::SimConfig;

/// Options of a Table I reproduction run.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// Scale divisor applied to every circuit (1 = full size; the
    /// default 16 keeps the suite laptop-friendly).
    pub scale: usize,
    /// Extra scale divisor for the four giant circuits (b18/b19);
    /// multiplied with `scale`.
    pub giant_extra_scale: usize,
    /// Restrict to circuits whose name contains this substring.
    pub filter: Option<String>,
    /// Simulation vectors `K`.
    pub num_vectors: usize,
    /// Time frames `n` (paper: 15).
    pub frames: usize,
    /// Worker pool for running circuits in parallel (0 = resolve via
    /// `SER_THREADS` / hardware, like every other entry point). With
    /// more than one pool worker each row's own simulation runs
    /// single-threaded to avoid oversubscription; with one pool worker
    /// the per-row simulation inherits the requested thread count.
    pub threads: usize,
}

impl Default for Table1Options {
    fn default() -> Self {
        Self {
            scale: 16,
            giant_extra_scale: 4,
            filter: None,
            num_vectors: 1024,
            frames: 15,
            threads: 0,
        }
    }
}

impl Table1Options {
    /// A very small configuration for tests.
    pub fn tiny() -> Self {
        Self {
            scale: 128,
            giant_extra_scale: 8,
            filter: None,
            num_vectors: 256,
            frames: 6,
            threads: 0,
        }
    }
}

/// One evaluated row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The paper's circuit name (the twin adds a suffix).
    pub paper_name: &'static str,
    /// The full per-circuit run.
    pub run: CircuitRun,
}

/// Runs the reproduction over the (filtered, scaled) benchmark suite,
/// fanning the circuits across a worker pool (see
/// [`Table1Options::threads`]). Row order is deterministic — results
/// land by row index, independent of thread scheduling.
///
/// Circuits that fail (e.g. an infeasible initialization on an extreme
/// configuration) are skipped with a message on stderr, mirroring how
/// benchmark suites tolerate individual failures.
pub fn run_table1(options: &Table1Options) -> Vec<Table1Row> {
    let items: Vec<&PaperRow> = TABLE1_ROWS
        .iter()
        .filter(|paper_row| match &options.filter {
            Some(f) => paper_row.name.contains(f.as_str()),
            None => true,
        })
        .collect();
    if items.is_empty() {
        return Vec::new();
    }
    let pool = parallel::resolve_workers_for(options.threads, items.len());
    let sim_threads = if pool > 1 { 1 } else { options.threads };
    let mut slots: Vec<Option<Table1Row>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(pool);
    let items = &items;
    std::thread::scope(|scope| {
        for (ci, out) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = run_row(items[ci * chunk + k], options, sim_threads);
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

/// Runs one benchmark circuit; `None` when it fails.
fn run_row(paper_row: &PaperRow, options: &Table1Options, sim_threads: usize) -> Option<Table1Row> {
    let giant = paper_row.v > 60_000;
    let scale = options.scale * if giant { options.giant_extra_scale } else { 1 };
    let circuit = table1_twin(paper_row, scale);
    let config = RunConfig::default().with_sim(SimConfig {
        num_vectors: options.num_vectors,
        frames: options.frames,
        warmup: 8,
        seed: 0xC0FFEE,
        threads: sim_threads,
    });
    match Experiment::new(&circuit).config(config).run() {
        Ok(run) => Some(Table1Row {
            paper_name: paper_row.name,
            run,
        }),
        Err(e) => {
            eprintln!("skipping {}: {e}", paper_row.name);
            None
        }
    }
}

/// The averages the paper reports in its last row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Summary {
    /// Average Δ#FF of Efficient MinObs (paper: −43.04%).
    pub avg_dff_ref: f64,
    /// Average ΔSER of Efficient MinObs (paper: −26.70%).
    pub avg_dser_ref: f64,
    /// Average Δ#FF of MinObsWin (paper: −38.01%).
    pub avg_dff_new: f64,
    /// Average ΔSER of MinObsWin (paper: −32.70%).
    pub avg_dser_new: f64,
    /// Average `SER_ref/SER_new` (paper: 115%).
    pub avg_ratio: f64,
    /// Average solver runtime of MinObs (seconds).
    pub avg_t_ref: f64,
    /// Average solver runtime of MinObsWin (seconds).
    pub avg_t_new: f64,
    /// Average `#J`.
    pub avg_j: f64,
}

/// Computes the summary row.
pub fn summarize(rows: &[Table1Row]) -> Table1Summary {
    let n = rows.len().max(1) as f64;
    let avg = |f: &dyn Fn(&Table1Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    Table1Summary {
        avg_dff_ref: avg(&|r| r.run.minobs.delta_ff),
        avg_dser_ref: avg(&|r| r.run.minobs.delta_ser),
        avg_dff_new: avg(&|r| r.run.minobswin.delta_ff),
        avg_dser_new: avg(&|r| r.run.minobswin.delta_ser),
        avg_ratio: avg(&|r| r.run.ser_ratio()),
        avg_t_ref: avg(&|r| r.run.minobs.solve_seconds),
        avg_t_new: avg(&|r| r.run.minobswin.solve_seconds),
        avg_j: avg(&|r| r.run.minobswin.stats.commits as f64),
    }
}

/// Formats the rows in the paper's Table I layout.
pub fn format_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>7} {:>5} {:>10} | {:>9} {:>8} {:>9} | {:>9} {:>8} {:>4} {:>9} {:>8}\n",
        "Circuit", "|V|", "|E|", "#FF", "Phi", "SER",
        "dFF_ref", "t_ref", "dSER_ref",
        "dFF_new", "t_new", "#J", "dSER_new", "ref/new"
    ));
    out.push_str(&"-".repeat(142));
    out.push('\n');
    for row in rows {
        let r = &row.run;
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>7} {:>4}{} {:>10.3e} | {:>8.2}% {:>8.3} {:>8.2}% | {:>8.2}% {:>8.3} {:>4} {:>8.2}% {:>7.0}%\n",
            row.paper_name,
            r.v,
            r.e,
            r.ff,
            r.phi,
            if r.used_setup_hold { "s" } else { "*" },
            r.ser_original,
            r.minobs.delta_ff * 100.0,
            r.minobs.solve_seconds,
            r.minobs.delta_ser * 100.0,
            r.minobswin.delta_ff * 100.0,
            r.minobswin.solve_seconds,
            r.minobswin.stats.commits,
            r.minobswin.delta_ser * 100.0,
            r.ser_ratio() * 100.0,
        ));
    }
    let s = summarize(rows);
    out.push_str(&"-".repeat(142));
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>48} | {:>8.2}% {:>8.3} {:>8.2}% | {:>8.2}% {:>8.3} {:>4.0} {:>8.2}% {:>7.0}%\n",
        "AVG.",
        "",
        s.avg_dff_ref * 100.0,
        s.avg_t_ref,
        s.avg_dser_ref * 100.0,
        s.avg_dff_new * 100.0,
        s.avg_t_new,
        s.avg_j,
        s.avg_dser_new * 100.0,
        s.avg_ratio * 100.0,
    ));
    out.push_str(
        "\nPhi suffix: `s` = setup+hold initialization succeeded, `*` = min-period fallback \
         (R_min = min gate delay; P2 never binds, MinObsWin == MinObs — the paper's \
         s15850.1-style rows).\n",
    );
    out.push_str(
        "paper AVG.: dFF_ref -43.04%, dSER_ref -26.70%, dFF_new -38.01%, #J 4, \
         dSER_new -32.70%, ref/new 115%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_rows() {
        let mut options = Table1Options::tiny();
        options.filter = Some("b14_1".to_string());
        let rows = run_table1(&options);
        assert_eq!(rows.len(), 1);
        let table = format_table(&rows);
        assert!(table.contains("b14_1_opt"));
        assert!(table.contains("AVG."));
    }

    #[test]
    fn summary_averages() {
        let mut options = Table1Options::tiny();
        options.filter = Some("b14".to_string());
        let rows = run_table1(&options);
        assert!(rows.len() >= 2, "b14_1_opt and b14_opt");
        let s = summarize(&rows);
        assert!(s.avg_ratio.is_finite());
        assert!(s.avg_t_new >= 0.0);
    }

    #[test]
    fn filter_excludes() {
        let mut options = Table1Options::tiny();
        options.filter = Some("no_such_circuit".to_string());
        assert!(run_table1(&options).is_empty());
    }
}
