//! Regenerates the paper's **Table I** on synthetic twins of the 21
//! ISCAS89/ITC99 circuits.
//!
//! ```text
//! cargo run -p minobswin-bench --release --bin table1 -- [--scale N]
//!     [--giant-extra N] [--filter SUBSTR] [--vectors K] [--frames N] [--full]
//! ```
//!
//! `--full` runs unscaled twins (hours of runtime on the b18/b19
//! twins); the default `--scale 16` reproduces the qualitative shape in
//! minutes.

use bench_harness::{format_table, run_table1, Table1Options};

fn main() {
    let mut options = Table1Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a positive integer"));
            }
            "--giant-extra" => {
                options.giant_extra_scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--giant-extra needs a positive integer"));
            }
            "--filter" => {
                options.filter = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--filter needs a value")),
                );
            }
            "--vectors" => {
                options.num_vectors = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--vectors needs a positive integer"));
            }
            "--frames" => {
                options.frames = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--frames needs a positive integer"));
            }
            "--full" => {
                options.scale = 1;
                options.giant_extra_scale = 1;
            }
            "--help" | "-h" => {
                usage("");
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    eprintln!(
        "running Table I twins at scale 1/{} (giants 1/{}), K={}, n={} ...",
        options.scale,
        options.scale * options.giant_extra_scale,
        options.num_vectors,
        options.frames
    );
    let rows = run_table1(&options);
    println!("{}", format_table(&rows));
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: table1 [--scale N] [--giant-extra N] [--filter SUBSTR] \
         [--vectors K] [--frames N] [--full]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
