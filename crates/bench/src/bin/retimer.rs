//! `retimer` — the end-user command line tool: read a gate-level
//! netlist, analyze its SER, retime it for soft error minimization
//! (MinObsWin, or the MinObs baseline), verify equivalence, and write
//! the retimed netlist plus a machine-readable report.
//!
//! ```text
//! retimer [solve] INPUT[.bench|.blif|.v] [options]
//!
//!   --method minobs|minobswin|both   optimizer (default: both)
//!   --out FILE                       write the (MinObsWin) retimed netlist
//!                                    (format from the extension)
//!   --report FILE.csv                append a CSV result row
//!   --vectors K  --frames N          simulation size (default 1024 / 15)
//!   --seed S                         stimulus seed
//!   --threads T                      worker threads (see "Thread counts")
//!   --r-min R                        override the §V-derived R_min bound
//!                                    (an over-tight bound exits 1: infeasible)
//!   --no-equiv                       skip the bounded equivalence check
//!   --time-budget SECS               wall-clock budget; on expiry the best
//!                                    feasible retiming so far is emitted and
//!                                    the tool exits 4
//!   --max-iters N                    iteration budget (same degraded-exit
//!                                    semantics)
//!   --checkpoint PATH                periodically save solver state to
//!                                    PATH.<method>.ckpt
//!   --resume                         continue from the checkpoint files if
//!                                    they exist
//!
//! retimer fault-sim INPUT[.bench|.blif|.v] [options]
//!
//!   Monte-Carlo SEU campaign cross-validating the analytic SER model,
//!   before and after retiming (see crates/faultsim).
//!
//!   --injections N                   strikes per campaign (default 100000)
//!   --method minobs|minobswin        retiming to score (default minobswin)
//!   --campaign-seed S                injection sampling seed
//!   --pulse-width F                  transient width in delay units
//!   --tolerance F                    relative CI widening (default 0.05)
//!   --vectors K  --frames N  --seed S  --threads T   as above (the one
//!                                    pool size drives both the campaign and
//!                                    the simulation workers)
//!
//! retimer estimate INPUT[.bench|.blif|.v] [options]
//!
//!   Estimates the circuit's SER with one engine, or (default) with
//!   every engine at once, cross-checked by the three-way agreement
//!   oracle (see crates/faultsim). Engines diverging past their
//!   tolerance band exit 1 with a per-site divergence report.
//!
//!   --engine analytic|montecarlo|propprob|exact|all   (default: all)
//!   --injections N                   Monte-Carlo campaign size
//!                                    (default 100000)
//!   --campaign-seed S                injection sampling seed
//!   --tolerance F                    uniform relative tolerance band
//!                                    (default: per-pair-class bands)
//!   --max-source-bits B              exhaustive-oracle cap on
//!                                    registers + inputs x frames
//!                                    (default 20; over it, `exact`
//!                                    exits 2 and `all` skips it)
//!   --phi P                          clock period override (default:
//!                                    setup/hold initialization)
//!   --vectors K  --frames N  --seed S  --threads T   as above
//!
//! retimer harden INPUT[.bench|.blif|.v] [options]
//!
//!   Selective-hardening advisor: ranks cells by SER payoff per unit
//!   of hardened area (cross-scored by the Monte-Carlo campaign and
//!   the propagation-probability engine), greedily spends the area
//!   budget, and validates the plan with a same-seed campaign under
//!   the hardened rate model.
//!
//!   --area-budget F                  fraction of total cell area to
//!                                    spend (default 0.1)
//!   --hardening-factor F             residual rate of a hardened cell
//!                                    (default 0.1)
//!   --area-overhead F                hardening cost as a multiple of
//!                                    the cell's area (default 1.0)
//!   --max-picks N                    cap on hardened cells (default:
//!                                    unlimited)
//!   --plan FILE.csv                  write the ranked plan as CSV
//!   --no-validate                    skip the validation campaign
//!   --injections N  --campaign-seed S  --phi P
//!   --vectors K  --frames N  --seed S  --threads T   as above
//!
//! retimer bench-solve [options]
//!
//!   Benchmarks the solver's incremental engines (dirty-region
//!   constraint relaxation vs. full recomputes, and the warm-started
//!   closure engine vs. fresh Dinic builds) over sample and generated
//!   circuits, writing per-run counters as JSON.
//!
//!   --out FILE                       output path (default BENCH_solver.json)
//!   --gates N,N,...                  generated circuit sizes (default 300,1000)
//!   --tier small|large|xlarge        named size tier: small keeps the default
//!                                    list, large = 10k gates (the CI-gated
//!                                    `generated_10k` workload), xlarge = 50k
//!   --samples-only                   skip the generated circuits
//!   --time-budget SECS               wall-clock budget per solver run
//!   --max-iters N                    iteration budget per solver run
//!   --max-memory BYTES               memory-estimate budget per solver run
//!                                    (over it: degraded exit 4, never an
//!                                    abort)
//!
//! retimer serve [options]
//!
//!   Runs as a daemon: newline-delimited JSON requests on stdin (or a
//!   unix socket), concurrent solves, per-job progress events, and a
//!   content-addressed result cache. Closing stdin (or `{"op":"drain"}`)
//!   drains gracefully. See crates/serve and DESIGN.md §12.
//!
//!   --cache DIR                      cache + recovery directory
//!                                    (default .retimer-cache)
//!   --threads T                      concurrent solve workers (see
//!                                    "Thread counts")
//!   --queue N                        admission bound on waiting jobs
//!                                    (default 64; over it: backpressure)
//!   --time-budget SECS               default per-job wall-clock budget
//!   --max-iters N                    default per-job iteration budget
//!   --cache-max-bytes SIZE           LRU-evict cache stages past SIZE
//!                                    (plain bytes or k/m/g suffix)
//!   --fsck                           run one cache-integrity pass (remove
//!                                    tmp orphans, quarantine corrupt
//!                                    entries), print a report, exit
//!   --socket PATH                    listen on a unix socket instead of stdin
//!
//! retimer bench-ser [options]
//!
//!   Benchmarks the SER simulation data plane: the legacy per-signature
//!   scalar engine vs. the flat arena engine (single-threaded) vs. the
//!   arena engine with a worker pool, over sample and generated
//!   circuits, writing timings and allocation counts as JSON.
//!
//!   --out FILE                       output path (default BENCH_ser.json)
//!   --gates N,N,...                  generated circuit sizes (default 400,1500)
//!   --tier small|large|xlarge        named size tier, as for bench-solve
//!   --samples-only                   skip the generated circuits
//!   --vectors K  --frames N          simulation size (default 1024 / 15)
//!   --threads T                      threaded column's pool size (see
//!                                    "Thread counts")
//! ```
//!
//! # Thread counts
//!
//! Every subcommand sizes its worker pool with the one canonical
//! `--threads N` flag (`--workers` is kept as a hidden alias for
//! scripts written against older releases). `0` — the default — defers
//! to the `SER_THREADS` environment variable, then to all available
//! cores; the resolution rule lives in one place,
//! `netlist::parallel::resolve_workers`, and every threaded stage
//! (simulation, ODC passes, fault-injection campaigns, the serve
//! daemon's solve pool) goes through it.
//!
//! # Exit codes
//!
//! Exit codes are stable: 0 = success, 1 = infeasible instance,
//! 2 = I/O or usage error, 3 = internal error (e.g. iteration limit),
//! 4 = a solve budget expired and a degraded (but feasible) result was
//! emitted.

use std::path::Path;
use std::process::ExitCode;

use faultsim::{
    advise, check_agreement, run_campaign, CampaignConfig, CrossCheck, HardenConfig,
    MonteCarloEstimator, ToleranceBands, DEFAULT_TOLERANCE,
};
use minobswin::experiment::{Experiment, MethodResult, RunConfig};
use minobswin::{SolveBudget, SolveError};
use netlist::{bench_format, blif, verilog, Circuit, DelayModel, NetlistError, ParseLimits};
use retime::apply::apply_retiming;
use retime::{ElwParams, RetimeGraph};
use ser_engine::equiv::{check_equivalence, EquivConfig};
use ser_engine::sim::SimConfig;
use ser_engine::{
    analyze, AnalyticEstimator, EngineKind, EstimateError, ExactEstimator, PropProbEstimator,
    SerConfig, SerEstimate, SerEstimator, DEFAULT_MAX_SOURCE_BITS,
};

/// A command-line failure: a usage error or a wrapped pipeline error,
/// mapped onto the stable exit codes documented above.
enum CliError {
    Usage(String),
    Solve(SolveError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Solve(e) => write!(f, "{e}"),
        }
    }
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Solve(e) => e.exit_code(),
        }
    }
}

impl From<SolveError> for CliError {
    fn from(e: SolveError) -> Self {
        CliError::Solve(e)
    }
}

impl From<NetlistError> for CliError {
    fn from(e: NetlistError) -> Self {
        CliError::Solve(e.into())
    }
}

impl From<retime::RetimeError> for CliError {
    fn from(e: retime::RetimeError) -> Self {
        CliError::Solve(e.into())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Solve(e.into())
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<EstimateError> for CliError {
    fn from(e: EstimateError) -> Self {
        match e {
            EstimateError::Retime(err) => CliError::Solve(err.into()),
            e @ EstimateError::TooLarge { .. } => CliError::Usage(e.to_string()),
        }
    }
}

/// Exit code for "a solve budget expired; a degraded but feasible
/// result was emitted".
const EXIT_DEGRADED: u8 = 4;

fn main() -> ExitCode {
    let subcommand = std::env::args().nth(1);
    let result = match subcommand.as_deref() {
        Some("estimate") => run_estimate(),
        Some("harden") => run_harden(),
        Some("fault-sim") => run_fault_sim(),
        Some("bench-solve") => run_bench_solve(),
        Some("bench-ser") => run_bench_ser(),
        Some("serve") => run_serve(),
        Some("solve") => run(true),
        _ => run(false),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

struct Options {
    input: String,
    method: String,
    out: Option<String>,
    report: Option<String>,
    vectors: usize,
    frames: usize,
    seed: u64,
    threads: usize,
    r_min: Option<i64>,
    equiv: bool,
    time_budget: Option<f64>,
    max_iters: Option<usize>,
    checkpoint: Option<String>,
    resume: bool,
}

fn parse_args(skip_subcommand: bool) -> Result<Options, String> {
    let mut args = std::env::args().skip(if skip_subcommand { 2 } else { 1 });
    let mut options = Options {
        input: String::new(),
        method: "both".into(),
        out: None,
        report: None,
        vectors: 1024,
        frames: 15,
        seed: 0xC0FFEE,
        threads: 0,
        r_min: None,
        equiv: true,
        time_budget: None,
        max_iters: None,
        checkpoint: None,
        resume: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--method" => options.method = args.next().ok_or("--method needs a value")?,
            "--out" => options.out = Some(args.next().ok_or("--out needs a path")?),
            "--report" => options.report = Some(args.next().ok_or("--report needs a path")?),
            "--vectors" => {
                options.vectors = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--vectors needs a positive integer")?
            }
            "--frames" => {
                options.frames = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--frames needs a positive integer")?
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?
            }
            "--threads" | "--workers" => {
                options.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a non-negative integer")?
            }
            "--r-min" => {
                options.r_min = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--r-min needs an integer")?,
                )
            }
            "--no-equiv" => options.equiv = false,
            "--time-budget" => {
                let secs: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--time-budget needs a number of seconds")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--time-budget needs a non-negative number".into());
                }
                options.time_budget = Some(secs);
            }
            "--max-iters" => {
                options.max_iters = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--max-iters needs a non-negative integer")?,
                )
            }
            "--checkpoint" => {
                options.checkpoint = Some(args.next().ok_or("--checkpoint needs a path")?)
            }
            "--resume" => options.resume = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: retimer [solve] INPUT[.bench|.blif|.v] \
                     [--method minobs|minobswin|both] \
                     [--out FILE] [--report FILE.csv] [--vectors K] [--frames N] \
                     [--seed S] [--threads T] [--r-min R] [--no-equiv] \
                     [--time-budget SECS] [--max-iters N] [--checkpoint PATH] [--resume]"
                );
                std::process::exit(0);
            }
            other if options.input.is_empty() && !other.starts_with('-') => {
                options.input = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.input.is_empty() {
        return Err("missing input netlist (try --help)".into());
    }
    if !matches!(options.method.as_str(), "minobs" | "minobswin" | "both") {
        return Err(format!("unknown method `{}`", options.method));
    }
    if options.resume && options.checkpoint.is_none() {
        return Err("--resume requires --checkpoint PATH".into());
    }
    Ok(options)
}

/// Reads the input netlist through the unified, streaming front door
/// (`netlist::read_path`): format sniffed from the extension, default
/// parse limits.
fn read_netlist(path: &str) -> Result<Circuit, NetlistError> {
    netlist::read_path(path, &ParseLimits::default())
}

fn write_netlist(circuit: &Circuit, path: &str) -> Result<(), NetlistError> {
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("bench") => bench_format::write_file(circuit, path),
        Some("blif") => blif::write_file(circuit, path),
        Some("v") | Some("verilog") => verilog::write_file(circuit, path),
        _ => Err(NetlistError::Parse {
            line: 0,
            col: 0,
            message: "unknown output format (use .bench, .blif or .v)".into(),
        }),
    }
}

fn run(skip_subcommand: bool) -> Result<u8, CliError> {
    let options = parse_args(skip_subcommand)?;
    let circuit = read_netlist(&options.input)?;
    eprintln!("read {circuit}");

    let budget = SolveBudget::new()
        .with_wall_time(options.time_budget.map(std::time::Duration::from_secs_f64))
        .with_max_iterations(options.max_iters);
    let config = RunConfig::default()
        .with_sim(SimConfig {
            num_vectors: options.vectors,
            frames: options.frames,
            warmup: 16,
            seed: options.seed,
            threads: options.threads,
        })
        .with_r_min_override(options.r_min)
        .with_budget(budget)
        .with_checkpoint(options.checkpoint.as_ref().map(std::path::PathBuf::from))
        .with_resume(options.resume);
    let run = Experiment::new(&circuit).config(config).run()?;

    println!(
        "Phi = {} ({}), R_min = {}",
        run.phi,
        if run.used_setup_hold {
            "setup+hold init"
        } else {
            "min-period fallback"
        },
        run.r_min
    );
    println!("original : #FF {:>6}  SER {:.4e}", run.ff, run.ser_original);
    let show = |label: &str, m: &MethodResult| {
        println!(
            "{label}: #FF {:>6}  SER {:.4e}  (dSER {:+.2}%, dFF {:+.2}%, {:.3}s, #J {})",
            m.registers,
            m.ser,
            m.delta_ser * 100.0,
            m.delta_ff * 100.0,
            m.solve_seconds,
            m.stats.commits
        );
    };
    if options.method != "minobswin" {
        show("minobs   ", &run.minobs);
    }
    if options.method != "minobs" {
        show("minobswin", &run.minobswin);
    }
    if options.method == "both" {
        println!("SER_ref / SER_new = {:.0}%", run.ser_ratio() * 100.0);
    }

    let chosen = if options.method == "minobs" {
        &run.minobs
    } else {
        &run.minobswin
    };
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays)?;
    let rebuilt = apply_retiming(&circuit, &graph, &chosen.retiming)?;

    if options.equiv {
        let verdict = check_equivalence(&circuit, &rebuilt, EquivConfig::default());
        if verdict.is_equivalent() {
            println!("equivalence: OK (bounded random check)");
        } else {
            println!(
                "equivalence: INCONCLUSIVE ({verdict:?}) — likely an initial-state \
                 phase difference; inspect before signoff"
            );
        }
    }

    if let Some(out) = &options.out {
        write_netlist(&rebuilt, out)?;
        println!("wrote {out}");
    }
    if let Some(report) = &options.report {
        append_csv(report, &run)?;
        println!("appended {report}");
    }

    // Report any degradation (tripped engine breakers, budget stops)
    // on the methods the user asked for; a budget stop exits 4.
    let mut degraded = false;
    let reported: &[(&str, &MethodResult)] = match options.method.as_str() {
        "minobs" => &[("minobs", &run.minobs)],
        "minobswin" => &[("minobswin", &run.minobswin)],
        _ => &[("minobs", &run.minobs), ("minobswin", &run.minobswin)],
    };
    for (label, m) in reported {
        let report = m.stats.degradation;
        if !report.is_clean() {
            eprintln!("degradation [{label}]: {report}");
        }
        degraded |= report.budget_stop.is_some();
    }
    if degraded {
        eprintln!("budget exceeded: emitted the best feasible retiming found so far (exit 4)");
        return Ok(EXIT_DEGRADED);
    }
    Ok(0)
}

struct FaultSimOptions {
    input: String,
    injections: u64,
    method: String,
    campaign_seed: u64,
    pulse_width: f64,
    tolerance: f64,
    vectors: usize,
    frames: usize,
    seed: u64,
    threads: usize,
}

fn parse_fault_sim_args() -> Result<FaultSimOptions, String> {
    let mut args = std::env::args().skip(2); // binary name + "fault-sim"
    let mut options = FaultSimOptions {
        input: String::new(),
        injections: 100_000,
        method: "minobswin".into(),
        campaign_seed: 0x5EED_FA17,
        pulse_width: 0.0,
        tolerance: DEFAULT_TOLERANCE,
        vectors: 1024,
        frames: 15,
        seed: 0xC0FFEE,
        threads: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--injections" => {
                options.injections = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--injections needs a positive integer")?
            }
            "--method" => options.method = args.next().ok_or("--method needs a value")?,
            "--campaign-seed" => {
                options.campaign_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--campaign-seed needs an integer")?
            }
            "--pulse-width" => {
                options.pulse_width = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--pulse-width needs a number")?
            }
            "--tolerance" => {
                options.tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs a number")?
            }
            "--vectors" => {
                options.vectors = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--vectors needs a positive integer")?
            }
            "--frames" => {
                options.frames = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--frames needs a positive integer")?
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?
            }
            "--threads" | "--workers" => {
                options.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a non-negative integer")?
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: retimer fault-sim INPUT[.bench|.blif|.v] [--injections N] \
                     [--method minobs|minobswin] [--campaign-seed S] \
                     [--pulse-width F] [--tolerance F] [--vectors K] [--frames N] \
                     [--seed S] [--threads T]"
                );
                std::process::exit(0);
            }
            other if options.input.is_empty() && !other.starts_with('-') => {
                options.input = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.input.is_empty() {
        return Err("missing input netlist (try `retimer fault-sim --help`)".into());
    }
    if !matches!(options.method.as_str(), "minobs" | "minobswin") {
        return Err(format!("unknown method `{}`", options.method));
    }
    Ok(options)
}

/// Scores a circuit with a Monte-Carlo injection campaign before and
/// after retiming, cross-checking each campaign against the analytic
/// model.
fn run_fault_sim() -> Result<u8, CliError> {
    let options = parse_fault_sim_args()?;
    let circuit = read_netlist(&options.input)?;
    eprintln!("read {circuit}");

    let config = RunConfig::default().with_sim(SimConfig {
        num_vectors: options.vectors,
        frames: options.frames,
        warmup: 16,
        seed: options.seed,
        threads: options.threads,
    });
    let run = Experiment::new(&circuit).config(config.clone()).run()?;
    let ser_config = SerConfig {
        sim: config.sim,
        delays: config.delays.clone(),
        rates: config.rates.clone(),
        elw: ElwParams {
            phi: run.phi,
            t_setup: config.init.t_setup,
            t_hold: config.init.t_hold,
        },
    };
    let campaign_config = CampaignConfig::new(options.injections)
        .with_seed(options.campaign_seed)
        .with_workers(options.threads)
        .with_pulse_width(options.pulse_width);

    let score = |label: &str, c: &Circuit| -> Result<f64, CliError> {
        let report = analyze(c, &ser_config)?;
        let campaign = run_campaign(c, &ser_config, &campaign_config)?;
        let check = CrossCheck::compare(c, &report, &campaign, options.tolerance);
        println!("== {label} ==");
        print!("{}", check.summary());
        let (lo, hi) = campaign.ser_ci();
        println!(
            "  empirical SER {:.4e} [{:.4e}, {:.4e}] over {} injections, {} workers",
            campaign.ser(),
            lo,
            hi,
            campaign.injections,
            campaign.workers
        );
        let mut regs: Vec<_> = campaign
            .register_latches
            .iter()
            .filter(|&&(_, n)| n > 0)
            .collect();
        regs.sort_by_key(|&&(_, n)| std::cmp::Reverse(n));
        for &&(r, n) in regs.iter().take(5) {
            println!("  register {:>12}: {} latches", c.gate(r).name(), n);
        }
        Ok(campaign.ser())
    };

    let before = score("original", &circuit)?;

    let chosen = if options.method == "minobs" {
        &run.minobs
    } else {
        &run.minobswin
    };
    let delays = DelayModel::default();
    let graph = RetimeGraph::from_circuit(&circuit, &delays)?;
    let rebuilt = apply_retiming(&circuit, &graph, &chosen.retiming)?;
    let after = score(&format!("retimed ({})", options.method), &rebuilt)?;

    if before > 0.0 {
        println!(
            "empirical SER change: {:+.2}% (analytic {:+.2}%)",
            (after / before - 1.0) * 100.0,
            chosen.delta_ser * 100.0
        );
    }
    Ok(0)
}

/// Options shared by the `estimate` and `harden` subcommands: one
/// circuit, one simulation size, one campaign size, one Φ policy.
struct EstimateOptions {
    input: String,
    engine: String,
    injections: u64,
    campaign_seed: u64,
    tolerance: Option<f64>,
    max_source_bits: u32,
    phi: Option<i64>,
    area_budget: f64,
    hardening_factor: f64,
    area_overhead: f64,
    max_picks: usize,
    plan: Option<String>,
    validate: bool,
    vectors: usize,
    frames: usize,
    seed: u64,
    threads: usize,
}

fn parse_estimate_args(usage: &str) -> Result<EstimateOptions, String> {
    let mut args = std::env::args().skip(2); // binary name + subcommand
    let mut options = EstimateOptions {
        input: String::new(),
        engine: "all".into(),
        injections: 100_000,
        campaign_seed: 0x5EED_FA17,
        tolerance: None,
        max_source_bits: DEFAULT_MAX_SOURCE_BITS,
        phi: None,
        area_budget: 0.1,
        hardening_factor: 0.1,
        area_overhead: 1.0,
        max_picks: 0,
        plan: None,
        validate: true,
        vectors: 1024,
        frames: 15,
        seed: 0xC0FFEE,
        threads: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => options.engine = args.next().ok_or("--engine needs a value")?,
            "--injections" => {
                options.injections = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--injections needs a positive integer")?
            }
            "--campaign-seed" => {
                options.campaign_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--campaign-seed needs an integer")?
            }
            "--tolerance" => {
                let tol: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs a number")?;
                if !tol.is_finite() || tol < 0.0 {
                    return Err("--tolerance needs a non-negative number".into());
                }
                options.tolerance = Some(tol);
            }
            "--max-source-bits" => {
                options.max_source_bits = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-source-bits needs a positive integer")?
            }
            "--phi" => {
                options.phi = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&phi: &i64| phi > 0)
                        .ok_or("--phi needs a positive integer")?,
                )
            }
            "--area-budget" => {
                let budget: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--area-budget needs a number")?;
                if !(0.0..=1.0).contains(&budget) {
                    return Err("--area-budget is a fraction in [0, 1]".into());
                }
                options.area_budget = budget;
            }
            "--hardening-factor" => {
                let factor: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--hardening-factor needs a number")?;
                if !(0.0..=1.0).contains(&factor) {
                    return Err("--hardening-factor is a fraction in [0, 1]".into());
                }
                options.hardening_factor = factor;
            }
            "--area-overhead" => {
                let overhead: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--area-overhead needs a number")?;
                if !overhead.is_finite() || overhead <= 0.0 {
                    return Err("--area-overhead needs a positive number".into());
                }
                options.area_overhead = overhead;
            }
            "--max-picks" => {
                options.max_picks = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-picks needs a non-negative integer")?
            }
            "--plan" => options.plan = Some(args.next().ok_or("--plan needs a path")?),
            "--no-validate" => options.validate = false,
            "--vectors" => {
                options.vectors = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--vectors needs a positive integer")?
            }
            "--frames" => {
                options.frames = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--frames needs a positive integer")?
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?
            }
            "--threads" | "--workers" => {
                options.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a non-negative integer")?
            }
            "--help" | "-h" => {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            other if options.input.is_empty() && !other.starts_with('-') => {
                options.input = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.input.is_empty() {
        return Err(format!("missing input netlist\n{usage}"));
    }
    Ok(options)
}

/// Builds the one [`SerConfig`] the estimation subcommands share: the
/// experiment pipeline's default models, Φ from the same setup/hold
/// initialization `solve` uses (or the `--phi` override).
fn build_estimate_config(
    circuit: &Circuit,
    options: &EstimateOptions,
) -> Result<SerConfig, CliError> {
    let defaults = RunConfig::default();
    let phi = match options.phi {
        Some(phi) => phi,
        None => {
            let graph = RetimeGraph::from_circuit(circuit, &defaults.delays)?;
            defaults.init.initialize(&graph)?.phi
        }
    };
    Ok(SerConfig {
        sim: SimConfig {
            num_vectors: options.vectors,
            frames: options.frames,
            warmup: 16,
            seed: options.seed,
            threads: options.threads,
        },
        delays: defaults.delays.clone(),
        rates: defaults.rates.clone(),
        elw: ElwParams {
            phi,
            t_setup: defaults.init.t_setup,
            t_hold: defaults.init.t_hold,
        },
    })
}

fn print_estimate(estimate: &SerEstimate) {
    match estimate.ser_ci {
        Some((lo, hi)) => println!(
            "{:<10} SER {:.4e} [{:.4e}, {:.4e}]",
            estimate.engine.name(),
            estimate.ser,
            lo,
            hi
        ),
        None => println!("{:<10} SER {:.4e}", estimate.engine.name(), estimate.ser),
    }
}

/// `retimer estimate`: one engine, or all of them under the three-way
/// agreement oracle.
fn run_estimate() -> Result<u8, CliError> {
    const USAGE: &str = "usage: retimer estimate INPUT[.bench|.blif|.v] \
         [--engine analytic|montecarlo|propprob|exact|all] [--injections N] \
         [--campaign-seed S] [--tolerance F] [--max-source-bits B] [--phi P] \
         [--vectors K] [--frames N] [--seed S] [--threads T]";
    let options = parse_estimate_args(USAGE)?;
    let circuit = read_netlist(&options.input)?;
    eprintln!("read {circuit}");
    let ser_config = build_estimate_config(&circuit, &options)?;
    println!("Phi = {}", ser_config.elw.phi);

    let montecarlo = MonteCarloEstimator {
        campaign: CampaignConfig::new(options.injections)
            .with_seed(options.campaign_seed)
            .with_workers(options.threads),
    };
    if options.engine == "all" {
        let bands = options
            .tolerance
            .map(ToleranceBands::uniform)
            .unwrap_or_default();
        let report = check_agreement(&circuit, &ser_config, &montecarlo, bands)?;
        print!("{}", report.summary());
        if !report.agrees() {
            eprintln!(
                "estimators disagree: {} of {} pairs outside their band (exit 1)",
                report.divergent().len(),
                report.pairs.len()
            );
            return Ok(1);
        }
        return Ok(0);
    }

    let kind: EngineKind = options.engine.parse().map_err(CliError::Usage)?;
    let estimate = match kind {
        EngineKind::Analytic => AnalyticEstimator.estimate(&circuit, &ser_config)?,
        EngineKind::PropProb => PropProbEstimator.estimate(&circuit, &ser_config)?,
        EngineKind::MonteCarlo => montecarlo.estimate(&circuit, &ser_config)?,
        EngineKind::Exact => ExactEstimator {
            max_source_bits: options.max_source_bits,
        }
        .estimate(&circuit, &ser_config)?,
    };
    print_estimate(&estimate);
    // The heaviest contributors, so a lone engine run is actionable.
    let mut sites: Vec<_> = circuit
        .iter()
        .map(|(id, g)| (ser_config.rates.rate(&circuit, id) * estimate.site_p(id), g))
        .filter(|&(contribution, _)| contribution > 0.0)
        .collect();
    sites.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (contribution, gate) in sites.iter().take(5) {
        println!(
            "  {:>12} ({}): {:.4e} ({:.1}% of total)",
            gate.name(),
            gate.kind(),
            contribution,
            contribution / estimate.ser * 100.0
        );
    }
    Ok(0)
}

/// `retimer harden`: rank cells by hardening payoff, spend the area
/// budget, validate with a same-seed campaign.
fn run_harden() -> Result<u8, CliError> {
    const USAGE: &str = "usage: retimer harden INPUT[.bench|.blif|.v] \
         [--area-budget F] [--hardening-factor F] [--area-overhead F] \
         [--max-picks N] [--plan FILE.csv] [--no-validate] [--injections N] \
         [--campaign-seed S] [--phi P] [--vectors K] [--frames N] [--seed S] \
         [--threads T]";
    let options = parse_estimate_args(USAGE)?;
    let circuit = read_netlist(&options.input)?;
    eprintln!("read {circuit}");
    let ser_config = build_estimate_config(&circuit, &options)?;
    println!("Phi = {}", ser_config.elw.phi);

    let campaign = CampaignConfig::new(options.injections)
        .with_seed(options.campaign_seed)
        .with_workers(options.threads);
    let harden = HardenConfig {
        area_budget: options.area_budget,
        hardening_factor: options.hardening_factor,
        area_overhead: options.area_overhead,
        max_picks: options.max_picks,
    };
    let plan = advise(&circuit, &ser_config, &campaign, &harden)?;
    print!("{}", plan.summary());

    if let Some(path) = &options.plan {
        std::fs::write(path, plan.to_csv())?;
        println!("wrote {path}");
    }
    if options.validate && !plan.selected().is_empty() {
        let (before, after) = plan.validate(&circuit, &ser_config, &campaign)?;
        println!(
            "validation: SER {:.4e} -> {:.4e} measured ({:+.1}%)",
            before,
            after,
            (after / before - 1.0) * 100.0
        );
    }
    Ok(0)
}

struct BenchSolveOptions {
    out: String,
    gates: Vec<usize>,
    samples_only: bool,
    time_budget: Option<f64>,
    max_iters: Option<usize>,
    max_memory: Option<usize>,
}

fn parse_bench_solve_args() -> Result<BenchSolveOptions, String> {
    let mut args = std::env::args().skip(2); // binary name + "bench-solve"
    let mut options = BenchSolveOptions {
        out: "BENCH_solver.json".into(),
        gates: vec![300, 1000],
        samples_only: false,
        time_budget: None,
        max_iters: None,
        max_memory: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--gates" => {
                let list = args.next().ok_or("--gates needs a comma-separated list")?;
                options.gates = list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("invalid --gates list `{list}`"))?;
            }
            "--tier" => {
                let tier = args.next().ok_or("--tier needs a name")?;
                options.gates = bench_harness::tier_gates(&tier, options.gates)?;
            }
            "--samples-only" => options.samples_only = true,
            "--max-memory" => {
                options.max_memory = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--max-memory needs a byte count")?,
                )
            }
            "--time-budget" => {
                let secs: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--time-budget needs a number of seconds")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--time-budget needs a non-negative number".into());
                }
                options.time_budget = Some(secs);
            }
            "--max-iters" => {
                options.max_iters = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--max-iters needs a non-negative integer")?,
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: retimer bench-solve [--out FILE] [--gates N,N,...] \
                     [--tier small|large|xlarge] [--samples-only] \
                     [--time-budget SECS] [--max-iters N] [--max-memory BYTES]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// Benchmarks the incremental constraint checker and the warm-started
/// closure engine against their from-scratch counterparts and writes
/// the counters as JSON (`BENCH_solver.json`).
fn run_bench_solve() -> Result<u8, CliError> {
    use bench_harness::solver_bench;

    let options = parse_bench_solve_args()?;
    let mut instances = solver_bench::sample_instances();
    if !options.samples_only {
        for &gates in &options.gates {
            instances.push(solver_bench::generated_instance(gates)?);
        }
    }
    let budget = minobswin::SolveBudget::new()
        .with_wall_time(options.time_budget.map(std::time::Duration::from_secs_f64))
        .with_max_iterations(options.max_iters)
        .with_max_memory_estimate(options.max_memory);

    let mut degraded = false;
    let mut records = Vec::new();
    for instance in &instances {
        let record = solver_bench::measure_with_budget(instance, &budget)?;
        degraded |= record.incremental.stats.degradation.budget_stop.is_some()
            || record.full.stats.degradation.budget_stop.is_some();
        println!(
            "{:<16} |V| {:>5} |E| {:>5}  inc {:>7.1} edges/check, full {:>8.1} \
             ({:>5.1}x)  closure warm {:>8.0} arcs/call, fresh {:>9.0} ({:>5.1}x), \
             {:.3}s vs {:.3}s",
            record.name,
            record.vertices,
            record.edges,
            record.incremental.stats.perf.edges_per_check(),
            record.full.stats.perf.edges_per_check(),
            record.edge_relaxation_ratio(),
            record.incremental.stats.perf.arcs_per_closure(),
            record.full.stats.perf.arcs_per_closure(),
            record.closure_arc_ratio(),
            record.incremental.solve_seconds,
            record.full.solve_seconds,
        );
        records.push(record);
    }

    std::fs::write(&options.out, solver_bench::to_json(&records))?;
    println!("wrote {}", options.out);
    if degraded {
        eprintln!("budget exceeded: some runs were truncated (exit 4)");
        return Ok(EXIT_DEGRADED);
    }
    Ok(0)
}

struct BenchSerOptions {
    out: String,
    gates: Vec<usize>,
    samples_only: bool,
    vectors: usize,
    frames: usize,
    threads: usize,
}

fn parse_bench_ser_args() -> Result<BenchSerOptions, String> {
    let mut args = std::env::args().skip(2); // binary name + "bench-ser"
    let mut options = BenchSerOptions {
        out: "BENCH_ser.json".into(),
        gates: vec![400, 1500],
        samples_only: false,
        vectors: 1024,
        frames: 15,
        threads: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            "--gates" => {
                let list = args.next().ok_or("--gates needs a comma-separated list")?;
                options.gates = list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("invalid --gates list `{list}`"))?;
            }
            "--tier" => {
                let tier = args.next().ok_or("--tier needs a name")?;
                options.gates = bench_harness::tier_gates(&tier, options.gates)?;
            }
            "--samples-only" => options.samples_only = true,
            "--vectors" => {
                options.vectors = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--vectors needs a positive integer")?
            }
            "--frames" => {
                options.frames = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--frames needs a positive integer")?
            }
            "--threads" | "--workers" => {
                options.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a non-negative integer")?
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: retimer bench-ser [--out FILE] [--gates N,N,...] \
                     [--tier small|large|xlarge] [--samples-only] \
                     [--vectors K] [--frames N] [--threads T]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// Benchmarks the SER data plane — scalar per-signature engine vs. flat
/// arena engine vs. arena + worker pool — and writes the timings as
/// JSON (`BENCH_ser.json`).
fn run_bench_ser() -> Result<u8, CliError> {
    use bench_harness::ser_bench;

    let options = parse_bench_ser_args()?;
    let mut instances = ser_bench::sample_instances();
    if !options.samples_only {
        for &gates in &options.gates {
            instances.push(ser_bench::generated_instance(gates));
        }
    }
    let config = ser_bench::BenchSerConfig {
        num_vectors: options.vectors,
        frames: options.frames,
        threads: options.threads,
        ..ser_bench::BenchSerConfig::default()
    };

    let mut records = Vec::new();
    for instance in &instances {
        let record = ser_bench::measure(instance, &config);
        println!(
            "{:<16} |V| {:>6} gates  scalar {:>9.3} ms ({:>6} allocs), arena {:>9.3} ms \
             ({:>5} allocs, {:>5.2}x, {:>6.2} ns/g·f·v), arena+{} threads {:>9.3} ms ({:>5.2}x), \
             propprob {:>7.3} ms ({:>6.2} ns/g·f)",
            record.name,
            record.gates,
            record.scalar_nanos as f64 / 1e6,
            record.scalar_allocs,
            record.arena_nanos as f64 / 1e6,
            record.arena_allocs,
            record.arena_speedup(),
            record.arena_nanos_per_gfv(),
            record.threads,
            record.threaded_nanos as f64 / 1e6,
            record.threaded_speedup(),
            record.propprob_nanos as f64 / 1e6,
            record.propprob_nanos_per_gf(),
        );
        records.push(record);
    }

    std::fs::write(&options.out, ser_bench::to_json(&records))?;
    println!("wrote {}", options.out);
    Ok(0)
}

/// `retimer serve`: boots the daemon (crates/serve) on stdin/stdout or
/// a unix socket and runs it until drained. `--fsck` instead runs one
/// standalone cache-integrity pass and exits.
fn run_serve() -> Result<u8, CliError> {
    // Chaos and soak harnesses opt into filesystem fault injection
    // via SABOTAGE_FIO_PLAN (a malformed plan warns and stays inert).
    if let Some(plan) = netlist::fio::install_from_env() {
        eprintln!("warning: filesystem fault injection active: {plan:?}");
    }
    let (config, socket, fsck) = parse_serve_args()?;
    if fsck {
        let cache = serve::ResultCache::open(&config.cache_dir)
            .map_err(|e| CliError::Usage(format!("--fsck: {}: {e}", config.cache_dir.display())))?
            .with_max_bytes(config.cache_max_bytes);
        println!("{}", cache.fsck().to_json());
        return Ok(0);
    }
    let outcome = match socket {
        Some(path) => serve::run_socket(config, Path::new(&path)),
        None => serve::run_stdio(config),
    };
    outcome.map_err(CliError::Usage)
}

/// Parses a byte size: plain bytes, or with a `k`/`m`/`g` suffix
/// (binary multiples, case-insensitive).
fn parse_byte_size(s: &str) -> Option<u64> {
    let (digits, mult) = match s.trim().to_ascii_lowercase() {
        t if t.ends_with('k') => (t[..t.len() - 1].to_string(), 1u64 << 10),
        t if t.ends_with('m') => (t[..t.len() - 1].to_string(), 1u64 << 20),
        t if t.ends_with('g') => (t[..t.len() - 1].to_string(), 1u64 << 30),
        t => (t, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .and_then(|n| n.checked_mul(mult))
}

fn parse_serve_args() -> Result<(serve::ServeConfig, Option<String>, bool), String> {
    let mut args = std::env::args().skip(2); // binary name + "serve"
    let mut config = serve::ServeConfig::new(".retimer-cache");
    let mut socket: Option<String> = None;
    let mut fsck = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => config.cache_dir = args.next().ok_or("--cache needs a directory")?.into(),
            "--threads" | "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a non-negative integer")?
            }
            "--queue" => {
                config.queue_capacity = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--queue needs a positive integer")?
            }
            "--time-budget" => {
                config.default_time_budget = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&secs: &f64| secs.is_finite() && secs > 0.0)
                        .ok_or("--time-budget needs a positive number of seconds")?,
                )
            }
            "--max-iters" => {
                config.default_max_iters = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--max-iters needs a positive integer")?,
                )
            }
            "--cache-max-bytes" => {
                config.cache_max_bytes = Some(
                    args.next()
                        .as_deref()
                        .and_then(parse_byte_size)
                        .ok_or("--cache-max-bytes needs a positive size (bytes, or with k/m/g)")?,
                )
            }
            "--fsck" => fsck = true,
            "--socket" => socket = Some(args.next().ok_or("--socket needs a path")?),
            "--help" | "-h" => {
                eprintln!(
                    "usage: retimer serve [--cache DIR] [--threads T] [--queue N] \
                     [--time-budget SECS] [--max-iters N] [--cache-max-bytes SIZE] \
                     [--socket PATH] [--fsck]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((config, socket, fsck))
}

fn append_csv(path: &str, run: &minobswin::experiment::CircuitRun) -> std::io::Result<()> {
    use std::io::Write;
    let exists = Path::new(path).exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if !exists {
        writeln!(
            file,
            "circuit,v,e,ff,phi,rmin,setup_hold,ser_original,ser_propprob,\
             minobs_ff,minobs_ser,minobs_seconds,minobs_commits,\
             minobswin_ff,minobswin_ser,minobswin_seconds,minobswin_commits,ser_ratio"
        )?;
    }
    writeln!(
        file,
        "{},{},{},{},{},{},{},{:e},{:e},{},{:e},{},{},{},{:e},{},{},{}",
        run.name,
        run.v,
        run.e,
        run.ff,
        run.phi,
        run.r_min,
        run.used_setup_hold,
        run.ser_original,
        run.ser_propprob,
        run.minobs.registers,
        run.minobs.ser,
        run.minobs.solve_seconds,
        run.minobs.stats.commits,
        run.minobswin.registers,
        run.minobswin.ser,
        run.minobswin.solve_seconds,
        run.minobswin.stats.commits,
        run.ser_ratio(),
    )
}
