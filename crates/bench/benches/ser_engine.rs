//! SER analysis engine throughput: simulation, ODC observabilities and
//! the full eq. (4) analysis, including the scalar-vs-arena data-plane
//! comparison behind `BENCH_ser.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netlist::generator::GeneratorConfig;
use netlist::Circuit;
use ser_engine::odc::Observability;
use ser_engine::scalar::{self, ScalarTrace};
use ser_engine::sim::{FrameTrace, SimConfig};
use ser_engine::{analyze, SerConfig};

fn circuit_of(gates: usize) -> Circuit {
    GeneratorConfig::new("ser_bench", gates as u64)
        .gates(gates)
        .registers(gates / 5)
        .build()
}

fn sim_config(threads: usize) -> SimConfig {
    SimConfig {
        num_vectors: 1024,
        frames: 15,
        warmup: 8,
        seed: 1,
        threads,
    }
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_simulation");
    group.sample_size(10);
    for gates in [400usize, 1200] {
        let circuit = circuit_of(gates);
        let config = sim_config(1);
        group.bench_with_input(BenchmarkId::from_parameter(gates), &circuit, |b, ckt| {
            b.iter(|| FrameTrace::simulate(ckt, config))
        });
    }
    group.finish();
}

fn bench_observability(c: &mut Criterion) {
    let mut group = c.benchmark_group("odc_observability");
    group.sample_size(10);
    for gates in [400usize, 1200] {
        let circuit = circuit_of(gates);
        let config = sim_config(1);
        let trace = FrameTrace::simulate(&circuit, config);
        group.bench_with_input(
            BenchmarkId::from_parameter(gates),
            &(&circuit, &trace),
            |b, (ckt, tr)| b.iter(|| Observability::compute(ckt, tr)),
        );
    }
    group.finish();
}

/// The scalar-vs-arena data-plane comparison (simulation + ODC end to
/// end), the criterion twin of `retimer bench-ser`.
fn bench_data_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("ser_data_plane");
    group.sample_size(10);
    let gates = 800usize;
    let circuit = circuit_of(gates);
    group.bench_function(BenchmarkId::new("scalar", gates), |b| {
        b.iter(|| {
            let trace = ScalarTrace::simulate(&circuit, sim_config(1));
            scalar::observability(&circuit, &trace)
        })
    });
    group.bench_function(BenchmarkId::new("arena_1_thread", gates), |b| {
        b.iter(|| {
            let trace = FrameTrace::simulate(&circuit, sim_config(1));
            Observability::compute(&circuit, &trace)
        })
    });
    group.bench_function(BenchmarkId::new("arena_pooled", gates), |b| {
        b.iter(|| {
            let trace = FrameTrace::simulate(&circuit, sim_config(0));
            Observability::compute(&circuit, &trace)
        })
    });
    group.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_ser_analysis");
    group.sample_size(10);
    let gates = 500usize;
    let circuit = circuit_of(gates);
    let config = SerConfig {
        sim: SimConfig {
            num_vectors: 512,
            frames: 10,
            warmup: 8,
            seed: 1,
            threads: 1,
        },
        ..SerConfig::with_phi(200)
    };
    group.bench_with_input(BenchmarkId::from_parameter(gates), &circuit, |b, ckt| {
        b.iter(|| analyze(ckt, &config).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_observability,
    bench_data_plane,
    bench_full_analysis
);
criterion_main!(benches);
