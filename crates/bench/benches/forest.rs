//! Micro-benchmarks of the move-set machinery: the weighted regular
//! forest operations (the paper's data structure) and the exact
//! max-gain-closure selection the solver uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobswin::closure::ConstraintSystem;
use minobswin::forest::WeightedRegularForest;
use netlist::rng::Xoshiro256;
use retime::VertexId;

fn random_gains(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = vec![0i64];
    b.extend((1..n).map(|_| rng.gen_range(201) as i64 - 100));
    b
}

fn bench_forest_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_update");
    for n in [200usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut forest = WeightedRegularForest::new(random_gains(n, 3));
                let mut rng = Xoshiro256::seed_from_u64(5);
                for _ in 0..n / 2 {
                    let p = 1 + rng.gen_range(n - 1);
                    let q = 1 + rng.gen_range(n - 1);
                    if p != q {
                        forest.update(VertexId::new(p), VertexId::new(q), 1);
                    }
                }
                forest.positive_set().len()
            })
        });
    }
    group.finish();
}

fn bench_closure_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_gain_closure");
    for n in [200usize, 1000, 5000] {
        let mut cs = ConstraintSystem::new(random_gains(n, 3));
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..2 * n {
            let p = 1 + rng.gen_range(n - 1);
            let q = 1 + rng.gen_range(n - 1);
            if p != q {
                cs.add_arc(VertexId::new(p), VertexId::new(q));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &cs, |bench, cs| {
            bench.iter(|| cs.max_gain_closed_set().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest_updates, bench_closure_selection);
criterion_main!(benches);
