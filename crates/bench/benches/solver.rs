//! Criterion bench of the solver's incremental engines: the
//! dirty-region checker vs. full from-scratch recomputes
//! (`SolverConfig::with_incremental(false)`) and the warm-started
//! closure engine vs. fresh Dinic builds
//! (`SolverConfig::with_closure_engine(ClosureEngine::Fresh)`), on
//! generated circuits.

use bench_harness::solver_bench::{generated_instance, BenchInstance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobswin::algorithm::SolverConfig;
use minobswin::closure_inc::ClosureEngine;
use minobswin::SolverSession;

fn solve_with(instance: &BenchInstance, config: SolverConfig) {
    SolverSession::new(&instance.graph, &instance.problem)
        .config(config)
        .initial(instance.initial.clone())
        .run()
        .unwrap();
}

fn bench_constraint_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_engines");
    group.sample_size(10);
    for gates in [300usize, 1000] {
        let instance = generated_instance(gates).unwrap();
        group.bench_with_input(
            BenchmarkId::new("incremental", gates),
            &instance,
            |b, inst| b.iter(|| solve_with(inst, SolverConfig::default())),
        );
        group.bench_with_input(BenchmarkId::new("full", gates), &instance, |b, inst| {
            b.iter(|| solve_with(inst, SolverConfig::default().with_incremental(false)))
        });
    }
    group.finish();
}

fn bench_closure_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_engines");
    group.sample_size(10);
    for gates in [300usize, 1000] {
        let instance = generated_instance(gates).unwrap();
        group.bench_with_input(BenchmarkId::new("warm", gates), &instance, |b, inst| {
            b.iter(|| solve_with(inst, SolverConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("fresh", gates), &instance, |b, inst| {
            b.iter(|| {
                solve_with(
                    inst,
                    SolverConfig::default().with_closure_engine(ClosureEngine::Fresh),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constraint_engines, bench_closure_engines);
criterion_main!(benches);
