//! Error-latching-window machinery: interval-set operations and the
//! exact eq. (3) backward propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netlist::generator::GeneratorConfig;
use netlist::rng::Xoshiro256;
use netlist::DelayModel;
use retime::{ElwParams, LrLabels, RetimeGraph, Retiming};
use ser_engine::elw::compute_elws;
use ser_engine::IntervalSet;

fn bench_interval_sets(c: &mut Criterion) {
    c.bench_function("interval_insert_1000", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let ops: Vec<(i64, i64)> = (0..1000)
            .map(|_| {
                let lo = rng.gen_range(100_000) as i64;
                (lo, lo + rng.gen_range(50) as i64)
            })
            .collect();
        b.iter(|| {
            let mut set = IntervalSet::new();
            for &(lo, hi) in &ops {
                set.insert(lo, hi);
            }
            set.total_length()
        })
    });
}

fn bench_elw_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("elw_eq3");
    group.sample_size(20);
    for gates in [400usize, 1200] {
        let circuit = GeneratorConfig::new("elw", gates as u64)
            .gates(gates)
            .registers(gates / 5)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        let r = Retiming::zero(&graph);
        let phi = retime::timing::clock_period(&graph, &r).unwrap() + 2;
        let params = ElwParams::with_phi(phi);
        group.bench_with_input(
            BenchmarkId::new("exact_intervals", gates),
            &(&graph, &r),
            |b, (g, r)| b.iter(|| compute_elws(g, r, params).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("lr_bounds", gates),
            &(&graph, &r),
            |b, (g, r)| b.iter(|| LrLabels::compute(g, r, params).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interval_sets, bench_elw_propagation);
criterion_main!(benches);
