//! Scaling behaviour of the whole per-circuit experiment against
//! circuit size (the paper's complexity claims: `O(|E|)` memory,
//! `O(|V|²|E|)` worst-case time, near-linear observed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobswin::experiment::{Experiment, RunConfig};
use netlist::generator::GeneratorConfig;
use ser_engine::sim::SimConfig;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_experiment");
    group.sample_size(10);
    for gates in [200usize, 400, 800] {
        let circuit = GeneratorConfig::new("scale", gates as u64)
            .gates(gates)
            .registers(gates / 5)
            .target_edges(gates * 22 / 10)
            .build();
        let config = RunConfig::default().with_sim(SimConfig {
            num_vectors: 256,
            frames: 8,
            warmup: 6,
            seed: 9,
            threads: 1,
        });
        group.bench_with_input(BenchmarkId::from_parameter(gates), &circuit, |b, ckt| {
            b.iter(|| Experiment::new(ckt).config(config.clone()).run().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
