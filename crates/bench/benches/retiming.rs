//! Solver runtime: Efficient MinObs vs. MinObsWin (the paper's
//! `t_ref`/`t_new` columns — MinObsWin was ~2.5× slower on average).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobswin::algorithm::SolverConfig;
use minobswin::init::InitConfig;
use minobswin::{Problem, SolverSession};
use netlist::generator::GeneratorConfig;
use netlist::rng::Xoshiro256;
use netlist::DelayModel;
use retime::{ElwParams, RetimeGraph};

struct Prepared {
    graph: RetimeGraph,
    problem: Problem,
    initial: retime::Retiming,
}

fn prepare(gates: usize) -> Prepared {
    let circuit = GeneratorConfig::new("bench", gates as u64)
        .gates(gates)
        .registers(gates / 5)
        .inputs(12)
        .outputs(12)
        .target_edges(gates * 22 / 10)
        .build();
    let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
    let init = InitConfig::default().initialize(&graph).unwrap();
    let params = ElwParams::with_phi(init.phi);
    // Synthetic observability counts stand in for the simulation here
    // (the solvers only see the b coefficients).
    let mut rng = Xoshiro256::seed_from_u64(7);
    let counts: Vec<i64> = (0..graph.num_vertices())
        .map(|i| {
            if i == 0 {
                1024
            } else {
                rng.gen_range(1025) as i64
            }
        })
        .collect();
    let problem = Problem::from_observability_counts(&graph, &counts, params, init.r_min);
    Prepared {
        graph,
        problem,
        initial: init.retiming,
    }
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("retiming_solvers");
    group.sample_size(10);
    for gates in [300usize, 1000] {
        let prepared = prepare(gates);
        group.bench_with_input(BenchmarkId::new("minobs", gates), &prepared, |b, p| {
            b.iter(|| {
                SolverSession::new(&p.graph, &p.problem)
                    .config(SolverConfig::default().with_p2(false))
                    .initial(p.initial.clone())
                    .run()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("minobswin", gates), &prepared, |b, p| {
            b.iter(|| {
                SolverSession::new(&p.graph, &p.problem)
                    .initial(p.initial.clone())
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_initialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("initialization");
    group.sample_size(10);
    for gates in [300usize, 1000] {
        let circuit = GeneratorConfig::new("init", gates as u64)
            .gates(gates)
            .registers(gates / 5)
            .build();
        let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("section_v", gates), &graph, |b, g| {
            b.iter(|| InitConfig::default().initialize(g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_initialization);
criterion_main!(benches);
