//! Monte-Carlo fault-injection throughput: atlas precompute and
//! campaign sampling, single- vs multi-worker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultsim::{run_campaign_on, CampaignConfig, FaultAtlas};
use netlist::generator::GeneratorConfig;
use netlist::Circuit;
use ser_engine::sim::SimConfig;
use ser_engine::SerConfig;

fn circuit_of(gates: usize) -> Circuit {
    GeneratorConfig::new("faultsim_bench", gates as u64)
        .gates(gates)
        .registers(gates / 5)
        .build()
}

fn bench_config() -> SerConfig {
    SerConfig {
        sim: SimConfig {
            num_vectors: 512,
            frames: 8,
            warmup: 8,
            seed: 1,
            threads: 1,
        },
        ..SerConfig::with_phi(200)
    }
}

fn bench_atlas_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("faultsim_atlas");
    group.sample_size(10);
    for gates in [200usize, 600] {
        let circuit = circuit_of(gates);
        let config = bench_config();
        group.bench_with_input(BenchmarkId::from_parameter(gates), &circuit, |b, ckt| {
            b.iter(|| FaultAtlas::build(ckt, &config, 0).unwrap())
        });
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("faultsim_campaign_50k");
    group.sample_size(10);
    let circuit = circuit_of(400);
    let config = bench_config();
    let atlas = FaultAtlas::build(&circuit, &config, 0).unwrap();
    for workers in [1usize, 4] {
        let campaign = CampaignConfig::new(50_000).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &campaign,
            |b, campaign| b.iter(|| run_campaign_on(&atlas, circuit.name(), campaign)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_atlas_build, bench_campaign);
criterion_main!(benches);
