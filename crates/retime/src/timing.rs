//! Timing analysis of a retimed graph: the zero-weight (purely
//! combinational) subgraph, arrival times and the clock period.

use crate::error::RetimeError;
use crate::graph::{EdgeId, RetimeGraph, Retiming, VertexId};

/// Topological order of the *zero-weight subgraph* of the retimed
/// graph: only edges with `w_r(e) = 0` (and neither endpoint the host)
/// constrain the order. Host and registered edges break combinational
/// paths.
///
/// # Errors
///
/// Returns [`RetimeError::ZeroWeightCycle`] if the retiming leaves a
/// cycle with no registers on it (an invalid retiming).
pub fn zero_weight_topo(
    graph: &RetimeGraph,
    r: &Retiming,
) -> Result<Vec<VertexId>, RetimeError> {
    let n = graph.num_vertices();
    let mut indeg = vec![0usize; n];
    for (i, edge) in graph.edges().iter().enumerate() {
        if is_combinational_edge(graph, EdgeId::new(i), r) {
            indeg[edge.to.index()] += 1;
        }
    }
    let mut queue: Vec<VertexId> = graph.vertices().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n - 1);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &e in graph.out_edges(v) {
            if !is_combinational_edge(graph, e, r) {
                continue;
            }
            let to = graph.edge(e).to;
            indeg[to.index()] -= 1;
            if indeg[to.index()] == 0 {
                queue.push(to);
            }
        }
    }
    if order.len() != n - 1 {
        return Err(RetimeError::ZeroWeightCycle);
    }
    Ok(order)
}

/// Whether an edge carries a combinational dependency under `r`:
/// neither endpoint is the host and the retimed weight is zero.
pub fn is_combinational_edge(graph: &RetimeGraph, e: EdgeId, r: &Retiming) -> bool {
    let edge = graph.edge(e);
    !edge.from.is_host() && !edge.to.is_host() && graph.retimed_weight(e, r) == 0
}

/// Arrival times of the retimed graph: `a(v)` is the maximum delay of
/// any combinational path ending at (and including) `v`, measured from
/// the registers/PIs that source the paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTimes {
    arrivals: Vec<i64>,
}

impl ArrivalTimes {
    /// Computes arrival times under retiming `r`.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::ZeroWeightCycle`] for invalid retimings.
    pub fn compute(graph: &RetimeGraph, r: &Retiming) -> Result<Self, RetimeError> {
        let order = zero_weight_topo(graph, r)?;
        Ok(Self::compute_with_order(graph, r, &order))
    }

    /// Computes arrival times reusing a precomputed topological order
    /// (must come from [`zero_weight_topo`] for the same `graph`/`r`).
    pub fn compute_with_order(
        graph: &RetimeGraph,
        r: &Retiming,
        order: &[VertexId],
    ) -> Self {
        let mut arrivals = vec![0i64; graph.num_vertices()];
        for &v in order {
            let mut best = 0i64;
            for &e in graph.in_edges(v) {
                if is_combinational_edge(graph, e, r) {
                    best = best.max(arrivals[graph.edge(e).from.index()]);
                }
            }
            arrivals[v.index()] = best + graph.delay(v);
        }
        Self { arrivals }
    }

    /// Arrival time of one vertex.
    pub fn get(&self, v: VertexId) -> i64 {
        self.arrivals[v.index()]
    }

    /// The clock period of the retimed circuit: the largest arrival
    /// time (longest register-to-register combinational path).
    pub fn clock_period(&self) -> i64 {
        self.arrivals.iter().copied().max().unwrap_or(0)
    }
}

/// Convenience: the clock period of the retimed circuit.
///
/// # Errors
///
/// Returns [`RetimeError::ZeroWeightCycle`] for invalid retimings.
pub fn clock_period(graph: &RetimeGraph, r: &Retiming) -> Result<i64, RetimeError> {
    Ok(ArrivalTimes::compute(graph, r)?.clock_period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    fn pipeline_graph() -> RetimeGraph {
        // 9 unit-delay stages, register after every 3rd.
        let c = samples::pipeline(9, 3);
        RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap()
    }

    #[test]
    fn clock_period_of_balanced_pipeline() {
        let g = pipeline_graph();
        let r = Retiming::zero(&g);
        // Segments of 3 unit-delay gates between registers.
        assert_eq!(clock_period(&g, &r).unwrap(), 3);
    }

    #[test]
    fn topo_covers_all_vertices() {
        let g = pipeline_graph();
        let r = Retiming::zero(&g);
        let order = zero_weight_topo(&g, &r).unwrap();
        assert_eq!(order.len(), g.num_vertices() - 1);
    }

    #[test]
    fn removing_register_creates_cycle_error() {
        // two_stage_loop: moving both registers "off" the loop must be
        // caught as a zero-weight cycle.
        let c = samples::two_stage_loop();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        // Build a retiming that zeroes every cycle edge: shift r on all
        // loop vertices so that the loop's registers both land on the
        // same edge... simplest: find a registered edge on the loop and
        // force its weight up while another goes negative; we just craft
        // r by hand: set r so that each registered in-loop edge becomes
        // 0 and some edge gets weight 2. Use the generic property: any r
        // keeps total loop weight constant, so zeroing all loop edges is
        // impossible — instead test a retiming that is simply invalid.
        let f1 = g.vertex_of(c.find("f1").unwrap()).unwrap();
        let mut r = Retiming::zero(&g);
        r.set(f1, 5); // pulls 5 registers onto f1's in-edges: in-edges gain, out-edge f1->f2 loses
        // f1 -> f2 edge now has weight -5 < 0: P0 catches it...
        assert!(g.check_nonnegative(&r).is_err());
        // ...and arrival computation on the subgraph ignores negative
        // edges as "registered", so topo still succeeds. The dedicated
        // cycle error fires when a cycle's edges are all zero:
        // r cannot produce that here, confirming the invariant.
        assert!(zero_weight_topo(&g, &r).is_ok());
    }

    #[test]
    fn arrival_times_accumulate() {
        let c = samples::pipeline(6, 6); // one segment of 6 gates + feedback reg
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let arr = ArrivalTimes::compute(&g, &r).unwrap();
        let s5 = g.vertex_of(c.find("s5").unwrap()).unwrap();
        assert_eq!(arr.get(s5), 6);
        assert_eq!(arr.clock_period(), 6);
    }

    #[test]
    fn retiming_changes_period() {
        // pipeline(6,3): registers after s2 (r0) and after s5 (fb):
        // balanced 3+3, period 3. Moving r0 backward over s2 unbalances
        // to 2+4.
        let c = samples::pipeline(6, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        assert_eq!(clock_period(&g, &Retiming::zero(&g)).unwrap(), 3);
        let mut r = Retiming::zero(&g);
        let s2 = g.vertex_of(c.find("s2").unwrap()).unwrap();
        r.set(s2, 1);
        g.check_nonnegative(&r).unwrap();
        assert_eq!(clock_period(&g, &r).unwrap(), 4, "segments now 2 and 4");
    }
}
