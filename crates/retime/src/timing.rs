//! Timing analysis of a retimed graph: the zero-weight (purely
//! combinational) subgraph, arrival times and the clock period.

use crate::error::RetimeError;
use crate::graph::{EdgeId, RetimeGraph, Retiming, VertexId};

/// Topological order of the *zero-weight subgraph* of the retimed
/// graph: only edges with `w_r(e) = 0` (and neither endpoint the host)
/// constrain the order. Host and registered edges break combinational
/// paths.
///
/// # Errors
///
/// Returns [`RetimeError::ZeroWeightCycle`] if the retiming leaves a
/// cycle with no registers on it (an invalid retiming).
pub fn zero_weight_topo(graph: &RetimeGraph, r: &Retiming) -> Result<Vec<VertexId>, RetimeError> {
    let n = graph.num_vertices();
    let mut indeg = vec![0usize; n];
    for (i, edge) in graph.edges().iter().enumerate() {
        if is_combinational_edge(graph, EdgeId::new(i), r) {
            indeg[edge.to.index()] += 1;
        }
    }
    let mut queue: Vec<VertexId> = graph.vertices().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n - 1);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &e in graph.out_edges(v) {
            if !is_combinational_edge(graph, e, r) {
                continue;
            }
            let to = graph.edge(e).to;
            indeg[to.index()] -= 1;
            if indeg[to.index()] == 0 {
                queue.push(to);
            }
        }
    }
    if order.len() != n - 1 {
        return Err(RetimeError::ZeroWeightCycle);
    }
    Ok(order)
}

/// Whether an edge carries a combinational dependency under `r`:
/// neither endpoint is the host and the retimed weight is zero.
pub fn is_combinational_edge(graph: &RetimeGraph, e: EdgeId, r: &Retiming) -> bool {
    let edge = graph.edge(e);
    !edge.from.is_host() && !edge.to.is_host() && graph.retimed_weight(e, r) == 0
}

/// Reusable scratch for the fused topological-sort + arrival-time pass
/// that the FEAS feasibility probes run thousands of times per
/// binary-search probe. One [`ArrivalScratch::compute`] call does the
/// work of [`zero_weight_topo`] followed by
/// [`ArrivalTimes::compute_with_order`] in a single traversal with no
/// allocations after the first call — at 10k gates this halves the cost
/// of every FEAS iteration.
///
/// The traversal visits vertices in the exact order [`zero_weight_topo`]
/// produces and evaluates the same max-over-in-edges recurrence, so the
/// arrivals, the period and the recorded order are bit-identical to the
/// two-pass path.
#[derive(Debug, Default)]
pub struct ArrivalScratch {
    indeg: Vec<u32>,
    order: Vec<VertexId>,
    arrivals: Vec<i64>,
}

impl ArrivalScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the fused pass under retiming `r`. Returns the clock period
    /// (maximum arrival time), or `None` when the zero-weight subgraph
    /// has a cycle (an invalid retiming). The per-vertex arrivals and
    /// the topological order stay readable until the next call.
    pub fn compute(&mut self, graph: &RetimeGraph, r: &Retiming) -> Option<i64> {
        let n = graph.num_vertices();
        self.indeg.clear();
        self.indeg.resize(n, 0);
        for (i, edge) in graph.edges().iter().enumerate() {
            if is_combinational_edge(graph, EdgeId::new(i), r) {
                self.indeg[edge.to.index()] += 1;
            }
        }
        self.order.clear();
        self.order
            .extend(graph.vertices().filter(|v| self.indeg[v.index()] == 0));
        self.arrivals.clear();
        self.arrivals.resize(n, 0);
        let mut head = 0;
        let mut period = 0i64;
        while head < self.order.len() {
            let v = self.order[head];
            head += 1;
            let mut best = 0i64;
            for &e in graph.in_edges(v) {
                if is_combinational_edge(graph, e, r) {
                    best = best.max(self.arrivals[graph.edge(e).from.index()]);
                }
            }
            let a = best + graph.delay(v);
            self.arrivals[v.index()] = a;
            period = period.max(a);
            for &e in graph.out_edges(v) {
                if !is_combinational_edge(graph, e, r) {
                    continue;
                }
                let to = graph.edge(e).to;
                self.indeg[to.index()] -= 1;
                if self.indeg[to.index()] == 0 {
                    self.order.push(to);
                }
            }
        }
        (self.order.len() == n - 1).then_some(period)
    }

    /// The topological order of the last successful pass (the same
    /// order [`zero_weight_topo`] returns).
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// The arrival time of one vertex from the last pass.
    pub fn arrival(&self, v: VertexId) -> i64 {
        self.arrivals[v.index()]
    }
}

/// Reusable scratch space for computing the *dirty cone* of a
/// tentative retiming move: the set of vertices whose `L`/`R` labels
/// may differ between a base retiming `r_old` and a tentative `r_new`.
///
/// The seeds are the tails of edges whose retimed weight changed; the
/// cone is their backward closure along edges that are combinational
/// under **either** retiming (labels propagate backward over
/// zero-weight edges, and an edge entering or leaving the zero-weight
/// subgraph changes its tail's label inputs). Vertices outside the
/// cone keep their labels verbatim, which is what makes in-place
/// [`crate::labels::LrLabels::relax_region`] sound.
#[derive(Debug, Default)]
pub struct DirtyCone {
    in_cone: Vec<bool>,
    cone: Vec<VertexId>,
    ordered: Vec<VertexId>,
    indeg: Vec<usize>,
}

impl DirtyCone {
    /// Creates an empty scratch cone (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the dirty cone for the move `r_old → r_new` from the
    /// given `seeds`, returning its vertices ordered so that each comes
    /// after all of its in-cone combinational fanouts under `r_new` —
    /// the processing order
    /// [`crate::labels::LrLabels::relax_region`] requires.
    ///
    /// Returns `None` when the cone would exceed `cap` vertices: the
    /// caller should fall back to a full recompute. The returned slice
    /// borrows internal scratch buffers and is valid until the next
    /// call.
    pub fn compute(
        &mut self,
        graph: &RetimeGraph,
        r_old: &Retiming,
        r_new: &Retiming,
        seeds: &[VertexId],
        cap: usize,
    ) -> Option<&[VertexId]> {
        let n = graph.num_vertices();
        self.in_cone.clear();
        self.in_cone.resize(n, false);
        self.cone.clear();
        for &s in seeds {
            if !s.is_host() && !self.in_cone[s.index()] {
                self.in_cone[s.index()] = true;
                self.cone.push(s);
            }
        }
        // Backward closure along edges combinational under either
        // retiming.
        let mut head = 0;
        while head < self.cone.len() {
            if self.cone.len() > cap {
                return None;
            }
            let v = self.cone[head];
            head += 1;
            for &e in graph.in_edges(v) {
                if !is_combinational_edge(graph, e, r_old)
                    && !is_combinational_edge(graph, e, r_new)
                {
                    continue;
                }
                let u = graph.edge(e).from;
                if !self.in_cone[u.index()] {
                    self.in_cone[u.index()] = true;
                    self.cone.push(u);
                }
            }
        }
        if self.cone.len() > cap {
            return None;
        }
        // Local reverse-topological order under r_new: Kahn over the
        // in-cone combinational out-edges. "No unprocessed in-cone
        // combinational fanout" plays the role of in-degree zero.
        self.indeg.clear();
        self.indeg.resize(n, 0);
        for &v in &self.cone {
            let mut deg = 0;
            for &e in graph.out_edges(v) {
                if is_combinational_edge(graph, e, r_new) && self.in_cone[graph.edge(e).to.index()]
                {
                    deg += 1;
                }
            }
            self.indeg[v.index()] = deg;
        }
        self.ordered.clear();
        self.ordered.extend(
            self.cone
                .iter()
                .copied()
                .filter(|v| self.indeg[v.index()] == 0),
        );
        let mut head = 0;
        while head < self.ordered.len() {
            let v = self.ordered[head];
            head += 1;
            for &e in graph.in_edges(v) {
                if !is_combinational_edge(graph, e, r_new) {
                    continue;
                }
                let u = graph.edge(e).from;
                if self.in_cone[u.index()] {
                    self.indeg[u.index()] -= 1;
                    if self.indeg[u.index()] == 0 {
                        self.ordered.push(u);
                    }
                }
            }
        }
        debug_assert_eq!(
            self.ordered.len(),
            self.cone.len(),
            "dirty cone has a zero-weight cycle under the new retiming"
        );
        Some(&self.ordered)
    }

    /// The vertices of the most recently computed cone, unordered.
    pub fn members(&self) -> &[VertexId] {
        &self.cone
    }
}

/// Arrival times of the retimed graph: `a(v)` is the maximum delay of
/// any combinational path ending at (and including) `v`, measured from
/// the registers/PIs that source the paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTimes {
    arrivals: Vec<i64>,
}

impl ArrivalTimes {
    /// Computes arrival times under retiming `r`.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::ZeroWeightCycle`] for invalid retimings.
    pub fn compute(graph: &RetimeGraph, r: &Retiming) -> Result<Self, RetimeError> {
        let order = zero_weight_topo(graph, r)?;
        Ok(Self::compute_with_order(graph, r, &order))
    }

    /// Computes arrival times reusing a precomputed topological order
    /// (must come from [`zero_weight_topo`] for the same `graph`/`r`).
    pub fn compute_with_order(graph: &RetimeGraph, r: &Retiming, order: &[VertexId]) -> Self {
        let mut arrivals = vec![0i64; graph.num_vertices()];
        for &v in order {
            let mut best = 0i64;
            for &e in graph.in_edges(v) {
                if is_combinational_edge(graph, e, r) {
                    best = best.max(arrivals[graph.edge(e).from.index()]);
                }
            }
            arrivals[v.index()] = best + graph.delay(v);
        }
        Self { arrivals }
    }

    /// Arrival time of one vertex.
    pub fn get(&self, v: VertexId) -> i64 {
        self.arrivals[v.index()]
    }

    /// The clock period of the retimed circuit: the largest arrival
    /// time (longest register-to-register combinational path).
    pub fn clock_period(&self) -> i64 {
        self.arrivals.iter().copied().max().unwrap_or(0)
    }
}

/// Convenience: the clock period of the retimed circuit.
///
/// # Errors
///
/// Returns [`RetimeError::ZeroWeightCycle`] for invalid retimings.
pub fn clock_period(graph: &RetimeGraph, r: &Retiming) -> Result<i64, RetimeError> {
    Ok(ArrivalTimes::compute(graph, r)?.clock_period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    fn pipeline_graph() -> RetimeGraph {
        // 9 unit-delay stages, register after every 3rd.
        let c = samples::pipeline(9, 3);
        RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap()
    }

    #[test]
    fn clock_period_of_balanced_pipeline() {
        let g = pipeline_graph();
        let r = Retiming::zero(&g);
        // Segments of 3 unit-delay gates between registers.
        assert_eq!(clock_period(&g, &r).unwrap(), 3);
    }

    #[test]
    fn topo_covers_all_vertices() {
        let g = pipeline_graph();
        let r = Retiming::zero(&g);
        let order = zero_weight_topo(&g, &r).unwrap();
        assert_eq!(order.len(), g.num_vertices() - 1);
    }

    #[test]
    fn removing_register_creates_cycle_error() {
        // two_stage_loop: moving both registers "off" the loop must be
        // caught as a zero-weight cycle.
        let c = samples::two_stage_loop();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        // Build a retiming that zeroes every cycle edge: shift r on all
        // loop vertices so that the loop's registers both land on the
        // same edge... simplest: find a registered edge on the loop and
        // force its weight up while another goes negative; we just craft
        // r by hand: set r so that each registered in-loop edge becomes
        // 0 and some edge gets weight 2. Use the generic property: any r
        // keeps total loop weight constant, so zeroing all loop edges is
        // impossible — instead test a retiming that is simply invalid.
        let f1 = g.vertex_of(c.find("f1").unwrap()).unwrap();
        let mut r = Retiming::zero(&g);
        r.set(f1, 5); // pulls 5 registers onto f1's in-edges: in-edges gain, out-edge f1->f2 loses
                      // f1 -> f2 edge now has weight -5 < 0: P0 catches it...
        assert!(g.check_nonnegative(&r).is_err());
        // ...and arrival computation on the subgraph ignores negative
        // edges as "registered", so topo still succeeds. The dedicated
        // cycle error fires when a cycle's edges are all zero:
        // r cannot produce that here, confirming the invariant.
        assert!(zero_weight_topo(&g, &r).is_ok());
    }

    #[test]
    fn arrival_times_accumulate() {
        let c = samples::pipeline(6, 6); // one segment of 6 gates + feedback reg
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let arr = ArrivalTimes::compute(&g, &r).unwrap();
        let s5 = g.vertex_of(c.find("s5").unwrap()).unwrap();
        assert_eq!(arr.get(s5), 6);
        assert_eq!(arr.clock_period(), 6);
    }

    #[test]
    fn dirty_cone_is_backward_closure_with_valid_order() {
        // pipeline(9,3): s0..s8, registers after s2 and s5 plus the
        // feedback register. Move the first register backward over s2.
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let v = |name: &str| g.vertex_of(c.find(name).unwrap()).unwrap();
        let r_old = Retiming::zero(&g);
        let mut r_new = Retiming::zero(&g);
        r_new.set(v("s2"), 1);
        g.check_nonnegative(&r_new).unwrap();
        // Changed edges: s1->s2 (0→1) and s2->s3 (1→0); seeds are the
        // tails.
        let seeds = [v("s1"), v("s2")];
        let mut scratch = DirtyCone::new();
        let ordered: Vec<VertexId> = scratch
            .compute(&g, &r_old, &r_new, &seeds, g.num_vertices())
            .expect("under cap")
            .to_vec();
        let mut sorted = ordered.clone();
        sorted.sort();
        // The PI vertex `in` feeds s0 combinationally, so it joins the
        // backward closure.
        assert_eq!(sorted, vec![v("in"), v("s0"), v("s1"), v("s2")]);
        // s0 must come after its in-cone combinational fanout s1.
        let pos = |x: VertexId| ordered.iter().position(|&y| y == x).unwrap();
        assert!(pos(v("s0")) > pos(v("s1")));
        // Cap smaller than the cone forces the fallback signal.
        assert!(scratch.compute(&g, &r_old, &r_new, &seeds, 2).is_none());
    }

    #[test]
    fn dirty_cone_relaxation_matches_full_recompute() {
        use crate::labels::{ElwParams, LrLabels};
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let v = |name: &str| g.vertex_of(c.find(name).unwrap()).unwrap();
        let r_old = Retiming::zero(&g);
        let mut r_new = Retiming::zero(&g);
        r_new.set(v("s2"), 1);
        let params = ElwParams::with_phi(10);
        let mut labels = LrLabels::compute(&g, &r_old, params).unwrap();
        let mut scratch = DirtyCone::new();
        let ordered = scratch
            .compute(&g, &r_old, &r_new, &[v("s1"), v("s2")], g.num_vertices())
            .unwrap()
            .to_vec();
        labels.relax_region(&g, &r_new, &ordered);
        let fresh = LrLabels::compute(&g, &r_new, params).unwrap();
        assert_eq!(
            labels, fresh,
            "incremental relaxation must be bit-identical"
        );
    }

    #[test]
    fn retiming_changes_period() {
        // pipeline(6,3): registers after s2 (r0) and after s5 (fb):
        // balanced 3+3, period 3. Moving r0 backward over s2 unbalances
        // to 2+4.
        let c = samples::pipeline(6, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        assert_eq!(clock_period(&g, &Retiming::zero(&g)).unwrap(), 3);
        let mut r = Retiming::zero(&g);
        let s2 = g.vertex_of(c.find("s2").unwrap()).unwrap();
        r.set(s2, 1);
        g.check_nonnegative(&r).unwrap();
        assert_eq!(clock_period(&g, &r).unwrap(), 4, "segments now 2 and 4");
    }
}
