//! Minimum-cost flow (successive shortest paths with potentials).
//!
//! Used by the exact reference retiming solver
//! ([`crate::minarea_ref`]): the linear program
//! `min Σ b(v)·r(v)` subject to difference constraints
//! `r(u) − r(v) ≤ c(u,v)` is the dual of a transshipment problem, which
//! this module solves exactly. All arc costs in that reduction are
//! non-negative, so Dijkstra with potentials applies throughout.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

/// A minimum-cost flow problem instance.
///
/// # Examples
///
/// ```
/// use retime::flow::MinCostFlow;
/// let mut mcf = MinCostFlow::new(3);
/// mcf.add_arc(0, 1, 10, 1);
/// mcf.add_arc(1, 2, 10, 1);
/// let result = mcf.solve(&[5, 0, -5]).expect("routable");
/// assert_eq!(result.cost, 10);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    num_nodes: usize,
    // Paired arc representation: arc 2k is forward, 2k+1 its residual.
    to: Vec<usize>,
    cap: Vec<i64>,
    cost: Vec<i64>,
    adj: Vec<Vec<usize>>,
}

/// Result of a successful [`MinCostFlow::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowResult {
    /// Total cost of the routed flow.
    pub cost: i64,
    /// Flow on each forward arc, in insertion order.
    pub flows: Vec<i64>,
    /// Final node potentials (shortest-path distances accumulated over
    /// the augmentations); satisfy `cost(u,v) − π(u) + π(v) ≥ 0` for
    /// every residual arc.
    pub potentials: Vec<i64>,
}

impl MinCostFlow {
    /// Creates an instance with `num_nodes` nodes and no arcs.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            adj: vec![Vec::new(); num_nodes],
        }
    }

    /// Adds a directed arc with the given capacity and cost; returns
    /// its index (as reported in [`FlowResult::flows`]). Negative costs
    /// are allowed only when [`MinCostFlow::solve_with_potentials`] is
    /// later called with potentials that make every reduced cost
    /// non-negative.
    ///
    /// # Panics
    ///
    /// Panics on negative capacity or out-of-range endpoints.
    pub fn add_arc(&mut self, from: usize, to: usize, capacity: i64, cost: i64) -> usize {
        assert!(
            from < self.num_nodes && to < self.num_nodes,
            "arc endpoint out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        let idx = self.to.len() / 2;
        self.adj[from].push(self.to.len());
        self.to.push(to);
        self.cap.push(capacity);
        self.cost.push(cost);
        self.adj[to].push(self.to.len());
        self.to.push(from);
        self.cap.push(0);
        self.cost.push(-cost);
        idx
    }

    /// Adds an uncapacitated arc.
    pub fn add_arc_unbounded(&mut self, from: usize, to: usize, cost: i64) -> usize {
        self.add_arc(from, to, INF, cost)
    }

    /// Routes the given node imbalances (`supply[v] > 0` is a source,
    /// `< 0` a sink; must sum to zero) at minimum cost.
    ///
    /// Returns `None` when some supply cannot reach a sink.
    ///
    /// # Panics
    ///
    /// Panics if `supply.len() != num_nodes`, supplies do not sum to
    /// zero, or any arc has negative cost (use
    /// [`MinCostFlow::solve_with_potentials`] for those).
    pub fn solve(&mut self, supply: &[i64]) -> Option<FlowResult> {
        assert!(
            self.cost.iter().step_by(2).all(|&c| c >= 0),
            "negative arc costs need solve_with_potentials"
        );
        self.solve_with_potentials(supply, None)
    }

    /// Like [`MinCostFlow::solve`], but starts from caller-provided node
    /// potentials — required when arcs have negative costs. The
    /// potentials must make every reduced cost
    /// `cost(u,v) + π(u) − π(v)` non-negative (e.g. distances from a
    /// Bellman–Ford feasibility pass).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch, unbalanced supplies, or potentials
    /// that leave a negative reduced cost.
    pub fn solve_with_potentials(
        &mut self,
        supply: &[i64],
        initial: Option<&[i64]>,
    ) -> Option<FlowResult> {
        assert_eq!(supply.len(), self.num_nodes);
        assert_eq!(supply.iter().sum::<i64>(), 0, "supplies must balance");
        let n = self.num_nodes;
        let mut excess: Vec<i64> = supply.to_vec();
        let mut potential = match initial {
            Some(p) => {
                assert_eq!(p.len(), n);
                p.to_vec()
            }
            None => vec![0i64; n],
        };
        for k in 0..self.to.len() / 2 {
            let a = 2 * k;
            let u = self.to[a ^ 1];
            let v = self.to[a];
            assert!(
                self.cost[a] + potential[u] - potential[v] >= 0,
                "initial potentials leave a negative reduced cost on arc {k}"
            );
        }
        let mut total_cost = 0i64;

        while let Some(source) = (0..n).find(|&v| excess[v] > 0) {
            // Dijkstra on reduced costs from `source`.
            let mut dist = vec![INF; n];
            let mut prev_arc = vec![usize::MAX; n];
            let mut heap = BinaryHeap::new();
            dist[source] = 0;
            heap.push(Reverse((0i64, source)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &a in &self.adj[u] {
                    if self.cap[a] <= 0 {
                        continue;
                    }
                    let v = self.to[a];
                    let rc = self.cost[a] + potential[u] - potential[v];
                    debug_assert!(rc >= 0, "reduced cost must stay non-negative");
                    let nd = d + rc;
                    if nd < dist[v] {
                        dist[v] = nd;
                        prev_arc[v] = a;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            // Pick the nearest reachable deficit node.
            let sink = (0..n)
                .filter(|&v| excess[v] < 0 && dist[v] < INF)
                .min_by_key(|&v| dist[v])?;
            // Update potentials, capping at the sink distance so the
            // reduced-cost invariant also holds on arcs into nodes the
            // search did not settle this round.
            let d_sink = dist[sink];
            for v in 0..n {
                potential[v] += dist[v].min(d_sink);
            }
            // Bottleneck along the path.
            let mut push = excess[source].min(-excess[sink]);
            let mut v = sink;
            while v != source {
                let a = prev_arc[v];
                push = push.min(self.cap[a]);
                v = self.to[a ^ 1];
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let a = prev_arc[v];
                self.cap[a] -= push;
                self.cap[a ^ 1] += push;
                total_cost += push * self.cost[a];
                v = self.to[a ^ 1];
            }
            excess[source] -= push;
            excess[sink] += push;
        }

        let flows = (0..self.to.len() / 2)
            .map(|k| self.cap[2 * k + 1])
            .collect();
        Some(FlowResult {
            cost: total_cost,
            flows,
            potentials: potential,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_simple_chain() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_arc(0, 1, 10, 2);
        mcf.add_arc(1, 2, 10, 3);
        let res = mcf.solve(&[4, 0, -4]).unwrap();
        assert_eq!(res.cost, 4 * 5);
        assert_eq!(res.flows, vec![4, 4]);
    }

    #[test]
    fn prefers_cheaper_path() {
        let mut mcf = MinCostFlow::new(4);
        let a = mcf.add_arc(0, 1, 10, 1);
        let b = mcf.add_arc(1, 3, 10, 1);
        let c = mcf.add_arc(0, 2, 10, 5);
        let d = mcf.add_arc(2, 3, 10, 5);
        let res = mcf.solve(&[3, 0, 0, -3]).unwrap();
        assert_eq!(res.cost, 6);
        assert_eq!(res.flows[a], 3);
        assert_eq!(res.flows[b], 3);
        assert_eq!(res.flows[c], 0);
        assert_eq!(res.flows[d], 0);
    }

    #[test]
    fn splits_on_capacity() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_arc(0, 1, 2, 1);
        mcf.add_arc(1, 3, 2, 1);
        mcf.add_arc(0, 2, 10, 5);
        mcf.add_arc(2, 3, 10, 5);
        let res = mcf.solve(&[3, 0, 0, -3]).unwrap();
        // 2 units on the cheap path (cost 4), 1 on the expensive (10).
        assert_eq!(res.cost, 14);
    }

    #[test]
    fn unroutable_returns_none() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_arc(0, 1, 10, 1); // node 2 unreachable
        assert!(mcf.solve(&[2, 0, -2]).is_none());
    }

    #[test]
    fn multiple_sources_and_sinks() {
        let mut mcf = MinCostFlow::new(5);
        mcf.add_arc(0, 2, 10, 1);
        mcf.add_arc(1, 2, 10, 2);
        mcf.add_arc(2, 3, 10, 1);
        mcf.add_arc(2, 4, 10, 3);
        let res = mcf.solve(&[2, 2, 0, -3, -1]).unwrap();
        // 0->2 (2 units, cost 2), 1->2 (2 units, cost 4),
        // 2->3 (3, cost 3), 2->4 (1, cost 3): total 12.
        assert_eq!(res.cost, 12);
    }

    #[test]
    fn residual_optimality_certificate() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_arc(0, 1, 5, 2);
        mcf.add_arc(0, 2, 5, 1);
        mcf.add_arc(1, 3, 5, 1);
        mcf.add_arc(2, 3, 5, 3);
        let res = mcf.solve(&[4, 0, 0, -4]).unwrap();
        // Check reduced-cost optimality on every residual arc.
        for a in 0..mcf.to.len() {
            if mcf.cap[a] > 0 {
                let u = mcf.to[a ^ 1];
                let v = mcf.to[a];
                assert!(
                    mcf.cost[a] + res.potentials[u] - res.potentials[v] >= 0,
                    "arc {a} violates optimality"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "balance")]
    fn unbalanced_supplies_panic() {
        MinCostFlow::new(2).solve(&[1, 0]);
    }

    #[test]
    #[should_panic(expected = "solve_with_potentials")]
    fn negative_cost_needs_potentials() {
        let mut mcf = MinCostFlow::new(2);
        mcf.add_arc(0, 1, 1, -1);
        mcf.solve(&[1, -1]);
    }

    #[test]
    fn negative_costs_with_potentials() {
        // 0 -> 1 cost -2: with potentials pi = [0, -2] the reduced cost
        // is 0; the flow routes and reports the true (negative) cost.
        let mut mcf = MinCostFlow::new(2);
        mcf.add_arc(0, 1, 5, -2);
        let res = mcf.solve_with_potentials(&[3, -3], Some(&[0, -2])).unwrap();
        assert_eq!(res.cost, -6);
        assert_eq!(res.flows, vec![3]);
    }
}
