//! Retiming under simultaneous setup **and** hold constraints — the
//! `\[23\]` (Lin & Zhou, DAC'06) ingredient of the paper's §V
//! initialization.
//!
//! The full Lin–Zhou algorithm is a research artifact of its own; this
//! module implements a conservative joint-repair scheme that produces
//! the two outcomes §V needs: either a retiming meeting both
//! constraints at a minimized period `Φ_sh`, or a report of
//! infeasibility (the paper observes genuine infeasibility on several
//! circuits, caused by reconvergent paths). Our scheme may declare
//! infeasibility for instances the exact algorithm could solve; that
//! only switches §V to its documented fallback (`Φ_min` from plain
//! min-period retiming and `R_min` = minimum gate delay), so the
//! pipeline behaves exactly as the paper describes in both cases.
//!
//! Setup: every register-to-register combinational path ≤ `Φ − T_s`.
//! Hold: every combinational path launched by a register has delay
//! ≥ `T_h` (data must not race through before the capturing register's
//! hold window closes).

use crate::graph::{RetimeGraph, Retiming, VertexId};
use crate::labels::{ElwParams, LrLabels};
use crate::timing::{zero_weight_topo, ArrivalScratch, ArrivalTimes};

/// Result of [`min_period_setup_hold`].
#[derive(Debug, Clone, PartialEq)]
pub struct SetupHoldResult {
    /// The minimized period `Φ_sh`.
    pub phi: i64,
    /// A retiming meeting setup at `phi` and hold at `t_hold`.
    pub retiming: Retiming,
}

/// Attempts to find a retiming meeting setup at period `phi` and hold
/// time `t_hold`. Conservative: `None` means "could not find", not a
/// proof of infeasibility.
pub fn feasible_setup_hold(
    graph: &RetimeGraph,
    phi: i64,
    t_setup: i64,
    t_hold: i64,
) -> Option<Retiming> {
    feasible_setup_hold_capped(graph, phi, t_setup, t_hold, graph.num_vertices() + 2)
}

/// [`feasible_setup_hold`] with an explicit cap on *consecutive* setup
/// FEAS iterations. A `Some` answer is sound at any cap (the retiming
/// is fully verified and independent of the cap); a `None` under a cap
/// below `|V| + 2` may be premature. [`min_period_setup_hold`] exploits
/// this asymmetry: it scans with a small cap — deep-infeasible probes
/// then cost tens of iterations instead of `|V|` — and re-confirms the
/// final floor at the full Bellman–Ford bound, so the minimized period
/// is provably the same as an all-full-cap search.
fn feasible_setup_hold_capped(
    graph: &RetimeGraph,
    phi: i64,
    t_setup: i64,
    t_hold: i64,
    feas_cap: usize,
) -> Option<Retiming> {
    let trace = std::env::var_os("MINOBSWIN_TRACE").is_some();
    let t0 = std::time::Instant::now();
    let mut feas_steps = 0u64;
    let mut hold_repairs = 0u64;
    let report = |outcome: &str, feas: u64, holds: u64| {
        if trace {
            eprintln!(
                "  feasible_setup_hold phi {phi}: {outcome} after {feas} FEAS + {holds} hold repairs in {:.3}s",
                t0.elapsed().as_secs_f64()
            );
        }
    };
    let mut r = Retiming::zero(graph);
    let params = ElwParams {
        phi,
        t_setup,
        t_hold,
    };
    let n = graph.num_vertices();
    let budget = 4 * n + 16;
    // FEAS converges within |V| iterations whenever the period is
    // achievable from the current retiming (the Bellman–Ford bound of
    // Leiserson & Saxe), so a run of more than |V| + 1 *consecutive*
    // setup steps that never reaches the period is a proof of
    // non-convergence. Bailing out then — instead of burning the whole
    // 4|V| budget — cannot flip a feasible probe, and it is what keeps
    // the infeasible probes of the binary search affordable at 10k+
    // gates.
    let mut consecutive_feas = 0usize;
    let mut scratch = ArrivalScratch::new();
    for _ in 0..budget {
        let period = scratch.compute(graph, &r)?;
        if period > phi - t_setup {
            // FEAS step for setup.
            feas_steps += 1;
            consecutive_feas += 1;
            if consecutive_feas > feas_cap {
                report("feas-cap", feas_steps, hold_repairs);
                return None;
            }
            let mut moved = false;
            for v in graph.vertices() {
                if scratch.arrival(v) > phi - t_setup {
                    r.add(v, 1);
                    moved = true;
                }
            }
            if !moved {
                report("stuck", feas_steps, hold_repairs);
                return None;
            }
            continue;
        }
        consecutive_feas = 0;
        let labels = LrLabels::compute_with_order(graph, &r, params, scratch.order());
        match find_hold_violation(graph, &r, &labels, t_hold) {
            Some((tail, head)) => {
                hold_repairs += 1;
                // Two symmetric repairs: push the launching register
                // backward over the tail (lengthens the path at its
                // start), or push the terminating register forward
                // (lengthens it at its end).
                let mut attempt = r.clone();
                if push_register_backward(graph, &mut attempt, tail) {
                    r = attempt;
                } else {
                    let z = labels.rt(head);
                    if !push_terminating_register_forward(graph, &mut r, z) {
                        report("unrepairable", feas_steps, hold_repairs);
                        return None;
                    }
                }
            }
            None => {
                // Fixpoint: verify everything before returning.
                if graph.check_nonnegative(&r).is_ok() {
                    report("feasible", feas_steps, hold_repairs);
                    return Some(r);
                }
                report("nonneg-fail", feas_steps, hold_repairs);
                return None;
            }
        }
    }
    report("budget", feas_steps, hold_repairs);
    None
}

/// Finds a hold violation and returns `(tail, head)` of the offending
/// registered edge `(t, u)`.
fn find_hold_violation(
    graph: &RetimeGraph,
    r: &Retiming,
    labels: &LrLabels,
    t_hold: i64,
) -> Option<(VertexId, VertexId)> {
    for (i, edge) in graph.edges().iter().enumerate() {
        let e = crate::graph::EdgeId::new(i);
        if edge.to.is_host() || graph.retimed_weight(e, r) <= 0 {
            continue;
        }
        if let Some(sp) = labels.short_path(graph, edge.to) {
            if sp < t_hold {
                return Some((edge.from, edge.to));
            }
        }
    }
    None
}

/// Moves the register terminating the critical short path (sitting on
/// an out-edge of `z`) one vertex forward: decreases `r(y)` for a
/// registered edge `(z, y)` carrying exactly one register, together
/// with the backward closure of `y` through zero-weight in-edges (to
/// keep P0). Fails when the closure hits the host or when every
/// registered out-edge of `z` carries more than one register (the
/// multi-register case is handled by the full MinObsWin machinery, not
/// this initialization helper).
fn push_terminating_register_forward(graph: &RetimeGraph, r: &mut Retiming, z: VertexId) -> bool {
    let Some(y) = graph.out_edges(z).iter().find_map(|&e| {
        let edge = graph.edge(e);
        (!edge.to.is_host() && graph.retimed_weight(e, r) == 1).then_some(edge.to)
    }) else {
        return false;
    };
    // Backward closure: decreasing r(y) drains its zero-weight
    // in-edges, whose sources must decrease too.
    let mut closure = vec![false; graph.num_vertices()];
    let mut stack = vec![y];
    closure[y.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in graph.in_edges(v) {
            let edge = graph.edge(e);
            if graph.retimed_weight(e, r) > 0 {
                continue;
            }
            if edge.from.is_host() {
                return false;
            }
            if !closure[edge.from.index()] {
                closure[edge.from.index()] = true;
                stack.push(edge.from);
            }
        }
    }
    for v in graph.vertices() {
        if closure[v.index()] {
            r.add(v, -1);
        }
    }
    true
}

/// Moves a register backward over `tail` (and over the closure of
/// vertices reachable from `tail` through zero-weight edges, to keep P0
/// satisfied). Returns `false` when the closure hits the host — the
/// register cannot be pushed out of the circuit.
fn push_register_backward(graph: &RetimeGraph, r: &mut Retiming, tail: VertexId) -> bool {
    if tail.is_host() {
        return false;
    }
    let mut closure = vec![false; graph.num_vertices()];
    let mut stack = vec![tail];
    closure[tail.index()] = true;
    while let Some(v) = stack.pop() {
        for &e in graph.out_edges(v) {
            let edge = graph.edge(e);
            if graph.retimed_weight(e, r) > 0 {
                continue; // a register already separates us
            }
            if edge.to.is_host() {
                return false; // would need to move a register past a PO
            }
            if !closure[edge.to.index()] {
                closure[edge.to.index()] = true;
                stack.push(edge.to);
            }
        }
    }
    for v in graph.vertices() {
        if closure[v.index()] {
            r.add(v, 1);
        }
    }
    true
}

/// Verifies setup and hold of a retiming.
pub fn meets_setup_hold(
    graph: &RetimeGraph,
    r: &Retiming,
    phi: i64,
    t_setup: i64,
    t_hold: i64,
) -> bool {
    if graph.check_nonnegative(r).is_err() {
        return false;
    }
    let Ok(order) = zero_weight_topo(graph, r) else {
        return false;
    };
    let arrivals = ArrivalTimes::compute_with_order(graph, r, &order);
    if arrivals.clock_period() > phi - t_setup {
        return false;
    }
    let params = ElwParams {
        phi,
        t_setup,
        t_hold,
    };
    let labels = LrLabels::compute_with_order(graph, r, params, &order);
    find_hold_violation(graph, r, &labels, t_hold).is_none()
}

/// Minimizes the clock period under setup and hold constraints
/// (binary search over [`feasible_setup_hold`]). Returns `None` when no
/// retiming is found even at a generous period — the paper's
/// "no valid retiming under setup and hold" outcome.
///
/// The search runs in two tiers. The scan tier probes with a small
/// FEAS cap (feasible probes converge almost immediately in practice,
/// so their `Some` answers — which are cap-independent — are unharmed,
/// while deep-infeasible probes stop after tens of iterations instead
/// of `|V|`). The confirm tier then re-probes one step below the scan
/// optimum at the full `|V| + 2` Bellman–Ford bound: if that is
/// infeasible the scan answer is proven optimal, and if the scan cap
/// turned out to be truncating a genuinely feasible probe, the search
/// resumes below it. The result is therefore identical to an
/// all-full-cap search, at a fraction of the cost on 10k+-gate graphs.
pub fn min_period_setup_hold(
    graph: &RetimeGraph,
    t_setup: i64,
    t_hold: i64,
) -> Option<SetupHoldResult> {
    let n = graph.num_vertices();
    let full_cap = n + 2;
    let quick_cap = full_cap.min(64);
    let max_delay: i64 = graph.vertices().map(|v| graph.delay(v)).max().unwrap_or(0);
    let total_delay: i64 = graph.vertices().map(|v| graph.delay(v)).sum();
    let hi_bound = (total_delay + t_setup).max(1);
    let floor = (max_delay + t_setup).max(t_hold);
    // Establish an upper-bound solution first, at full rigor.
    let mut best =
        feasible_setup_hold(graph, hi_bound, t_setup, t_hold).map(|r| SetupHoldResult {
            phi: hi_bound,
            retiming: r,
        })?;
    loop {
        // Scan tier: bisect below the current best with the quick cap.
        let mut lo = floor;
        let mut hi = best.phi;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match feasible_setup_hold_capped(graph, mid, t_setup, t_hold, quick_cap) {
                Some(r) => {
                    best = SetupHoldResult {
                        phi: mid,
                        retiming: r,
                    };
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        // Confirm tier: a quick-cap `None` may be premature, so prove
        // the floor below the scan optimum at the full bound.
        if quick_cap >= full_cap || best.phi <= floor {
            return Some(best);
        }
        match feasible_setup_hold(graph, best.phi - 1, t_setup, t_hold) {
            None => return Some(best),
            Some(r) => {
                best = SetupHoldResult {
                    phi: best.phi - 1,
                    retiming: r,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    #[test]
    fn pipeline_meets_both_constraints() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        // Unit delays, segments of 3: hold of 2 requires every launched
        // path >= 2 — initial segments have short_path 3, fine.
        let res = min_period_setup_hold(&g, 0, 2).expect("feasible");
        assert!(meets_setup_hold(&g, &res.retiming, res.phi, 0, 2));
        assert!(res.phi >= 3);
    }

    #[test]
    fn hold_repair_moves_register() {
        // A loop where one segment is a single unit-delay gate: hold=2
        // violated initially; the repair must move a register.
        let c = samples::two_stage_loop();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r0 = Retiming::zero(&g);
        assert!(
            !meets_setup_hold(&g, &r0, 20, 0, 2),
            "initial placement should violate hold (g1 segment has delay 1)"
        );
        if let Some(res) = min_period_setup_hold(&g, 0, 2) {
            assert!(meets_setup_hold(&g, &res.retiming, res.phi, 0, 2));
        }
        // (If the conservative solver reports None that is acceptable —
        // the caller falls back per §V — but it should not return an
        // invalid retiming.)
    }

    #[test]
    fn impossible_hold_reports_none() {
        // Hold time larger than the total loop delay can never be met.
        let c = samples::pipeline(4, 4);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        assert!(min_period_setup_hold(&g, 0, 100).is_none());
    }

    #[test]
    fn setup_only_matches_min_period() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let res = min_period_setup_hold(&g, 0, 0).expect("hold of 0 is free");
        let mp = crate::minperiod::min_period(&g).unwrap();
        assert_eq!(res.phi, mp.phi);
    }

    #[test]
    fn generated_circuits_give_valid_results() {
        for seed in 0..4 {
            let c = netlist::generator::GeneratorConfig::new("sh", seed)
                .gates(100)
                .registers(20)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            if let Some(res) = min_period_setup_hold(&g, 0, 2) {
                assert!(
                    meets_setup_hold(&g, &res.retiming, res.phi, 0, 2),
                    "seed {seed}"
                );
            }
        }
    }
}
