//! The retiming graph of Leiserson and Saxe.
//!
//! A sequential circuit is modeled as a directed graph `G = (V, E)`
//! whose vertices are the combinational gates (registers disappear into
//! edge weights `w(e)` = number of registers on the signal) plus a
//! *host* vertex representing the environment, with zero-weight edges
//! host → PI and PO → host.

use std::collections::HashMap;
use std::fmt;

use netlist::{Circuit, DelayModel, GateId, GateKind};

use crate::error::RetimeError;

/// Identifier of a retiming-graph vertex. [`RetimeGraph::HOST`] is
/// always vertex 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from a dense index.
    pub fn new(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32"))
    }

    /// The dense index of this vertex.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the host vertex.
    pub fn is_host(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_host() {
            write!(f, "host")
        } else {
            write!(f, "v{}", self.0)
        }
    }
}

/// Identifier of a retiming-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32"))
    }

    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One edge of the retiming graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Tail (driver) vertex.
    pub from: VertexId,
    /// Head (sink) vertex.
    pub to: VertexId,
    /// Number of registers on the edge in the original circuit.
    pub weight: u32,
    /// For edges reconstructed into a netlist: the sink gate and its
    /// fanin pin position, when the edge corresponds to a physical
    /// connection (`None` for host edges).
    pub sink_pin: Option<(GateId, usize)>,
}

/// A vertex label vector `r : V → ℤ` (number of registers moved from
/// the fanouts of each vertex to its fanins). `r(host)` is pinned to 0.
///
/// # Examples
///
/// ```
/// use retime::{Retiming, RetimeGraph};
/// use netlist::{samples, DelayModel};
/// let graph = RetimeGraph::from_circuit(&samples::s27_like(), &DelayModel::unit()).unwrap();
/// let r = Retiming::zero(&graph);
/// assert!(graph.check_nonnegative(&r).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Retiming {
    values: Vec<i64>,
}

impl Retiming {
    /// The identity retiming (no register moves).
    pub fn zero(graph: &RetimeGraph) -> Self {
        Self {
            values: vec![0; graph.num_vertices()],
        }
    }

    /// Builds a retiming from raw values.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::WrongLength`] on a length mismatch and
    /// [`RetimeError::Infeasible`] if `values[0]` (the host) is nonzero.
    pub fn from_values(graph: &RetimeGraph, values: Vec<i64>) -> Result<Self, RetimeError> {
        if values.len() != graph.num_vertices() {
            return Err(RetimeError::WrongLength {
                expected: graph.num_vertices(),
                got: values.len(),
            });
        }
        if values[0] != 0 {
            return Err(RetimeError::Infeasible("host retiming must be 0".into()));
        }
        Ok(Self { values })
    }

    /// The label of one vertex.
    pub fn get(&self, v: VertexId) -> i64 {
        self.values[v.index()]
    }

    /// Sets the label of one vertex.
    ///
    /// # Panics
    ///
    /// Panics when `v` is the host (its label is pinned to 0).
    pub fn set(&mut self, v: VertexId, value: i64) {
        assert!(!v.is_host(), "host retiming is pinned to 0");
        self.values[v.index()] = value;
    }

    /// Adds `delta` to the label of one vertex.
    ///
    /// # Panics
    ///
    /// Panics when `v` is the host.
    pub fn add(&mut self, v: VertexId, delta: i64) {
        assert!(!v.is_host(), "host retiming is pinned to 0");
        self.values[v.index()] += delta;
    }

    /// The raw label vector (host first).
    pub fn as_slice(&self) -> &[i64] {
        &self.values
    }
}

/// The retiming graph: vertices with delays, weighted edges, host at
/// index 0, and the provenance needed to rebuild a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct RetimeGraph {
    names: Vec<String>,
    delays: Vec<u32>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    /// Netlist gate represented by each vertex (`None` for the host).
    gate_of: Vec<Option<GateId>>,
    /// Vertex representing each netlist gate (dense over gate ids;
    /// registers map to `None`).
    vertex_of: Vec<Option<VertexId>>,
}

impl RetimeGraph {
    /// The host vertex (environment).
    pub const HOST: VertexId = VertexId(0);

    /// Builds the retiming graph of a circuit under a delay model.
    ///
    /// Registers are folded into edge weights: an edge is created from
    /// the combinational driver of every (possibly register-delayed)
    /// fanin of every combinational gate, weighted by the number of
    /// registers traversed. Host edges host→PI and PO→host carry weight
    /// 0.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::RegisterLoop`] if a cycle consists of
    /// registers only.
    pub fn from_circuit(circuit: &Circuit, delays: &DelayModel) -> Result<Self, RetimeError> {
        // Resolve, for every register, its combinational driver and the
        // length of the register chain leading to it.
        let mut reg_source: HashMap<GateId, (GateId, u32)> = HashMap::new();
        for &r in circuit.registers() {
            let mut cur = circuit.gate(r).fanins()[0];
            let mut count = 1u32;
            let mut steps = 0usize;
            while circuit.gate(cur).kind() == GateKind::Dff {
                cur = circuit.gate(cur).fanins()[0];
                count += 1;
                steps += 1;
                if steps > circuit.len() {
                    return Err(RetimeError::RegisterLoop {
                        witness: circuit.gate(r).name().to_string(),
                    });
                }
            }
            reg_source.insert(r, (cur, count));
        }

        let mut names = vec!["host".to_string()];
        let mut delay_vec = vec![0u32];
        let mut gate_of: Vec<Option<GateId>> = vec![None];
        let mut vertex_of: Vec<Option<VertexId>> = vec![None; circuit.len()];
        for (id, gate) in circuit.iter() {
            if gate.kind() == GateKind::Dff {
                continue;
            }
            let v = VertexId::new(names.len());
            vertex_of[id.index()] = Some(v);
            names.push(gate.name().to_string());
            delay_vec.push(delays.delay(circuit, id));
            gate_of.push(Some(id));
        }

        let mut edges = Vec::new();
        for (id, gate) in circuit.iter() {
            if gate.kind() == GateKind::Dff {
                continue;
            }
            let to = vertex_of[id.index()].expect("combinational gate has a vertex");
            for (pin, &fanin) in gate.fanins().iter().enumerate() {
                let (driver, weight) = match circuit.gate(fanin).kind() {
                    GateKind::Dff => {
                        let (src, count) = reg_source[&fanin];
                        (src, count)
                    }
                    _ => (fanin, 0),
                };
                let from = vertex_of[driver.index()].expect("driver is combinational");
                edges.push(Edge {
                    from,
                    to,
                    weight,
                    sink_pin: Some((id, pin)),
                });
            }
        }
        for &pi in circuit.inputs() {
            edges.push(Edge {
                from: Self::HOST,
                to: vertex_of[pi.index()].expect("input vertex"),
                weight: 0,
                sink_pin: None,
            });
        }
        for &po in circuit.outputs() {
            edges.push(Edge {
                from: vertex_of[po.index()].expect("output vertex"),
                to: Self::HOST,
                weight: 0,
                sink_pin: None,
            });
        }

        let mut out_edges = vec![Vec::new(); names.len()];
        let mut in_edges = vec![Vec::new(); names.len()];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.from.index()].push(EdgeId::new(i));
            in_edges[e.to.index()].push(EdgeId::new(i));
        }

        Ok(Self {
            names,
            delays: delay_vec,
            edges,
            out_edges,
            in_edges,
            gate_of,
            vertex_of,
        })
    }

    /// Number of vertices including the host (`|V| + 1` in paper
    /// terms).
    pub fn num_vertices(&self) -> usize {
        self.names.len()
    }

    /// Number of edges including host edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total registers in the (un-retimed) graph.
    pub fn total_registers(&self) -> u64 {
        self.edges.iter().map(|e| e.weight as u64).sum()
    }

    /// The name of a vertex.
    pub fn name(&self, v: VertexId) -> &str {
        &self.names[v.index()]
    }

    /// The delay `d(v)` of a vertex (0 for the host).
    pub fn delay(&self, v: VertexId) -> i64 {
        self.delays[v.index()] as i64
    }

    /// An edge by id.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// All edges, in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-edges of a vertex.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// In-edges of a vertex.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Iterates over non-host vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (1..self.num_vertices()).map(VertexId::new)
    }

    /// The netlist gate a vertex stands for (`None` for the host).
    pub fn gate_of(&self, v: VertexId) -> Option<GateId> {
        self.gate_of[v.index()]
    }

    /// The vertex standing for a netlist gate (`None` for registers).
    pub fn vertex_of(&self, gate: GateId) -> Option<VertexId> {
        self.vertex_of[gate.index()]
    }

    /// The retimed weight `w_r(e) = w(e) + r(head) − r(tail)`.
    pub fn retimed_weight(&self, e: EdgeId, r: &Retiming) -> i64 {
        let edge = &self.edges[e.index()];
        edge.weight as i64 + r.get(edge.to) - r.get(edge.from)
    }

    /// Verifies constraint **P0**: every retimed edge weight is
    /// non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::NegativeEdgeWeight`] naming the first
    /// offending edge.
    pub fn check_nonnegative(&self, r: &Retiming) -> Result<(), RetimeError> {
        for i in 0..self.edges.len() {
            let e = EdgeId::new(i);
            let w = self.retimed_weight(e, r);
            if w < 0 {
                let edge = self.edge(e);
                return Err(RetimeError::NegativeEdgeWeight {
                    from: self.name(edge.from).to_string(),
                    to: self.name(edge.to).to_string(),
                    weight: w,
                });
            }
        }
        Ok(())
    }

    /// Total registers after retiming, counted per edge (the count the
    /// paper's eq. (5) uses).
    pub fn retimed_registers(&self, r: &Retiming) -> i64 {
        (0..self.edges.len())
            .map(|i| self.retimed_weight(EdgeId::new(i), r))
            .sum()
    }

    /// Total registers after retiming with fanout sharing: registers on
    /// the fanout edges of one driver share a single chain, so the
    /// physical cost of a vertex is the *maximum* weight among its
    /// out-edges.
    pub fn retimed_registers_shared(&self, r: &Retiming) -> i64 {
        (0..self.num_vertices())
            .map(|vi| {
                self.out_edges[vi]
                    .iter()
                    .map(|&e| self.retimed_weight(e, r))
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }
}

impl fmt::Display for RetimeGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retiming graph: {} vertices (+host), {} edges, {} registers",
            self.num_vertices() - 1,
            self.num_edges(),
            self.total_registers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, CircuitBuilder};

    fn s27_graph() -> (Circuit, RetimeGraph) {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        (c, g)
    }

    #[test]
    fn vertex_count_excludes_registers() {
        let (c, g) = s27_graph();
        assert_eq!(g.num_vertices(), c.num_combinational() + 1);
    }

    #[test]
    fn register_weights_fold_into_edges() {
        let (c, g) = s27_graph();
        assert_eq!(g.total_registers() as usize, {
            // each register is read by at least one gate; total weight
            // counts per-reader, so it is >= #FF here. In s27_like each
            // FF feeds exactly one edge except G7 (read once) — count
            // exact edges:
            c.registers()
                .iter()
                .map(|&r| c.fanouts(r).len())
                .sum::<usize>()
        });
        // The edge G10 -> G5-reader(G11) carries weight 1 via FF G5.
        let g10 = g.vertex_of(c.find("G10").unwrap()).unwrap();
        let g11 = g.vertex_of(c.find("G11").unwrap()).unwrap();
        let found = g
            .edges()
            .iter()
            .any(|e| e.from == g10 && e.to == g11 && e.weight == 1);
        assert!(found, "expected weighted edge G10 -> G11");
    }

    #[test]
    fn host_edges_cover_io() {
        let (c, g) = s27_graph();
        let host_out = g.out_edges(RetimeGraph::HOST).len();
        let host_in = g.in_edges(RetimeGraph::HOST).len();
        assert_eq!(host_out, c.inputs().len());
        assert_eq!(host_in, c.outputs().len());
    }

    #[test]
    fn register_chain_collapses() {
        let mut b = CircuitBuilder::new("chain");
        b.input("a");
        b.gate("x", netlist::GateKind::Not, &["a"]).unwrap();
        b.dff("q1", "x").unwrap();
        b.dff("q2", "q1").unwrap();
        b.gate("y", netlist::GateKind::Not, &["q2"]).unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let x = g.vertex_of(c.find("x").unwrap()).unwrap();
        let y = g.vertex_of(c.find("y").unwrap()).unwrap();
        let e = g.edges().iter().find(|e| e.from == x && e.to == y).unwrap();
        assert_eq!(e.weight, 2, "two registers collapse into one edge");
    }

    #[test]
    fn register_only_loop_rejected() {
        let mut b = CircuitBuilder::new("regloop");
        b.input("a");
        b.dff("q1", "q2").unwrap();
        b.dff("q2", "q1").unwrap();
        b.gate("y", netlist::GateKind::And, &["a", "q1"]).unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        let err = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap_err();
        assert!(matches!(err, RetimeError::RegisterLoop { .. }));
    }

    #[test]
    fn retimed_weight_formula() {
        let (c, g) = s27_graph();
        let mut r = Retiming::zero(&g);
        let g10 = g.vertex_of(c.find("G10").unwrap()).unwrap();
        let g11 = g.vertex_of(c.find("G11").unwrap()).unwrap();
        let eid = (0..g.num_edges())
            .map(EdgeId::new)
            .find(|&e| g.edge(e).from == g10 && g.edge(e).to == g11)
            .unwrap();
        assert_eq!(g.retimed_weight(eid, &r), 1);
        r.set(g11, -1);
        assert_eq!(g.retimed_weight(eid, &r), 0);
        r.set(g10, -1);
        assert_eq!(g.retimed_weight(eid, &r), 1);
    }

    #[test]
    fn check_nonnegative_detects_violation() {
        let (c, g) = s27_graph();
        let mut r = Retiming::zero(&g);
        let g9 = g.vertex_of(c.find("G9").unwrap()).unwrap();
        r.set(g9, -1); // G16 -> G9 edge has weight 0, becomes -1
        assert!(g.check_nonnegative(&r).is_err());
    }

    #[test]
    fn register_totals() {
        let (_, g) = s27_graph();
        let r = Retiming::zero(&g);
        assert_eq!(g.retimed_registers(&r) as u64, g.total_registers());
        assert!(g.retimed_registers_shared(&r) <= g.retimed_registers(&r));
    }

    #[test]
    fn host_retiming_is_pinned() {
        let (_, g) = s27_graph();
        let r = Retiming::from_values(&g, vec![1; g.num_vertices()]);
        assert!(r.is_err());
        let mut ok = Retiming::zero(&g);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ok.set(RetimeGraph::HOST, 1);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn gate_vertex_round_trip() {
        let (c, g) = s27_graph();
        for v in g.vertices() {
            let gate = g.gate_of(v).unwrap();
            assert_eq!(g.vertex_of(gate), Some(v));
            assert_eq!(g.name(v), c.gate(gate).name());
        }
        assert!(g.gate_of(RetimeGraph::HOST).is_none());
    }

    #[test]
    fn display_mentions_counts() {
        let (_, g) = s27_graph();
        assert!(g.to_string().contains("registers"));
    }
}
