//! # retime — Leiserson–Saxe retiming machinery
//!
//! Substrate crate of the **minobswin** suite (a reproduction of
//! Lu & Zhou, *Retiming for Soft Error Minimization Under Error-Latching
//! Window Constraints*, DATE 2013). It provides:
//!
//! * [`RetimeGraph`]/[`Retiming`]: the retiming graph `G = (V, E)` with
//!   host vertex, gate delays `d(v)` and register weights `w(e)`,
//! * [`timing`]: zero-weight-subgraph timing analysis (arrival times,
//!   clock period),
//! * [`labels`]: the paper's `L`/`R` error-latching-window bound labels
//!   (eq. 6) with critical witnesses and P1/P2 violation finding,
//! * [`minperiod`]: FEAS-based min-period retiming with `O(|E|)` memory
//!   (ingredient `\[24\]` of the paper's initialization),
//! * [`setup_hold`]: retiming under setup and hold constraints
//!   (ingredient `\[23\]`),
//! * [`flow`]/[`minarea_ref`]: an **exact** `W`/`D`-matrix +
//!   min-cost-flow reference solver for cost-minimal retiming — the
//!   ground truth against which the paper's forest-based algorithm is
//!   validated,
//! * [`apply`]: rebuilding a netlist with the retimed register
//!   placement (fanout-sharing register chains).
//!
//! # Examples
//!
//! ```
//! use netlist::{samples, DelayModel};
//! use retime::{minperiod, RetimeGraph, Retiming};
//! # fn main() -> Result<(), retime::RetimeError> {
//! let circuit = samples::pipeline(9, 3);
//! let graph = RetimeGraph::from_circuit(&circuit, &DelayModel::unit())?;
//! let result = minperiod::min_period(&graph)?;
//! assert_eq!(result.phi, 3);
//! let retimed = retime::apply::apply_retiming(&circuit, &graph, &result.retiming)?;
//! assert!(retimed.num_registers() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apply;
mod error;
pub mod flow;
mod graph;
pub mod labels;
pub mod minarea_ref;
pub mod minperiod;
pub mod setup_hold;
pub mod timing;

pub use error::RetimeError;
pub use graph::{Edge, EdgeId, RetimeGraph, Retiming, VertexId};
pub use labels::{ElwParams, LabelSnapshot, LrLabels, P1Violation, P2Violation};
