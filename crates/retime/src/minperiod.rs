//! Min-period retiming via the FEAS relaxation of Leiserson and Saxe
//! (the `\[24\]` ingredient of the paper's §V initialization).
//!
//! Memory use is `O(|E|)` — no `W`/`D` matrices — so this scales to the
//! paper's largest (b19-sized) circuits.

use crate::error::RetimeError;
use crate::graph::{RetimeGraph, Retiming, VertexId};
use crate::timing::{
    clock_period, is_combinational_edge, zero_weight_topo, ArrivalScratch, ArrivalTimes,
};

/// Runs the FEAS relaxation: starting from `r = 0`, repeatedly
/// increments `r(v)` for every vertex whose arrival time exceeds `phi`.
/// Returns a verified-feasible retiming with clock period ≤ `phi`, or
/// `None` if FEAS fails to converge (for `phi` below the true minimum,
/// or — rarely — for feasible `phi` that require register moves FEAS's
/// increment-only schedule cannot reach; see DESIGN.md).
pub fn feasible_retiming(graph: &RetimeGraph, phi: i64) -> Option<Retiming> {
    let mut r = Retiming::zero(graph);
    let n = graph.num_vertices();
    let mut scratch = ArrivalScratch::new();
    for _ in 0..n {
        let period = scratch.compute(graph, &r)?;
        if period <= phi {
            break;
        }
        for v in graph.vertices() {
            if scratch.arrival(v) > phi {
                r.add(v, 1);
            }
        }
    }
    if graph.check_nonnegative(&r).is_err() {
        return None;
    }
    match clock_period(graph, &r) {
        Ok(cp) if cp <= phi => Some(r),
        _ => None,
    }
}

/// The result of min-period retiming.
#[derive(Debug, Clone, PartialEq)]
pub struct MinPeriodResult {
    /// The smallest verified-feasible clock period.
    pub phi: i64,
    /// A retiming achieving it.
    pub retiming: Retiming,
}

/// Finds the minimum clock period achievable by retiming (binary search
/// over integer periods, feasibility by [`feasible_retiming`]).
///
/// # Errors
///
/// Returns [`RetimeError::Infeasible`] if even the upper bound (the sum
/// of all gate delays) is infeasible — impossible for graphs built from
/// valid circuits, kept for robustness.
pub fn min_period(graph: &RetimeGraph) -> Result<MinPeriodResult, RetimeError> {
    let max_delay: i64 = graph.vertices().map(|v| graph.delay(v)).max().unwrap_or(0);
    let total_delay: i64 = graph.vertices().map(|v| graph.delay(v)).sum();
    let hi_bound = total_delay.max(max_delay).max(1);

    // The identity retiming is always feasible at the current period.
    let current = clock_period(graph, &Retiming::zero(graph))?;
    let mut hi = current.min(hi_bound);
    let mut best = feasible_retiming(graph, hi)
        .map(|r| MinPeriodResult {
            phi: hi,
            retiming: r,
        })
        .unwrap_or(MinPeriodResult {
            phi: current,
            retiming: Retiming::zero(graph),
        });
    let mut lo = max_delay; // no period can beat the slowest gate
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match feasible_retiming(graph, mid) {
            Some(r) => {
                best = MinPeriodResult {
                    phi: mid,
                    retiming: r,
                };
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    if best.phi > hi_bound {
        return Err(RetimeError::Infeasible(
            "no retiming meets even the trivial period bound".into(),
        ));
    }
    Ok(best)
}

/// Lower bound on the clock period that **no** retiming can beat: the
/// maximum delay of a path whose endpoints cannot be separated by a
/// register (any host-to-host combinational path, since host edges keep
/// total I/O latency fixed). Used by tests to confirm optimality on
/// small circuits.
pub fn period_lower_bound(graph: &RetimeGraph) -> i64 {
    // Longest path from host to host counting total register weight 0 is
    // NP-hard-ish in general; we use the simple vertex-delay bound here.
    graph.vertices().map(|v| graph.delay(v)).max().unwrap_or(0)
}

/// Computes, for every vertex, how far `r(v)` may usefully range:
/// `|V| · max_edge_weight` is a safe bound used by the exhaustive test
/// solvers.
pub fn retiming_radius(graph: &RetimeGraph) -> i64 {
    let max_w = graph
        .edges()
        .iter()
        .map(|e| e.weight as i64)
        .max()
        .unwrap_or(0);
    (graph.num_vertices() as i64) * max_w.max(1)
}

/// Returns whether `r` is feasible for period `phi` (P0 + setup).
pub fn is_feasible(graph: &RetimeGraph, r: &Retiming, phi: i64) -> bool {
    graph.check_nonnegative(r).is_ok() && matches!(clock_period(graph, r), Ok(cp) if cp <= phi)
}

/// Diagnostic: the set of critical vertices (arrival = clock period).
pub fn critical_vertices(graph: &RetimeGraph, r: &Retiming) -> Result<Vec<VertexId>, RetimeError> {
    let order = zero_weight_topo(graph, r)?;
    let arr = ArrivalTimes::compute_with_order(graph, r, &order);
    let cp = arr.clock_period();
    Ok(graph
        .vertices()
        .filter(|&v| arr.get(v) == cp && graph.delay(v) > 0)
        .collect())
}

/// Diagnostic: number of combinational (zero-weight) edges under `r`.
pub fn combinational_edge_count(graph: &RetimeGraph, r: &Retiming) -> usize {
    (0..graph.num_edges())
        .filter(|&i| is_combinational_edge(graph, crate::graph::EdgeId::new(i), r))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    #[test]
    fn pipeline_rebalances_to_optimal() {
        // 6 unit gates in one segment + feedback register: the loop has
        // 2 registers (r after stage? no: pipeline(6,6) has only the fb
        // register) — one register on a 6-delay loop: min period 6.
        let c = samples::pipeline(6, 6);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let res = min_period(&g).unwrap();
        // Loop: s0..s5 + fb(1 register). Total loop delay 6, one
        // register: no retiming can beat 6.
        assert_eq!(res.phi, 6);
        assert!(is_feasible(&g, &res.retiming, res.phi));
    }

    #[test]
    fn pipeline_with_more_registers_gets_faster() {
        let c = samples::pipeline(9, 3); // loop with 3 registers, delay 9
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let res = min_period(&g).unwrap();
        assert_eq!(res.phi, 3, "3 registers over 9 delay unit loop");
        assert!(is_feasible(&g, &res.retiming, res.phi));
    }

    #[test]
    fn unbalanced_pipeline_improves() {
        // Put all the slack in one segment: registers every 1 then a
        // long tail — pipeline(8, 2): registers after s1, s3, s5 + fb:
        // 4 registers on an 8-delay loop: min period 2.
        let c = samples::pipeline(8, 2);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let initial = clock_period(&g, &Retiming::zero(&g)).unwrap();
        let res = min_period(&g).unwrap();
        assert_eq!(initial, 2);
        assert_eq!(res.phi, 2);
    }

    #[test]
    fn s27_min_period_feasible_and_not_worse() {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
        let initial = clock_period(&g, &Retiming::zero(&g)).unwrap();
        let res = min_period(&g).unwrap();
        assert!(res.phi <= initial);
        assert!(is_feasible(&g, &res.retiming, res.phi));
        assert!(res.phi >= period_lower_bound(&g));
    }

    #[test]
    fn infeasible_below_min() {
        let c = samples::pipeline(6, 6);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        assert!(feasible_retiming(&g, 5).is_none());
        assert!(feasible_retiming(&g, 6).is_some());
    }

    #[test]
    fn generated_circuits_round_trip() {
        for seed in 0..5 {
            let c = netlist::generator::GeneratorConfig::new("mp", seed)
                .gates(120)
                .registers(25)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            let res = min_period(&g).unwrap();
            assert!(is_feasible(&g, &res.retiming, res.phi), "seed {seed}");
            let initial = clock_period(&g, &Retiming::zero(&g)).unwrap();
            assert!(res.phi <= initial, "seed {seed}");
        }
    }

    #[test]
    fn critical_vertices_nonempty() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let crit = critical_vertices(&g, &r).unwrap();
        assert!(!crit.is_empty());
    }
}
