//! The `L`/`R` labels of the paper's eq. (6): backward-propagated
//! bounds on the error-latching window of every vertex, with critical
//! witnesses `lt(u)`/`rt(u)` (the vertex whose register/PO window
//! pinned the extreme value).
//!
//! For a vertex `u`,
//!
//! * `L(u) = min( Φ−T_s  [if u drives a registered edge or a PO],
//!   min over zero-weight fanout edges (u,f) of L(f) − d(f) )`
//! * `R(u) = max( Φ+T_h  [same condition],
//!   max over zero-weight fanout edges (u,f) of R(f) − d(f) )`
//!
//! which is the closed-form solution of the constraint systems P3/P4.
//! By Theorem 1 of the paper, `L(u)`/`R(u)` are the leftmost/rightmost
//! boundaries of the ELW at the output of `u`, so `R(u) − L(u)` bounds
//! the ELW size.
//!
//! Derived checks:
//!
//! * **P1** (setup / clock period): `L(v) ≥ d(v)` for every vertex with
//!   a non-empty window — exactly "every combinational path starting at
//!   `v` fits in `Φ − T_s`".
//! * **P2** (ELW lower bound): on every registered edge `(t, u)`, the
//!   shortest register-to-register path through `u`,
//!   `short_path(u) = d(u) + Φ + T_h − R(u)`, must be at least `R_min`.
//!   (The paper's P2 omits the `d(u)` term while its §V initialization
//!   formula includes it; we use the self-consistent inclusive form —
//!   see DESIGN.md.)

use crate::graph::{EdgeId, RetimeGraph, Retiming, VertexId};
use crate::timing::{is_combinational_edge, zero_weight_topo};
use crate::RetimeError;

/// Sentinel for "no latching window reachable" (dead logic).
const L_EMPTY: i64 = i64::MAX / 4;
/// Sentinel counterpart for `R`.
const R_EMPTY: i64 = i64::MIN / 4;

/// Clocking parameters of the ELW machinery.
///
/// The paper's experiments use `t_setup = 0`, `t_hold = 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElwParams {
    /// Clock period Φ.
    pub phi: i64,
    /// Register setup time `T_s`.
    pub t_setup: i64,
    /// Register hold time `T_h`.
    pub t_hold: i64,
}

impl ElwParams {
    /// Creates parameters with the paper's `T_s = 0`, `T_h = 2`.
    pub fn with_phi(phi: i64) -> Self {
        Self {
            phi,
            t_setup: 0,
            t_hold: 2,
        }
    }

    /// The left boundary `Φ − T_s` of the latching window at a register.
    pub fn window_left(&self) -> i64 {
        self.phi - self.t_setup
    }

    /// The right boundary `Φ + T_h` of the latching window.
    pub fn window_right(&self) -> i64 {
        self.phi + self.t_hold
    }
}

/// A violation of P1 (setup): the combinational paths leaving `vertex`
/// exceed `Φ − T_s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P1Violation {
    /// The most upstream violating vertex (the "path head": every one
    /// of its non-host in-edges carries a register, or comes from the
    /// host).
    pub vertex: VertexId,
    /// `lt(vertex)`: the vertex whose register/PO window terminates the
    /// critical longest path.
    pub lt: VertexId,
    /// Slack `L(vertex) − d(vertex)` (negative).
    pub slack: i64,
}

/// A violation of P2 (ELW lower bound on shortest paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P2Violation {
    /// The registered edge `(t, u)` whose register starts the
    /// too-short path.
    pub edge: EdgeId,
    /// The head `u` of the short path.
    pub vertex: VertexId,
    /// `rt(u)`: the vertex whose register/PO window terminates the
    /// critical shortest path.
    pub rt: VertexId,
    /// The offending `short_path(u)` value (less than `R_min`).
    pub short_path: i64,
}

/// Saved label entries of a vertex set, produced by
/// [`LrLabels::snapshot`] and consumed by [`LrLabels::restore`].
#[derive(Debug, Clone)]
pub struct LabelSnapshot {
    entries: Vec<(VertexId, i64, i64, VertexId, VertexId)>,
}

/// The computed `L`/`R` labels with witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrLabels {
    params: ElwParams,
    l: Vec<i64>,
    r: Vec<i64>,
    lt: Vec<VertexId>,
    rt: Vec<VertexId>,
}

impl LrLabels {
    /// Computes the labels of `graph` under retiming `rt` with clocking
    /// parameters `params`.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::ZeroWeightCycle`] for invalid retimings.
    pub fn compute(
        graph: &RetimeGraph,
        r: &Retiming,
        params: ElwParams,
    ) -> Result<Self, RetimeError> {
        let order = zero_weight_topo(graph, r)?;
        Ok(Self::compute_with_order(graph, r, params, &order))
    }

    /// Computes the labels reusing a topological order from
    /// [`zero_weight_topo`] for the same graph and retiming.
    pub fn compute_with_order(
        graph: &RetimeGraph,
        r: &Retiming,
        params: ElwParams,
        order: &[VertexId],
    ) -> Self {
        let n = graph.num_vertices();
        let mut labels = Self {
            params,
            l: vec![L_EMPTY; n],
            r: vec![R_EMPTY; n],
            lt: vec![RetimeGraph::HOST; n],
            rt: vec![RetimeGraph::HOST; n],
        };
        for &u in order.iter().rev() {
            labels.recompute_vertex(graph, r, u);
        }
        labels
    }

    /// Recomputes the labels of one vertex from its fanouts' current
    /// labels under `r`. Returns the number of out-edges relaxed.
    ///
    /// Correct only when every combinational fanout of `u` (under `r`)
    /// already carries its final label — the caller is responsible for
    /// the processing order (reverse topological over the zero-weight
    /// subgraph, or a dirty region thereof).
    fn recompute_vertex(&mut self, graph: &RetimeGraph, r: &Retiming, u: VertexId) -> u64 {
        let params = self.params;
        let mut best_l = L_EMPTY;
        let mut best_r = R_EMPTY;
        let mut wit_l = RetimeGraph::HOST;
        let mut wit_r = RetimeGraph::HOST;
        let out = graph.out_edges(u);
        for &e in out {
            let edge = graph.edge(e);
            let is_ro = edge.to.is_host() || graph.retimed_weight(e, r) > 0;
            if is_ro {
                if params.window_left() < best_l {
                    best_l = params.window_left();
                    wit_l = u;
                }
                if params.window_right() > best_r {
                    best_r = params.window_right();
                    wit_r = u;
                }
            } else if is_combinational_edge(graph, e, r) {
                let f = edge.to;
                let fi = f.index();
                if self.l[fi] != L_EMPTY {
                    let cand = self.l[fi] - graph.delay(f);
                    if cand < best_l {
                        best_l = cand;
                        wit_l = self.lt[fi];
                    }
                }
                if self.r[fi] != R_EMPTY {
                    let cand = self.r[fi] - graph.delay(f);
                    if cand > best_r {
                        best_r = cand;
                        wit_r = self.rt[fi];
                    }
                }
            }
        }
        let ui = u.index();
        self.l[ui] = best_l;
        self.r[ui] = best_r;
        self.lt[ui] = wit_l;
        self.rt[ui] = wit_r;
        out.len() as u64
    }

    /// Re-relaxes the labels of a dirty region in place under a new
    /// retiming `r`. `ordered` must list every vertex whose label may
    /// have changed, in a valid processing order (each vertex after all
    /// of its in-region combinational fanouts under `r`) — exactly what
    /// [`crate::timing::DirtyCone::compute`] produces. Labels outside
    /// the region are trusted as-is.
    ///
    /// Returns the number of edges relaxed (the incremental engine's
    /// headline perf counter).
    pub fn relax_region(&mut self, graph: &RetimeGraph, r: &Retiming, ordered: &[VertexId]) -> u64 {
        let mut edges = 0u64;
        for &u in ordered {
            edges += self.recompute_vertex(graph, r, u);
        }
        edges
    }

    /// Saves the label entries of a vertex set, for rollback after a
    /// speculative [`LrLabels::relax_region`] whose retiming is then
    /// rejected.
    pub fn snapshot(&self, vertices: &[VertexId]) -> LabelSnapshot {
        LabelSnapshot {
            entries: vertices
                .iter()
                .map(|&v| {
                    let i = v.index();
                    (v, self.l[i], self.r[i], self.lt[i], self.rt[i])
                })
                .collect(),
        }
    }

    /// Restores label entries saved by [`LrLabels::snapshot`].
    pub fn restore(&mut self, snapshot: &LabelSnapshot) {
        for &(v, l, r, lt, rt) in &snapshot.entries {
            let i = v.index();
            self.l[i] = l;
            self.r[i] = r;
            self.lt[i] = lt;
            self.rt[i] = rt;
        }
    }

    /// The clocking parameters the labels were computed for.
    pub fn params(&self) -> ElwParams {
        self.params
    }

    /// `L(v)`, or `None` when no latching window is reachable from `v`.
    pub fn l(&self, v: VertexId) -> Option<i64> {
        (self.l[v.index()] != L_EMPTY).then(|| self.l[v.index()])
    }

    /// `R(v)`, or `None` when no latching window is reachable from `v`.
    pub fn r(&self, v: VertexId) -> Option<i64> {
        (self.r[v.index()] != R_EMPTY).then(|| self.r[v.index()])
    }

    /// `lt(v)`: the termination witness of the critical longest path
    /// from `v` (meaningful only when `L(v)` exists).
    pub fn lt(&self, v: VertexId) -> VertexId {
        self.lt[v.index()]
    }

    /// `rt(v)`: the termination witness of the critical shortest path
    /// from `v` (meaningful only when `R(v)` exists).
    pub fn rt(&self, v: VertexId) -> VertexId {
        self.rt[v.index()]
    }

    /// The ELW size bound `R(v) − L(v)` of Theorem 1 (`None` for dead
    /// vertices).
    pub fn elw_bound(&self, v: VertexId) -> Option<i64> {
        match (self.l(v), self.r(v)) {
            (Some(l), Some(r)) => Some(r - l),
            _ => None,
        }
    }

    /// `short_path(v) = d(v) + Φ + T_h − R(v)`: the minimum
    /// register-to-register (or to-PO) combinational path delay through
    /// `v` inclusive.
    pub fn short_path(&self, graph: &RetimeGraph, v: VertexId) -> Option<i64> {
        self.r(v)
            .map(|r| graph.delay(v) + self.params.window_right() - r)
    }

    /// Finds the canonical **P1** violation: the minimum-index vertex
    /// with negative slack and no combinational in-edge (a "path
    /// head" — the vertex the paper's Algorithm 1 retimes to cut the
    /// path).
    ///
    /// Every combinational predecessor `u` of a violating vertex `v`
    /// also violates (`slack(u) ≤ slack(v) − d(u) < 0`), so restricting
    /// to heads loses no violations; selecting the minimum index makes
    /// the answer independent of traversal order, which the incremental
    /// checker relies on for bit-identity with this from-scratch scan.
    pub fn find_p1_violation(&self, graph: &RetimeGraph, r: &Retiming) -> Option<P1Violation> {
        graph
            .vertices()
            .find_map(|v| self.p1_violation_at(graph, r, v))
    }

    /// The canonical P1 check for a single vertex: `Some` iff `v` has
    /// negative slack **and** is a path head under `r`. Shared by the
    /// from-scratch scan and the incremental checker so both apply the
    /// exact same rule.
    pub fn p1_violation_at(
        &self,
        graph: &RetimeGraph,
        r: &Retiming,
        v: VertexId,
    ) -> Option<P1Violation> {
        let l = self.l(v)?;
        let slack = l - graph.delay(v);
        if slack < 0 && self.is_path_head(graph, r, v) {
            Some(P1Violation {
                vertex: v,
                lt: self.lt(v),
                slack,
            })
        } else {
            None
        }
    }

    /// Whether `v` has no combinational in-edge under `r` (the "path
    /// head" filter of the canonical P1 rule).
    pub fn is_path_head(&self, graph: &RetimeGraph, r: &Retiming, v: VertexId) -> bool {
        graph
            .in_edges(v)
            .iter()
            .all(|&e| !is_combinational_edge(graph, e, r))
    }

    /// Finds the canonical **P2** violation: the minimum-id registered
    /// edge `(t, u)` whose register launches a combinational path
    /// shorter than `r_min`.
    pub fn find_p2_violation(
        &self,
        graph: &RetimeGraph,
        r: &Retiming,
        r_min: i64,
    ) -> Option<P2Violation> {
        (0..graph.num_edges()).find_map(|i| self.p2_violation_at(graph, r, r_min, EdgeId::new(i)))
    }

    /// The canonical P2 check for a single edge: `Some` iff `e` is a
    /// registered non-host edge under `r` whose head's short path is
    /// below `r_min`. Shared by the from-scratch scan and the
    /// incremental checker so both apply the exact same rule.
    pub fn p2_violation_at(
        &self,
        graph: &RetimeGraph,
        r: &Retiming,
        r_min: i64,
        e: EdgeId,
    ) -> Option<P2Violation> {
        let edge = graph.edge(e);
        if edge.to.is_host() || graph.retimed_weight(e, r) <= 0 {
            return None;
        }
        let u = edge.to;
        let sp = self.short_path(graph, u)?;
        if sp < r_min {
            Some(P2Violation {
                edge: e,
                vertex: u,
                rt: self.rt(u),
                short_path: sp,
            })
        } else {
            None
        }
    }

    /// The minimum `short_path` over all registered edges — the value
    /// §V of the paper uses to initialize `R_min`. `None` if the
    /// retimed circuit has no registered edge with a live window.
    pub fn min_short_path(&self, graph: &RetimeGraph, r: &Retiming) -> Option<i64> {
        let mut best: Option<i64> = None;
        for (i, edge) in graph.edges().iter().enumerate() {
            let e = EdgeId::new(i);
            if edge.to.is_host() || graph.retimed_weight(e, r) <= 0 {
                continue;
            }
            if let Some(sp) = self.short_path(graph, edge.to) {
                best = Some(best.map_or(sp, |b: i64| b.min(sp)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    fn setup(phi: i64) -> (netlist::Circuit, RetimeGraph, Retiming, LrLabels) {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let labels = LrLabels::compute(&g, &r, ElwParams::with_phi(phi)).unwrap();
        (c, g, r, labels)
    }

    #[test]
    fn register_driver_gets_full_window() {
        let (c, g, _, labels) = setup(10);
        // s2 drives register r0: L = phi - ts = 10, R = phi + th = 12.
        let s2 = g.vertex_of(c.find("s2").unwrap()).unwrap();
        assert_eq!(labels.l(s2), Some(10));
        assert_eq!(labels.r(s2), Some(12));
        assert_eq!(labels.lt(s2), s2);
        assert_eq!(labels.rt(s2), s2);
    }

    #[test]
    fn labels_shift_backward_by_fanout_delay() {
        let (c, g, _, labels) = setup(10);
        // s1 -> s2 (unit delay): L(s1) = L(s2) - d(s2) = 9.
        let s1 = g.vertex_of(c.find("s1").unwrap()).unwrap();
        let s2 = g.vertex_of(c.find("s2").unwrap()).unwrap();
        assert_eq!(labels.l(s1), Some(9));
        assert_eq!(labels.r(s1), Some(11));
        assert_eq!(labels.lt(s1), s2);
    }

    #[test]
    fn elw_bound_is_r_minus_l() {
        let (c, g, _, labels) = setup(10);
        let s0 = g.vertex_of(c.find("s0").unwrap()).unwrap();
        let (l, r) = (labels.l(s0).unwrap(), labels.r(s0).unwrap());
        assert_eq!(labels.elw_bound(s0), Some(r - l));
        assert!(r >= l, "Theorem 1(1): R >= L");
    }

    #[test]
    fn p1_violation_when_phi_too_small() {
        // Segments have 3 unit-delay gates; phi = 2 breaks setup.
        let (_, g, r, labels) = setup(2);
        let viol = labels.find_p1_violation(&g, &r).expect("violation");
        assert!(viol.slack < 0);
        // The head has no zero-weight combinational in-edge.
        for &e in g.in_edges(viol.vertex) {
            assert!(!is_combinational_edge(&g, e, &r));
        }
        // Canonical rule: no lower-index head also violates.
        for v in g.vertices() {
            if v >= viol.vertex {
                break;
            }
            assert!(labels.p1_violation_at(&g, &r, v).is_none());
        }
    }

    #[test]
    fn no_p1_violation_when_phi_ample() {
        let (_, g, r, labels) = setup(10);
        assert!(labels.find_p1_violation(&g, &r).is_none());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let (c, g, _, mut labels) = setup(10);
        let all: Vec<_> = g.vertices().collect();
        let before = labels.clone();
        let snap = labels.snapshot(&all);
        // Re-relax everything under a shifted retiming (register moved
        // backward over s2): the labels change, restore brings back the
        // exact prior state.
        let mut r2 = Retiming::zero(&g);
        r2.set(g.vertex_of(c.find("s2").unwrap()).unwrap(), 1);
        g.check_nonnegative(&r2).unwrap();
        let rev: Vec<_> = zero_weight_topo(&g, &r2)
            .unwrap()
            .into_iter()
            .rev()
            .collect();
        labels.relax_region(&g, &r2, &rev);
        assert_ne!(labels, before, "shifted retiming must move labels");
        labels.restore(&snap);
        assert_eq!(labels, before);
    }

    #[test]
    fn relax_region_matches_full_recompute() {
        let (c, g, _, mut labels) = setup(10);
        let mut r2 = Retiming::zero(&g);
        r2.set(g.vertex_of(c.find("s2").unwrap()).unwrap(), 1);
        g.check_nonnegative(&r2).unwrap();
        let rev: Vec<_> = zero_weight_topo(&g, &r2)
            .unwrap()
            .into_iter()
            .rev()
            .collect();
        let edges = labels.relax_region(&g, &r2, &rev);
        assert!(edges > 0);
        let fresh = LrLabels::compute(&g, &r2, labels.params()).unwrap();
        assert_eq!(labels, fresh);
    }

    #[test]
    fn short_path_counts_inclusive_delay() {
        let (c, g, r, labels) = setup(10);
        // Register r0 sits after s2, feeding s3; path s3..s5 to next
        // register: 3 unit delays inclusive of s3.
        let s3 = g.vertex_of(c.find("s3").unwrap()).unwrap();
        assert_eq!(labels.short_path(&g, s3), Some(3));
        assert_eq!(labels.min_short_path(&g, &r), Some(3));
    }

    #[test]
    fn p2_violation_detected() {
        let (_, g, r, labels) = setup(10);
        assert!(labels.find_p2_violation(&g, &r, 4).is_some());
        assert!(labels.find_p2_violation(&g, &r, 3).is_none());
    }

    #[test]
    fn theorem1_r_ge_l_everywhere() {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
        let r = Retiming::zero(&g);
        let labels = LrLabels::compute(&g, &r, ElwParams::with_phi(100)).unwrap();
        for v in g.vertices() {
            if let (Some(l), Some(rr)) = (labels.l(v), labels.r(v)) {
                assert!(rr >= l, "R({v}) = {rr} < L({v}) = {l}");
            }
        }
    }

    #[test]
    fn po_vertices_get_window() {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let params = ElwParams::with_phi(50);
        let labels = LrLabels::compute(&g, &r, params).unwrap();
        let po = g.vertex_of(c.outputs()[0]).unwrap();
        assert_eq!(labels.l(po), Some(params.window_left()));
        assert_eq!(labels.r(po), Some(params.window_right()));
    }
}
