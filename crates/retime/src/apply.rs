//! Applying a retiming back to the netlist: rebuild a [`Circuit`] with
//! registers relocated according to the retimed edge weights.
//!
//! Registers are shared across fanouts: if a driver's out-edges carry
//! weights `k₁…k_m`, a single chain of `max kᵢ` flip-flops is attached
//! to the driver and each sink taps the chain at depth `kᵢ` — the
//! standard fanout-sharing construction, which preserves functionality.

use netlist::{Circuit, CircuitBuilder, GateKind, NetlistError};

use crate::error::RetimeError;
use crate::graph::{EdgeId, RetimeGraph, Retiming, VertexId};

/// Rebuilds the circuit with registers placed according to `r`.
///
/// Register names are synthesized as `<driver>%r<k>`; all combinational
/// gates keep their original names and kinds. Registers on host→PI
/// edges delay the input signal before all its consumers; registers on
/// PO→host edges are attached between the PO's driving signal and the
/// output marker.
///
/// # Errors
///
/// Returns [`RetimeError::NegativeEdgeWeight`] if `r` violates P0, or a
/// wrapped [`NetlistError`] if reconstruction fails (which would
/// indicate a bug).
pub fn apply_retiming(
    circuit: &Circuit,
    graph: &RetimeGraph,
    r: &Retiming,
) -> Result<Circuit, RetimeError> {
    graph.check_nonnegative(r)?;

    // Tap offset: registers on host→PI edges sit *upstream* of all the
    // PI's consumers, so every tap into that PI is deepened by the
    // host-edge weight.
    let mut tap_offset = vec![0i64; graph.num_vertices()];
    // Registers on PO→host edges delay the observed signal after the
    // output marker's tap.
    let mut po_delay = vec![0i64; circuit.len()];
    for (i, edge) in graph.edges().iter().enumerate() {
        let w = graph.retimed_weight(EdgeId::new(i), r);
        if edge.from.is_host() {
            tap_offset[edge.to.index()] = w;
        } else if edge.to.is_host() {
            let po = graph.gate_of(edge.from).expect("PO vertex maps to a gate");
            po_delay[po.index()] = w;
        }
    }
    // Chain depth per vertex = deepest tap requested by any out-edge.
    let mut chain_depth = vec![0i64; graph.num_vertices()];
    for (i, edge) in graph.edges().iter().enumerate() {
        if edge.from.is_host() || edge.to.is_host() {
            continue;
        }
        let w = graph.retimed_weight(EdgeId::new(i), r) + tap_offset[edge.from.index()];
        let d = &mut chain_depth[edge.from.index()];
        *d = (*d).max(w);
    }
    // A PI whose host edge carries registers needs its chain even if no
    // consumer taps that deep (e.g. a PI read by an output marker only).
    for v in graph.vertices() {
        let d = &mut chain_depth[v.index()];
        *d = (*d).max(tap_offset[v.index()]);
    }

    build_retimed(circuit, graph, r, &chain_depth, &tap_offset, &po_delay)
        .map_err(|e| RetimeError::Infeasible(format!("netlist reconstruction failed: {e}")))
}

fn build_retimed(
    circuit: &Circuit,
    graph: &RetimeGraph,
    r: &Retiming,
    chain_depth: &[i64],
    tap_offset: &[i64],
    po_delay: &[i64],
) -> Result<Circuit, NetlistError> {
    let mut b = CircuitBuilder::new(format!("{}_retimed", circuit.name()));
    let tap = |v: VertexId, k: i64| -> String {
        let name = graph.name(v);
        if k == 0 {
            name.to_string()
        } else {
            format!("{name}%r{k}")
        }
    };

    // Primary inputs first (with their host-edge register chains).
    for &pi in circuit.inputs() {
        let name = circuit.gate(pi).name();
        b.input(name);
        let v = graph.vertex_of(pi).expect("PI vertex");
        for k in 1..=chain_depth[v.index()] {
            b.dff(&tap(v, k), &tap(v, k - 1))?;
        }
    }

    // Combinational gates, then each vertex's register chain. Fanins
    // reference chain taps, which may be declared later — the builder
    // resolves names at build() time.
    for (id, gate) in circuit.iter() {
        match gate.kind() {
            GateKind::Dff | GateKind::Input | GateKind::Output => continue,
            _ => {}
        }
        let v = graph.vertex_of(id).expect("combinational vertex");
        let mut fanin_names: Vec<String> = vec![String::new(); gate.fanins().len()];
        for &e in graph.in_edges(v) {
            let edge = graph.edge(e);
            let (sink, pin) = edge.sink_pin.expect("gate in-edges carry pin provenance");
            debug_assert_eq!(sink, id);
            let w = graph.retimed_weight(e, r) + tap_offset[edge.from.index()];
            fanin_names[pin] = tap(edge.from, w);
        }
        debug_assert!(fanin_names.iter().all(|n| !n.is_empty()));
        let refs: Vec<&str> = fanin_names.iter().map(String::as_str).collect();
        b.gate(gate.name(), gate.kind(), &refs)?;
        for k in 1..=chain_depth[v.index()] {
            b.dff(&tap(v, k), &tap(v, k - 1))?;
        }
    }

    // Constants and inputs may also need chains (handled above for
    // inputs; constants are combinational gates handled in the loop).

    // Output markers (with their host-edge register chains).
    for &po in circuit.outputs() {
        let observed = circuit.gate(po).fanins()[0];
        let v = graph.vertex_of(po).expect("PO marker vertex");
        // The marker's in-edge weight already delays the observed
        // signal; additional registers on the PO->host edge delay the
        // marker's own output, which we realize by deepening the tap.
        let mut name = {
            // in-edge from the observed driver:
            let e = graph.in_edges(v)[0];
            let edge = graph.edge(e);
            let w = graph.retimed_weight(e, r) + tap_offset[edge.from.index()];
            tap(edge.from, w)
        };
        let extra = po_delay[po.index()];
        if extra > 0 {
            // Chain attached specifically to this marker.
            let base = circuit.gate(po).name().replace('%', "_");
            for k in 1..=extra {
                let reg = format!("{base}%h{k}");
                b.dff(&reg, &name)?;
                name = reg;
            }
        }
        let _ = observed;
        b.output(&name)?;
    }

    b.build()
}

/// Register count of the reconstructed circuit, predicted from the
/// graph without building it (shared-chain model plus host-edge
/// chains). Matches `apply_retiming(..)`'s `num_registers()`.
pub fn predicted_register_count(graph: &RetimeGraph, r: &Retiming) -> i64 {
    let mut total = 0i64;
    let mut offset = vec![0i64; graph.num_vertices()];
    for (i, edge) in graph.edges().iter().enumerate() {
        let w = graph.retimed_weight(EdgeId::new(i), r);
        if edge.from.is_host() {
            offset[edge.to.index()] = w;
        } else if edge.to.is_host() {
            total += w; // PO-side chain, never shared
        }
    }
    let mut chain = offset.clone();
    for (i, edge) in graph.edges().iter().enumerate() {
        if edge.from.is_host() || edge.to.is_host() {
            continue;
        }
        let w = graph.retimed_weight(EdgeId::new(i), r) + offset[edge.from.index()];
        chain[edge.from.index()] = chain[edge.from.index()].max(w);
    }
    total + chain.iter().sum::<i64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minperiod::min_period;
    use crate::timing::clock_period;
    use netlist::{samples, DelayModel};

    // `cycle` indexes the inner dimension of `inputs`, which iterating
    // over `inputs` directly cannot reach.
    #[allow(clippy::needless_range_loop)]
    fn simulate(circuit: &Circuit, inputs: &[Vec<bool>], cycles: usize) -> Vec<Vec<bool>> {
        // Simple sequential simulation: registers reset to 0; returns
        // the PO values per cycle.
        let mut state = vec![false; circuit.len()];
        let mut out = Vec::new();
        for cycle in 0..cycles {
            let mut values = vec![false; circuit.len()];
            for (i, &pi) in circuit.inputs().iter().enumerate() {
                values[pi.index()] = inputs[i][cycle];
            }
            for &reg in circuit.registers() {
                values[reg.index()] = state[reg.index()];
            }
            for &g in circuit.topo_order() {
                let gate = circuit.gate(g);
                if gate.kind() == netlist::GateKind::Input {
                    continue;
                }
                let ins: Vec<bool> = gate.fanins().iter().map(|&f| values[f.index()]).collect();
                values[g.index()] = gate.kind().eval_bool(&ins);
            }
            for &reg in circuit.registers() {
                let d = circuit.gate(reg).fanins()[0];
                state[reg.index()] = values[d.index()];
            }
            out.push(
                circuit
                    .outputs()
                    .iter()
                    .map(|&po| values[po.index()])
                    .collect(),
            );
        }
        out
    }

    #[test]
    fn identity_retiming_preserves_everything() {
        let c = samples::s27_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let c2 = apply_retiming(&c, &g, &r).unwrap();
        assert_eq!(c2.num_registers(), c.num_registers());
        assert_eq!(c2.inputs().len(), c.inputs().len());
        assert_eq!(c2.outputs().len(), c.outputs().len());
        // Behavior identical from reset.
        let mut rng = netlist::rng::Xoshiro256::seed_from_u64(3);
        let cycles = 24;
        let inputs: Vec<Vec<bool>> = (0..c.inputs().len())
            .map(|_| (0..cycles).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        assert_eq!(
            simulate(&c, &inputs, cycles),
            simulate(&c2, &inputs, cycles)
        );
    }

    #[test]
    fn min_period_retimed_circuit_matches_predicted_registers() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let res = min_period(&g).unwrap();
        let c2 = apply_retiming(&c, &g, &res.retiming).unwrap();
        assert_eq!(
            c2.num_registers() as i64,
            predicted_register_count(&g, &res.retiming)
        );
        // The rebuilt circuit's graph has the promised period.
        let g2 = RetimeGraph::from_circuit(&c2, &DelayModel::unit()).unwrap();
        let cp = clock_period(&g2, &Retiming::zero(&g2)).unwrap();
        assert!(cp <= res.phi, "rebuilt period {cp} > {}", res.phi);
    }

    #[test]
    fn forward_move_preserves_steady_state_behavior() {
        // fig1_like carries registers at F's inputs; the Fig. 1 move
        // r(F) = -1 merges them into one at F's output. Same output
        // streams after a warm-up.
        let c = samples::fig1_like();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let f = g.vertex_of(c.find("F").unwrap()).unwrap();
        let mut r = Retiming::zero(&g);
        r.set(f, -1);
        g.check_nonnegative(&r).unwrap();
        let c2 = apply_retiming(&c, &g, &r).unwrap();
        assert_eq!(
            c2.num_registers(),
            c.num_registers() - 1,
            "two input registers merge into one output register"
        );

        let mut rng = netlist::rng::Xoshiro256::seed_from_u64(9);
        let cycles = 30;
        let inputs: Vec<Vec<bool>> = (0..c.inputs().len())
            .map(|_| (0..cycles).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let a = simulate(&c, &inputs, cycles);
        let b = simulate(&c2, &inputs, cycles);
        // Identical after a 2-cycle warm-up (initial states may differ).
        assert_eq!(a[2..], b[2..]);
    }

    #[test]
    fn fanout_sharing_builds_one_chain() {
        // One driver, two registered fanouts: weights 2 and 1 share a
        // 2-deep chain: total registers 2, not 3.
        let mut bld = netlist::CircuitBuilder::new("share");
        bld.input("a");
        bld.gate("x", netlist::GateKind::Not, &["a"]).unwrap();
        bld.dff("q1", "x").unwrap();
        bld.dff("q2", "q1").unwrap();
        bld.gate("y", netlist::GateKind::Not, &["q2"]).unwrap();
        bld.gate("z", netlist::GateKind::Not, &["q1"]).unwrap();
        bld.output("y").unwrap();
        bld.output("z").unwrap();
        let c = bld.build().unwrap();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let c2 = apply_retiming(&c, &g, &r).unwrap();
        assert_eq!(c2.num_registers(), 2);
    }

    #[test]
    fn registers_pushed_to_host_edges_survive() {
        let c = samples::pipeline(4, 2); // register after s1 + fb
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        // Push a register onto the PO -> host edge: r(po marker) = -1
        // requires a register available on the marker's in-edge; give it
        // one by also retiming the driver chain. Simpler: push one onto
        // host -> PI edge by r(in) = ... w_r(host, in) = r(in): set a
        // positive r on the input vertex and its consumers' P0 needs.
        let vin = g.vertex_of(c.find("in").unwrap()).unwrap();
        let mut r = Retiming::zero(&g);
        r.set(vin, 1);
        // in's out-edge (in -> s0) now carries -1... fix by moving s0 too:
        let s0 = g.vertex_of(c.find("s0").unwrap()).unwrap();
        r.set(s0, 1);
        // s0 -> s1 edge: w_r = 0 + 0 - 1 = -1: also move s1 (which had a
        // register after it, absorbing the move).
        let s1 = g.vertex_of(c.find("s1").unwrap()).unwrap();
        r.set(s1, 1);
        g.check_nonnegative(&r).unwrap();
        let c2 = apply_retiming(&c, &g, &r).unwrap();
        // A register now delays the primary input.
        let pi = c2.inputs()[0];
        let consumers = c2.fanouts(pi);
        assert!(consumers
            .iter()
            .all(|&x| c2.gate(x).kind() == netlist::GateKind::Dff));
    }
}
