//! Exact reference solver for cost-minimal retiming (the classical
//! `W`/`D`-matrix + linear-program formulation of Leiserson–Saxe,
//! solved through minimum-cost flow).
//!
//! The paper's MinObs problem (and min-area retiming, of which it is a
//! cost relabeling) is
//!
//! ```text
//! min Σ_v b(v)·r(v)
//! s.t. r(u) − r(v) ≤ w(u,v)          ∀ (u,v) ∈ E          (P0)
//!      r(u) − r(v) ≤ W(u,v) − 1      ∀ u,v: D(u,v) > Φ−T_s (P1)
//!      r(host) = 0
//! ```
//!
//! This module solves it **exactly**: it is the ground truth the
//! `minobswin` crate's forest-based algorithm is validated against.
//! Memory is Θ(|V|²) (the very bottleneck the paper's algorithm
//! avoids), so use it on small/medium circuits only.

use crate::error::RetimeError;
use crate::flow::MinCostFlow;
use crate::graph::{RetimeGraph, Retiming, VertexId};

const INF: i64 = i64::MAX / 4;

/// The `W` (minimum registers) and `D` (maximum delay among
/// register-minimal paths) matrices of Leiserson–Saxe. Paths through
/// the host are excluded (they are not timing paths).
#[derive(Debug, Clone)]
pub struct WdMatrices {
    n: usize,
    w: Vec<i64>,
    d: Vec<i64>,
}

impl WdMatrices {
    /// Computes the matrices by |V| label-correcting searches.
    pub fn compute(graph: &RetimeGraph) -> Self {
        let n = graph.num_vertices();
        let mut w = vec![INF; n * n];
        let mut d = vec![i64::MIN / 4; n * n];
        for s in 0..n {
            let source = VertexId::new(s);
            let row_w = &mut w[s * n..(s + 1) * n];
            let row_d = &mut d[s * n..(s + 1) * n];
            row_w[s] = 0;
            row_d[s] = graph.delay(source);
            let mut queue = std::collections::VecDeque::new();
            let mut in_queue = vec![false; n];
            if source.is_host() {
                // The host expands exactly once (as a source); walks may
                // end at it but never pass through — otherwise the
                // zero-weight host→PI…PO→host cycle loops forever.
                for &e in graph.out_edges(source) {
                    let edge = graph.edge(e);
                    let vi = edge.to.index();
                    let cand_w = edge.weight as i64;
                    let cand_d = graph.delay(edge.to);
                    if cand_w < row_w[vi] || (cand_w == row_w[vi] && cand_d > row_d[vi]) {
                        row_w[vi] = cand_w;
                        row_d[vi] = cand_d;
                        queue.push_back(vi);
                        in_queue[vi] = true;
                    }
                }
            } else {
                queue.push_back(s);
                in_queue[s] = true;
            }
            while let Some(ui) = queue.pop_front() {
                in_queue[ui] = false;
                let u = VertexId::new(ui);
                // Paths may end at the host but not pass through it.
                if u.is_host() {
                    continue;
                }
                for &e in graph.out_edges(u) {
                    let edge = graph.edge(e);
                    let vi = edge.to.index();
                    let cand_w = row_w[ui] + edge.weight as i64;
                    let cand_d = row_d[ui] + graph.delay(edge.to);
                    let better = cand_w < row_w[vi] || (cand_w == row_w[vi] && cand_d > row_d[vi]);
                    if better {
                        row_w[vi] = cand_w;
                        row_d[vi] = cand_d;
                        if !in_queue[vi] {
                            queue.push_back(vi);
                            in_queue[vi] = true;
                        }
                    }
                }
            }
        }
        Self { n, w, d }
    }

    /// `W(u,v)`: minimum registers on any `u → v` path (`None` if no
    /// path exists).
    pub fn w(&self, u: VertexId, v: VertexId) -> Option<i64> {
        let val = self.w[u.index() * self.n + v.index()];
        (val < INF).then_some(val)
    }

    /// `D(u,v)`: maximum total vertex delay (inclusive of both
    /// endpoints) among register-minimal `u → v` paths.
    pub fn d(&self, u: VertexId, v: VertexId) -> Option<i64> {
        self.w(u, v).map(|_| self.d[u.index() * self.n + v.index()])
    }
}

/// A difference constraint `r(u) − r(v) ≤ bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand vertex.
    pub u: VertexId,
    /// Right-hand vertex.
    pub v: VertexId,
    /// Upper bound on the difference.
    pub bound: i64,
}

/// Builds the P0 + P1 constraint set for the classical formulation.
///
/// # Errors
///
/// Returns [`RetimeError::Infeasible`] when a purely combinational path
/// already exceeds `phi_effective` (no retiming can fix it).
pub fn build_constraints(
    graph: &RetimeGraph,
    wd: &WdMatrices,
    phi_effective: Option<i64>,
) -> Result<Vec<Constraint>, RetimeError> {
    let mut constraints = Vec::new();
    for edge in graph.edges() {
        constraints.push(Constraint {
            u: edge.from,
            v: edge.to,
            bound: edge.weight as i64,
        });
    }
    if let Some(phi) = phi_effective {
        let n = graph.num_vertices();
        for ui in 0..n {
            for vi in 0..n {
                let (u, v) = (VertexId::new(ui), VertexId::new(vi));
                let (Some(w), Some(d)) = (wd.w(u, v), wd.d(u, v)) else {
                    continue;
                };
                if d <= phi {
                    continue;
                }
                if ui == vi {
                    // Self-pair: a zero-register closed walk. For the
                    // host that is a PI→PO combinational path whose
                    // delay is retiming-invariant; for a gate it is an
                    // unregistered loop. Either way the period bound is
                    // unattainable.
                    let what = if u.is_host() {
                        "combinational input-to-output path".to_string()
                    } else {
                        format!("register-free loop through {}", graph.name(u))
                    };
                    return Err(RetimeError::Infeasible(format!(
                        "{what} of delay {d} exceeds the period"
                    )));
                }
                constraints.push(Constraint { u, v, bound: w - 1 });
            }
        }
    }
    Ok(constraints)
}

/// Checks a difference-constraint system for feasibility (Bellman–Ford
/// negative-cycle detection). Returns a feasible retiming on success.
///
/// # Errors
///
/// Returns [`RetimeError::Infeasible`] when the system has a negative
/// cycle.
pub fn feasible_point(
    graph: &RetimeGraph,
    constraints: &[Constraint],
) -> Result<Retiming, RetimeError> {
    let n = graph.num_vertices();
    // Constraint r(u) − r(v) ≤ c is the shortest-path edge v → u with
    // length c; distances from the host give a feasible solution.
    let mut dist = vec![0i64; n]; // virtual zero-source to every node
    for _ in 0..n {
        let mut changed = false;
        for c in constraints {
            let cand = dist[c.v.index()] + c.bound;
            if cand < dist[c.u.index()] {
                dist[c.u.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            let host = dist[0];
            let values = dist.iter().map(|&x| x - host).collect();
            return Retiming::from_values(graph, values);
        }
    }
    Err(RetimeError::Infeasible("negative constraint cycle".into()))
}

/// An exact solution of the cost-minimal retiming LP.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// The optimal retiming.
    pub retiming: Retiming,
    /// Its objective value `Σ b(v)·r(v)`.
    pub objective: i64,
}

/// Solves `min Σ b(v)·r(v)` subject to P0 (+ P1 at `phi_effective` if
/// given) exactly, via minimum-cost flow.
///
/// `b` is indexed by vertex (entry 0, the host, is ignored).
///
/// # Errors
///
/// Returns [`RetimeError::Infeasible`] when the constraints are
/// unsatisfiable, or a generic `Infeasible` if the LP is unbounded
/// (impossible for graphs built from circuits without dead logic).
///
/// # Panics
///
/// Panics if `b.len()` differs from the number of vertices.
pub fn solve_exact(
    graph: &RetimeGraph,
    b: &[i64],
    phi_effective: Option<i64>,
) -> Result<ExactSolution, RetimeError> {
    assert_eq!(b.len(), graph.num_vertices(), "one coefficient per vertex");
    let wd = WdMatrices::compute(graph);
    let constraints = build_constraints(graph, &wd, phi_effective)?;
    // Negative-cycle check; the feasible point doubles as the initial
    // flow potentials (making every reduced cost non-negative even when
    // a P1 bound is negative).
    let r0 = feasible_point(graph, &constraints)?;
    let potentials: Vec<i64> = r0.as_slice().iter().map(|&x| -x).collect();

    let n = graph.num_vertices();
    let mut mcf = MinCostFlow::new(n);
    let mut arc_of = Vec::with_capacity(constraints.len());
    for c in &constraints {
        arc_of.push(mcf.add_arc_unbounded(c.u.index(), c.v.index(), c.bound));
    }
    let mut supply = vec![0i64; n];
    for v in 1..n {
        supply[v] = -b[v];
    }
    supply[0] = -supply.iter().skip(1).sum::<i64>();
    let flow = mcf
        .solve_with_potentials(&supply, Some(&potentials))
        .ok_or_else(|| RetimeError::Infeasible("dual flow is unroutable (unbounded LP)".into()))?;

    // Recover the primal optimum: Bellman–Ford over the residual
    // constraint system (original constraints, plus equalities forced by
    // complementary slackness on arcs carrying flow).
    let mut dist = vec![INF; n];
    dist[0] = 0;
    for _ in 0..n + 1 {
        let mut changed = false;
        for (i, c) in constraints.iter().enumerate() {
            // r(u) ≤ r(v) + bound: edge v → u.
            if dist[c.v.index()] < INF && dist[c.v.index()] + c.bound < dist[c.u.index()] {
                dist[c.u.index()] = dist[c.v.index()] + c.bound;
                changed = true;
            }
            // Flow on the arc forces r(u) − r(v) = bound: edge u → v of
            // length −bound.
            if flow.flows[arc_of[i]] > 0
                && dist[c.u.index()] < INF
                && dist[c.u.index()] - c.bound < dist[c.v.index()]
            {
                dist[c.v.index()] = dist[c.u.index()] - c.bound;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if dist.contains(&INF) {
        return Err(RetimeError::Infeasible(
            "a vertex is unconstrained relative to the host".into(),
        ));
    }
    let retiming = Retiming::from_values(graph, dist)?;
    let objective: i64 = (1..n).map(|v| b[v] * retiming.get(VertexId::new(v))).sum();
    debug_assert_eq!(
        objective, -flow.cost,
        "strong duality: primal optimum must equal −(dual flow cost)"
    );
    Ok(ExactSolution {
        retiming,
        objective,
    })
}

/// Exhaustive minimization over all retimings in a box, for tiny
/// circuits. The ground truth of ground truths.
///
/// Calls `feasible` and `cost` on every `r ∈ [−radius, radius]^{V∖host}`
/// and returns the feasible minimizer.
pub fn exhaustive_minimize(
    graph: &RetimeGraph,
    radius: i64,
    mut feasible: impl FnMut(&Retiming) -> bool,
    mut cost: impl FnMut(&Retiming) -> i64,
) -> Option<(Retiming, i64)> {
    let n = graph.num_vertices();
    let mut r = Retiming::zero(graph);
    let mut best: Option<(Retiming, i64)> = None;
    fn rec(
        v: usize,
        n: usize,
        radius: i64,
        r: &mut Retiming,
        feasible: &mut impl FnMut(&Retiming) -> bool,
        cost: &mut impl FnMut(&Retiming) -> i64,
        best: &mut Option<(Retiming, i64)>,
    ) {
        if v == n {
            if feasible(r) {
                let c = cost(r);
                if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                    *best = Some((r.clone(), c));
                }
            }
            return;
        }
        for val in -radius..=radius {
            r.set(VertexId::new(v), val);
            rec(v + 1, n, radius, r, feasible, cost, best);
        }
        r.set(VertexId::new(v), 0);
    }
    rec(1, n, radius, &mut r, &mut feasible, &mut cost, &mut best);
    best
}

/// Convenience wrapper: exact minimum-register (min-area) retiming at a
/// given effective period; `None` period means P0-only.
///
/// # Errors
///
/// See [`solve_exact`].
pub fn min_area_exact(
    graph: &RetimeGraph,
    phi_effective: Option<i64>,
) -> Result<ExactSolution, RetimeError> {
    // Total registers = Σ_e w_r(e) = const + Σ_v r(v)(indeg − outdeg);
    // minimizing registers is the LP with b(v) = indeg(v) − outdeg(v).
    let b: Vec<i64> = (0..graph.num_vertices())
        .map(|vi| {
            let v = VertexId::new(vi);
            graph.in_edges(v).len() as i64 - graph.out_edges(v).len() as i64
        })
        .collect();
    solve_exact(graph, &b, phi_effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::clock_period;
    use netlist::{samples, DelayModel};

    fn graph_of(c: &netlist::Circuit) -> RetimeGraph {
        RetimeGraph::from_circuit(c, &DelayModel::unit()).unwrap()
    }

    #[test]
    fn wd_matrices_on_pipeline() {
        let c = samples::pipeline(6, 3); // s0..s5, register after s2 + fb
        let g = graph_of(&c);
        let wd = WdMatrices::compute(&g);
        let s0 = g.vertex_of(c.find("s0").unwrap()).unwrap();
        let s5 = g.vertex_of(c.find("s5").unwrap()).unwrap();
        // s0 -> s5 passes one register (after s2).
        assert_eq!(wd.w(s0, s5), Some(1));
        // Register-minimal path delay: all six unit-delay gates.
        assert_eq!(wd.d(s0, s5), Some(6));
        // No path backwards without registers: W(s5, s0) goes through fb.
        assert_eq!(wd.w(s5, s0), Some(1));
    }

    #[test]
    fn wd_excludes_through_host_paths() {
        let c = samples::pipeline(4, 4);
        let g = graph_of(&c);
        let wd = WdMatrices::compute(&g);
        let pin = g.vertex_of(c.find("in").unwrap()).unwrap();
        // A PO -> PI "path" exists only through the host; it must not
        // be reported (except trivially via real feedback, which in
        // this circuit carries a register).
        let s3 = g.vertex_of(c.find("s3").unwrap()).unwrap();
        match wd.w(s3, pin) {
            None => {}
            Some(w) => assert!(w >= 1, "any real path back carries a register"),
        }
    }

    #[test]
    fn feasible_point_satisfies_constraints() {
        let c = samples::s27_like();
        let g = graph_of(&c);
        let wd = WdMatrices::compute(&g);
        // The longest PI→PO combinational path (retiming-invariant) has
        // delay 6 under unit delays, so 7 is comfortably feasible while
        // still forcing some P1 constraints.
        let phi = 7;
        let constraints = build_constraints(&g, &wd, Some(phi)).unwrap();
        let r = feasible_point(&g, &constraints).unwrap();
        for cst in &constraints {
            assert!(r.get(cst.u) - r.get(cst.v) <= cst.bound);
        }
        assert!(clock_period(&g, &r).unwrap() <= phi);
    }

    #[test]
    fn infeasible_phi_detected() {
        let c = samples::pipeline(6, 6); // loop delay 6, one register
        let g = graph_of(&c);
        let wd = WdMatrices::compute(&g);
        let constraints = build_constraints(&g, &wd, Some(5));
        // Either constraint building or feasibility must fail.
        match constraints {
            Err(_) => {}
            Ok(cs) => assert!(feasible_point(&g, &cs).is_err()),
        }
    }

    #[test]
    fn min_area_matches_exhaustive_on_small_loop() {
        let c = samples::two_stage_loop();
        let g = graph_of(&c);
        let sol = min_area_exact(&g, None).unwrap();
        let brute = exhaustive_minimize(
            &g,
            2,
            |r| g.check_nonnegative(r).is_ok(),
            |r| g.retimed_registers(r),
        )
        .unwrap();
        assert_eq!(
            g.retimed_registers(&sol.retiming),
            brute.1,
            "flow solver must match exhaustive optimum"
        );
    }

    #[test]
    fn min_area_with_period_matches_exhaustive() {
        let c = samples::pipeline(6, 3);
        let g = graph_of(&c);
        let phi = 3;
        let sol = min_area_exact(&g, Some(phi)).unwrap();
        assert!(clock_period(&g, &sol.retiming).unwrap() <= phi);
        let brute = exhaustive_minimize(
            &g,
            2,
            |r| {
                g.check_nonnegative(r).is_ok() && matches!(clock_period(&g, r), Ok(cp) if cp <= phi)
            },
            |r| g.retimed_registers(r),
        )
        .unwrap();
        assert_eq!(g.retimed_registers(&sol.retiming), brute.1);
    }

    #[test]
    fn arbitrary_costs_match_exhaustive() {
        let c = samples::two_stage_loop();
        let g = graph_of(&c);
        // A lopsided cost vector exercising both signs.
        let mut b = vec![0i64; g.num_vertices()];
        for (i, item) in b.iter_mut().enumerate().skip(1) {
            *item = if i % 2 == 0 { 3 } else { -2 };
        }
        let sol = solve_exact(&g, &b, None).unwrap();
        let brute = exhaustive_minimize(
            &g,
            3,
            |r| g.check_nonnegative(r).is_ok(),
            |r| {
                (1..g.num_vertices())
                    .map(|v| b[v] * r.get(VertexId::new(v)))
                    .sum()
            },
        )
        .unwrap();
        assert_eq!(sol.objective, brute.1);
    }

    #[test]
    fn random_small_circuits_match_exhaustive() {
        use netlist::generator::GeneratorConfig;
        for seed in 0..3 {
            let c = GeneratorConfig::new("x", seed)
                .gates(5)
                .registers(3)
                .inputs(1)
                .outputs(1)
                .target_edges(10)
                .build();
            let g = graph_of(&c);
            if g.num_vertices() > 9 {
                continue; // keep the exhaustive sweep tractable
            }
            let mut rng = netlist::rng::Xoshiro256::seed_from_u64(seed * 77 + 1);
            let b: Vec<i64> = (0..g.num_vertices())
                .map(|i| {
                    if i == 0 {
                        0
                    } else {
                        rng.gen_range(7) as i64 - 3
                    }
                })
                .collect();
            let sol = match solve_exact(&g, &b, None) {
                Ok(s) => s,
                // A random cost vector can make the LP unbounded when a
                // vertex group can shift registers forever in one
                // direction; the solver reports that as unroutable.
                Err(RetimeError::Infeasible(_)) => continue,
                Err(other) => panic!("unexpected error: {other}"),
            };
            let brute = exhaustive_minimize(
                &g,
                2,
                |r| g.check_nonnegative(r).is_ok(),
                |r| {
                    (1..g.num_vertices())
                        .map(|v| b[v] * r.get(VertexId::new(v)))
                        .sum()
                },
            )
            .unwrap();
            assert_eq!(sol.objective, brute.1, "seed {seed}");
        }
    }
}
