//! Error type for retiming-graph operations.

use std::error::Error;
use std::fmt;

/// Errors produced by retiming-graph construction and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetimeError {
    /// A cycle of registers with no combinational gate on it (isolated
    /// state that no retiming formulation can express).
    RegisterLoop {
        /// Name of one register on the loop.
        witness: String,
    },
    /// The retimed circuit has a combinational cycle (a structural cycle
    /// whose registers were all moved away) — the retiming is invalid.
    ZeroWeightCycle,
    /// A retiming assigns negative registers to an edge (violates P0).
    NegativeEdgeWeight {
        /// Tail vertex name.
        from: String,
        /// Head vertex name.
        to: String,
        /// The offending weight.
        weight: i64,
    },
    /// No retiming satisfies the requested constraints.
    Infeasible(String),
    /// A retiming vector has the wrong length for this graph.
    WrongLength {
        /// Expected number of vertices.
        expected: usize,
        /// Provided length.
        got: usize,
    },
}

impl fmt::Display for RetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimeError::RegisterLoop { witness } => {
                write!(f, "register-only loop through `{witness}`")
            }
            RetimeError::ZeroWeightCycle => {
                write!(f, "retiming creates a combinational cycle")
            }
            RetimeError::NegativeEdgeWeight { from, to, weight } => {
                write!(
                    f,
                    "retimed edge `{from}` -> `{to}` has negative weight {weight}"
                )
            }
            RetimeError::Infeasible(why) => write!(f, "no feasible retiming: {why}"),
            RetimeError::WrongLength { expected, got } => {
                write!(
                    f,
                    "retiming has length {got}, graph has {expected} vertices"
                )
            }
        }
    }
}

impl Error for RetimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RetimeError::NegativeEdgeWeight {
            from: "a".into(),
            to: "b".into(),
            weight: -2,
        };
        assert!(e.to_string().contains("-2"));
        assert!(RetimeError::ZeroWeightCycle
            .to_string()
            .contains("combinational cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RetimeError>();
    }
}
