//! The scalar (per-`Signature`, single-threaded) reference engine.
//!
//! This module preserves the original allocation-per-gate
//! implementation of simulation, ODC observability and exact fault
//! injection. It serves two purposes:
//!
//! 1. **Differential oracle** — the arena engine
//!    ([`FrameTrace`](crate::sim::FrameTrace),
//!    [`Observability`](crate::odc::Observability)) must be bit-for-bit
//!    identical to this code; the proptest suite and the in-loop
//!    audits compare against it.
//! 2. **Circuit-breaker fallback** — when a sampled audit catches a
//!    divergence in the parallel engine, the run is discarded and
//!    recomputed here, and the trip is recorded in the
//!    [`EngineReport`](crate::sim::EngineReport).
//!
//! The math is kept line-for-line equivalent to the pre-arena engine;
//! only the needless `Signature` clones were removed (register-ODC
//! accumulation, next-frame register snapshots, and the per-frame
//! buffers of the exact fault injector now reuse their allocations).

use netlist::rng::Xoshiro256;
use netlist::{Circuit, GateId, GateKind};

use crate::signature::{eval_gate, Signature};
use crate::sim::SimConfig;

/// Frame-major recorded signatures of the scalar simulator, indexed by
/// `frame * num_gates + gate.index()` (gate-id order, not slot order).
#[derive(Debug, Clone)]
pub struct ScalarTrace {
    config: SimConfig,
    num_gates: usize,
    values: Vec<Signature>,
}

impl ScalarTrace {
    /// Simulates `circuit` under `config` with the original
    /// allocation-per-gate engine (`config.threads` is ignored — this
    /// engine is single-threaded by definition).
    pub fn simulate(circuit: &Circuit, config: SimConfig) -> Self {
        let bits = config.num_vectors;
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let n = circuit.len();

        // Register state: random initial values, then warm up.
        let mut state: Vec<Signature> = circuit
            .registers()
            .iter()
            .map(|_| Signature::random(bits, &mut rng))
            .collect();

        let mut frame_values: Vec<Signature> = vec![Signature::zeros(bits); n];
        for _ in 0..config.warmup {
            step(circuit, bits, &mut rng, &mut state, &mut frame_values);
        }

        let mut values = Vec::with_capacity(config.frames * n);
        for _ in 0..config.frames {
            step(circuit, bits, &mut rng, &mut state, &mut frame_values);
            values.extend(frame_values.iter().cloned());
        }
        Self {
            config,
            num_gates: n,
            values,
        }
    }

    /// Materializes a scalar trace from an arena-backed trace (used by
    /// the ODC fallback path, which runs the scalar math against the
    /// already-validated simulation values).
    pub fn from_trace(circuit: &Circuit, trace: &crate::sim::FrameTrace) -> Self {
        let config = *trace.config();
        let n = circuit.len();
        let mut values = Vec::with_capacity(config.frames * n);
        for f in 0..config.frames {
            for (id, _) in circuit.iter() {
                values.push(trace.value(f, id).to_signature());
            }
        }
        Self {
            config,
            num_gates: n,
            values,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of recorded frames.
    pub fn frames(&self) -> usize {
        self.config.frames
    }

    /// Signature of `gate` during `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= frames`.
    pub fn value(&self, frame: usize, gate: GateId) -> &Signature {
        assert!(frame < self.config.frames, "frame out of range");
        &self.values[frame * self.num_gates + gate.index()]
    }
}

/// Advances the circuit by one clock cycle: fresh random inputs,
/// combinational evaluation, register update.
fn step(
    circuit: &Circuit,
    bits: usize,
    rng: &mut Xoshiro256,
    state: &mut [Signature],
    values: &mut [Signature],
) {
    // Present register state first (consumed by combinational gates).
    for (si, &reg) in circuit.registers().iter().enumerate() {
        values[reg.index()].clone_from(&state[si]);
    }
    for &pi in circuit.inputs() {
        values[pi.index()] = Signature::random(bits, rng);
    }
    for &g in circuit.topo_order() {
        let gate = circuit.gate(g);
        match gate.kind() {
            GateKind::Input => continue,
            _ => {
                let fanins: Vec<&Signature> =
                    gate.fanins().iter().map(|&f| &values[f.index()]).collect();
                values[g.index()] = eval_gate(gate.kind(), &fanins, bits);
            }
        }
    }
    // Capture next state.
    for (si, &reg) in circuit.registers().iter().enumerate() {
        let d = circuit.gate(reg).fanins()[0];
        state[si].clone_from(&values[d.index()]);
    }
}

/// Computes `(obs, frame0_odc)` by the original backward ODC
/// composition, both indexed by gate id. This is the oracle for
/// [`Observability::compute`](crate::odc::Observability::compute).
pub fn observability(circuit: &Circuit, trace: &ScalarTrace) -> (Vec<f64>, Vec<Signature>) {
    let bits = trace.config().num_vectors;
    let frames = trace.frames();
    let n = circuit.len();

    // ODC masks of the current frame (being computed) and register
    // ODCs of the next frame (already computed).
    let mut next_reg_odc: Vec<Signature> = vec![Signature::zeros(bits); circuit.registers().len()];
    let mut frame_odc: Vec<Signature> = vec![Signature::zeros(bits); n];
    let reg_index: Vec<Option<usize>> = {
        let mut m = vec![None; n];
        for (i, &r) in circuit.registers().iter().enumerate() {
            m[r.index()] = Some(i);
        }
        m
    };

    for f in (0..frames).rev() {
        for s in frame_odc.iter_mut() {
            *s = Signature::zeros(bits);
        }
        // Primary-output markers are fully observable in every frame.
        for &po in circuit.outputs() {
            frame_odc[po.index()] = Signature::ones(bits);
        }
        // Backward pass over the combinational order.
        for &g in circuit.topo_order().iter().rev() {
            let mut acc = std::mem::replace(&mut frame_odc[g.index()], Signature::zeros(bits));
            for &h in circuit.fanouts(g) {
                match circuit.gate(h).kind() {
                    GateKind::Dff => {
                        // The register captures g; its value matters
                        // in the next frame (or unconditionally in
                        // the last recorded frame).
                        let ri = reg_index[h.index()].expect("register indexed");
                        if f == frames - 1 {
                            acc = Signature::ones(bits);
                        } else {
                            acc.or_assign(&next_reg_odc[ri]);
                        }
                    }
                    _ => {
                        let sens = sensitivity(circuit, trace, f, h, g);
                        acc.or_assign(&frame_odc[h.index()].and(&sens));
                    }
                }
            }
            frame_odc[g.index()] = acc;
        }
        // Register outputs act as frame sources; record their ODCs
        // for the previous (earlier) frame's pass.
        for &q in circuit.registers() {
            let mut acc = Signature::zeros(bits);
            for &h in circuit.fanouts(q) {
                match circuit.gate(h).kind() {
                    GateKind::Dff => {
                        let rj = reg_index[h.index()].expect("register indexed");
                        if f == frames - 1 {
                            acc = Signature::ones(bits);
                        } else {
                            acc.or_assign(&next_reg_odc[rj]);
                        }
                    }
                    _ => {
                        let sens = sensitivity(circuit, trace, f, h, q);
                        acc.or_assign(&frame_odc[h.index()].and(&sens));
                    }
                }
            }
            frame_odc[q.index()] = acc;
        }
        for (dst, &q) in next_reg_odc.iter_mut().zip(circuit.registers()) {
            dst.clone_from(&frame_odc[q.index()]);
        }
    }

    let obs = frame_odc.iter().map(|s| s.density()).collect();
    (obs, frame_odc)
}

/// Sensitivity of gate `h` (at `frame`) to its fanin *signal* `g`:
/// bit `k` is set when flipping `g` in vector `k` flips `h`'s output.
/// All occurrences of `g` among `h`'s pins flip together.
fn sensitivity(
    circuit: &Circuit,
    trace: &ScalarTrace,
    frame: usize,
    h: GateId,
    g: GateId,
) -> Signature {
    let gate = circuit.gate(h);
    let bits = trace.config().num_vectors;
    let flipped = trace.value(frame, g).not();
    let fanins: Vec<&Signature> = gate
        .fanins()
        .iter()
        .map(|&f| {
            if f == g {
                &flipped
            } else {
                trace.value(frame, f)
            }
        })
        .collect();
    let faulty = eval_gate(gate.kind(), &fanins, bits);
    faulty.xor(trace.value(frame, h))
}

/// Exact observability by per-gate fault injection, single-threaded
/// over `Signature` values — the oracle for the arena-backed parallel
/// [`exact_fault_injection`](crate::odc::exact_fault_injection).
/// Quadratic cost; intended for validation on small circuits.
pub fn exact_fault_injection(circuit: &Circuit, config: SimConfig) -> Vec<f64> {
    let trace = ScalarTrace::simulate(circuit, config);
    let bits = config.num_vectors;
    let frames = config.frames;
    let n = circuit.len();
    let mut result = vec![0.0; n];

    // Double-buffered faulty values, reused across victims and frames.
    let mut faulty: Vec<Signature> = vec![Signature::zeros(bits); n];
    let mut prev: Vec<Signature> = vec![Signature::zeros(bits); n];
    for (victim, vgate) in circuit.iter() {
        if vgate.kind() == GateKind::Output {
            result[victim.index()] = 1.0;
            continue;
        }
        // Faulty values per frame; start as copies of the nominal trace.
        let mut detected = Signature::zeros(bits);
        for (i, _) in circuit.iter() {
            faulty[i.index()].clone_from(trace.value(0, i));
        }
        // Inject at frame 0.
        faulty[victim.index()] = faulty[victim.index()].not();
        for f in 0..frames {
            if f > 0 {
                // Register outputs take the previous faulty frame's D.
                std::mem::swap(&mut prev, &mut faulty);
                for (i, _) in circuit.iter() {
                    faulty[i.index()].clone_from(trace.value(f, i));
                }
                for &q in circuit.registers() {
                    let d = circuit.gate(q).fanins()[0];
                    faulty[q.index()].clone_from(&prev[d.index()]);
                }
            }
            // Re-evaluate combinational logic (inputs keep nominal
            // values; the injected gate keeps its flip only in frame 0).
            for &g in circuit.topo_order() {
                let gate = circuit.gate(g);
                if gate.kind() == GateKind::Input {
                    continue;
                }
                let fanins: Vec<&Signature> =
                    gate.fanins().iter().map(|&x| &faulty[x.index()]).collect();
                let mut value = eval_gate(gate.kind(), &fanins, bits);
                if f == 0 && g == victim {
                    value = value.not();
                }
                faulty[g.index()] = value;
            }
            for &po in circuit.outputs() {
                detected.or_assign(&faulty[po.index()].xor(trace.value(f, po)));
            }
            if f == frames - 1 {
                for &q in circuit.registers() {
                    let d = circuit.gate(q).fanins()[0];
                    detected.or_assign(&faulty[d.index()].xor(trace.value(f, d)));
                }
            }
        }
        result[victim.index()] = detected.density();
    }
    result
}
