//! End-to-end SER analysis of a sequential circuit: the paper's
//! eq. (4), combining logic masking (observabilities from `n`-frame
//! expanded simulation), timing masking (exact error-latching windows)
//! and the raw per-gate rates.
//!
//! ```text
//! SER(C_S, n) =   Σ_{g ∈ Comb}  obs(g,n) · err(g) · |ELW(g)|/Φ
//!              +  Σ_{r ∈ Reg}   obs(r,n) · err(r) · |ELW(r)|/Φ
//! ```
//!
//! where a register's observability and ELW are those of the gate at
//! its immediate input (registers are wires in the expansion).

use netlist::{Circuit, DelayModel, GateId, GateKind};
use retime::{ElwParams, RetimeGraph, Retiming};

use crate::elw::{compute_elws, IntervalSet};
use crate::error_rate::ErrorRateModel;
use crate::odc::Observability;
use crate::sim::{EngineReport, FrameTrace, SimConfig};

/// Everything the SER analysis needs besides the circuit itself.
#[derive(Debug, Clone)]
pub struct SerConfig {
    /// Simulation parameters (vectors, frames, warm-up, seed).
    pub sim: SimConfig,
    /// Gate delay model (for the ELW computation).
    pub delays: DelayModel,
    /// Raw per-gate rate characterization.
    pub rates: ErrorRateModel,
    /// Clocking parameters Φ, T_s, T_h.
    pub elw: ElwParams,
}

impl SerConfig {
    /// A configuration with the paper's `T_s = 0`, `T_h = 2` at the
    /// given clock period, default models and full-size simulation.
    pub fn with_phi(phi: i64) -> Self {
        Self {
            sim: SimConfig::default(),
            delays: DelayModel::default(),
            rates: ErrorRateModel::default(),
            elw: ElwParams::with_phi(phi),
        }
    }

    /// Shrinks the simulation for fast tests.
    pub fn small(phi: i64) -> Self {
        Self {
            sim: SimConfig::small(),
            ..Self::with_phi(phi)
        }
    }
}

/// The complete SER breakdown of a circuit.
#[derive(Debug, Clone)]
pub struct SerReport {
    /// Total SER under eq. (4) (logic + timing masking).
    pub ser: f64,
    /// SER under eq. (1)-style logic masking only (no ELW factor) —
    /// what the MinObs objective of ref \[17\] models.
    pub ser_logic_only: f64,
    /// The combinational-gate share of `ser`.
    pub ser_combinational: f64,
    /// The register share of `ser`.
    pub ser_registers: f64,
    /// Σ obs over registers (the quantity MinObs-style retiming
    /// minimizes, eq. (5)).
    pub register_observability: f64,
    /// Per-gate observabilities (indexed by [`GateId`]; registers carry
    /// their driver's observability).
    pub obs: Vec<f64>,
    /// Per-gate exact ELW sizes `|ELW(g)|` (registers carry their
    /// driver's window).
    pub elw_size: Vec<i64>,
    /// The exact per-gate ELW interval sets.
    pub elws: Vec<IntervalSet>,
    /// Clock period used.
    pub phi: i64,
    /// Simulation/ODC engine diagnostics: thread count, sampled-audit
    /// volume and circuit-breaker activity (scalar fallbacks).
    pub engine: EngineReport,
}

impl SerReport {
    /// `|ELW(g)|/Φ` for one gate.
    pub fn elw_fraction(&self, gate: GateId) -> f64 {
        self.elw_size[gate.index()] as f64 / self.phi as f64
    }
}

/// Runs the full analysis on a circuit.
///
/// # Errors
///
/// Returns [`retime::RetimeError`] if the circuit cannot be modeled as
/// a retiming graph (register-only loops).
///
/// # Examples
///
/// ```
/// use netlist::samples;
/// use ser_engine::{analyze, SerConfig};
/// # fn main() -> Result<(), retime::RetimeError> {
/// let c = samples::s27_like();
/// let report = analyze(&c, &SerConfig::small(20))?;
/// assert!(report.ser > 0.0);
/// assert!(report.ser <= report.ser_logic_only + 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn analyze(circuit: &Circuit, config: &SerConfig) -> Result<SerReport, retime::RetimeError> {
    let trace = FrameTrace::simulate(circuit, config.sim);
    let observability = Observability::compute(circuit, &trace);
    analyze_with_observability(circuit, config, &observability)
}

/// Like [`analyze`] but reuses precomputed observabilities (the
/// optimizer calls the simulation once and reuses it across candidate
/// retimings, since retiming does not change gate observabilities).
///
/// # Errors
///
/// See [`analyze`].
pub fn analyze_with_observability(
    circuit: &Circuit,
    config: &SerConfig,
    observability: &Observability,
) -> Result<SerReport, retime::RetimeError> {
    report_from_observabilities(
        circuit,
        config,
        observability.as_slice(),
        *observability.engine(),
    )
}

/// Assembles the full eq. (4) [`SerReport`] from *any* per-gate
/// observability estimate — the shared back half of every estimator
/// (analytic ODC, propagation-probability, exhaustive enumeration):
/// the ELW/timing-masking factor, the per-gate rate weighting and the
/// register-takes-its-driver convention are identical across engines,
/// so only the logic-masking front end differs between them.
///
/// `gate_obs` is indexed by [`GateId`]; entries for `Dff` gates are
/// ignored (a register is a wire in the expansion and carries its
/// driving gate's observability and window).
///
/// # Errors
///
/// See [`analyze`].
///
/// # Panics
///
/// Panics if `gate_obs.len() != circuit.len()`.
pub fn report_from_observabilities(
    circuit: &Circuit,
    config: &SerConfig,
    gate_obs: &[f64],
    engine: EngineReport,
) -> Result<SerReport, retime::RetimeError> {
    assert_eq!(gate_obs.len(), circuit.len(), "one entry per gate");
    let graph = RetimeGraph::from_circuit(circuit, &config.delays)?;
    let r = Retiming::zero(&graph);
    let vertex_elws = compute_elws(&graph, &r, config.elw)?;

    let n = circuit.len();
    let mut obs = vec![0.0; n];
    let mut elw_size = vec![0i64; n];
    let mut elws = vec![IntervalSet::new(); n];
    for (id, gate) in circuit.iter() {
        match gate.kind() {
            GateKind::Dff => {
                // Registers take their driving gate's observability and
                // window (they are wires in the expansion).
                let driver = register_driver(circuit, id);
                obs[id.index()] = gate_obs[driver.index()];
                let v = graph.vertex_of(driver).expect("driver is combinational");
                elws[id.index()] = vertex_elws[v.index()].clone();
                elw_size[id.index()] = elws[id.index()].total_length();
            }
            _ => {
                obs[id.index()] = gate_obs[id.index()];
                let v = graph.vertex_of(id).expect("combinational vertex");
                elws[id.index()] = vertex_elws[v.index()].clone();
                elw_size[id.index()] = elws[id.index()].total_length();
            }
        }
    }

    let phi = config.elw.phi;
    let mut ser_comb = 0.0;
    let mut ser_reg = 0.0;
    let mut ser_logic_only = 0.0;
    let mut register_observability = 0.0;
    for (id, gate) in circuit.iter() {
        let err = config.rates.rate(circuit, id);
        if err == 0.0 {
            continue;
        }
        let term_logic = obs[id.index()] * err;
        let term = term_logic * elw_size[id.index()] as f64 / phi as f64;
        ser_logic_only += term_logic;
        if gate.kind() == GateKind::Dff {
            ser_reg += term;
            register_observability += obs[id.index()];
        } else {
            ser_comb += term;
        }
    }

    Ok(SerReport {
        ser: ser_comb + ser_reg,
        ser_logic_only,
        ser_combinational: ser_comb,
        ser_registers: ser_reg,
        register_observability,
        obs,
        elw_size,
        elws,
        phi,
        engine,
    })
}

/// The combinational gate driving a register (walking through register
/// chains).
///
/// # Panics
///
/// Panics if the register is part of a register-only loop (rejected by
/// [`RetimeGraph::from_circuit`] beforehand).
pub fn register_driver(circuit: &Circuit, reg: GateId) -> GateId {
    let mut cur = circuit.gate(reg).fanins()[0];
    let mut steps = 0;
    while circuit.gate(cur).kind() == GateKind::Dff {
        cur = circuit.gate(cur).fanins()[0];
        steps += 1;
        assert!(steps <= circuit.len(), "register-only loop");
    }
    cur
}

/// Per-vertex observabilities of the retiming graph (host gets 1.0:
/// a register on a host edge holds an I/O value assumed fully
/// observable), used to form the optimizer's `b` coefficients.
pub fn vertex_observabilities(
    circuit: &Circuit,
    graph: &RetimeGraph,
    observability: &Observability,
) -> Vec<f64> {
    let mut out = vec![1.0; graph.num_vertices()];
    for v in graph.vertices() {
        let gate = graph.gate_of(v).expect("non-host vertex");
        out[v.index()] = observability.obs(gate);
    }
    let _ = circuit;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn report_shares_sum() {
        let c = samples::s27_like();
        let rep = analyze(&c, &SerConfig::small(20)).unwrap();
        assert!((rep.ser - (rep.ser_combinational + rep.ser_registers)).abs() < 1e-15);
        assert!(rep.ser > 0.0);
    }

    #[test]
    fn timing_masking_never_increases_ser() {
        // |ELW| <= Φ for every gate, so eq. (4) <= eq. (1).
        let c = samples::s27_like();
        let rep = analyze(&c, &SerConfig::small(30)).unwrap();
        assert!(rep.ser <= rep.ser_logic_only + 1e-12);
        for (id, _) in c.iter() {
            assert!(rep.elw_size[id.index()] <= rep.phi + 2, "gate {id}");
        }
    }

    #[test]
    fn larger_phi_dilutes_timing_windows() {
        // The latching window has fixed width (T_s + T_h + …); a slower
        // clock makes |ELW|/Φ smaller, so SER drops.
        let c = samples::s27_like();
        let fast = analyze(&c, &SerConfig::small(20)).unwrap();
        let slow = analyze(&c, &SerConfig::small(200)).unwrap();
        assert!(slow.ser < fast.ser);
        // Logic-only SER is Φ-independent.
        assert!((slow.ser_logic_only - fast.ser_logic_only).abs() < 1e-15);
    }

    #[test]
    fn register_observability_matches_driver() {
        let c = samples::s27_like();
        let rep = analyze(&c, &SerConfig::small(20)).unwrap();
        for &q in c.registers() {
            let d = register_driver(&c, q);
            assert_eq!(rep.obs[q.index()], rep.obs[d.index()]);
        }
    }

    #[test]
    fn register_chain_driver_resolution() {
        let mut b = netlist::CircuitBuilder::new("chain");
        b.input("a");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.dff("q1", "x").unwrap();
        b.dff("q2", "q1").unwrap();
        b.gate("y", GateKind::Not, &["q2"]).unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        assert_eq!(
            register_driver(&c, c.find("q2").unwrap()),
            c.find("x").unwrap()
        );
    }

    #[test]
    fn deterministic_reports() {
        let c = samples::fig1_like();
        let a = analyze(&c, &SerConfig::small(25)).unwrap();
        let b = analyze(&c, &SerConfig::small(25)).unwrap();
        assert_eq!(a.ser, b.ser);
        assert_eq!(a.obs, b.obs);
    }

    #[test]
    fn vertex_observabilities_cover_graph() {
        let c = samples::s27_like();
        let cfg = SerConfig::small(20);
        let trace = FrameTrace::simulate(&c, cfg.sim);
        let o = Observability::compute(&c, &trace);
        let g = RetimeGraph::from_circuit(&c, &cfg.delays).unwrap();
        let vo = vertex_observabilities(&c, &g, &o);
        assert_eq!(vo.len(), g.num_vertices());
        assert_eq!(vo[0], 1.0, "host");
        for v in g.vertices() {
            assert!((0.0..=1.0).contains(&vo[v.index()]));
        }
    }
}
