//! Bit-parallel signal signatures: `K` simulation vectors packed into
//! `u64` words, the representation behind the signature-based SER
//! analysis of Krishnaswamy et al. (refs \[11\], \[21\] of the paper).

use netlist::rng::Xoshiro256;
use netlist::GateKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of `Signature` heap allocations (constructors
/// and clones). The arena engine exists to drive this to ~zero on the
/// hot paths; `bench-ser` reports it per engine run.
static SIG_ALLOCS: AtomicU64 = AtomicU64::new(0);

fn note_alloc() {
    SIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Number of [`Signature`] heap allocations since process start
/// (constructors and clones; `clone_from` into existing capacity does
/// not count). Monotonic — benchmark deltas, don't reset.
pub fn signature_allocs() -> u64 {
    SIG_ALLOCS.load(Ordering::Relaxed)
}

/// A packed vector of `K` simulation bits.
///
/// # Examples
///
/// ```
/// use ser_engine::Signature;
/// let a = Signature::ones(128);
/// let b = Signature::zeros(128);
/// assert_eq!(a.count_ones(), 128);
/// assert_eq!(a.and(&b).count_ones(), 0);
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    words: Vec<u64>,
    bits: usize,
}

impl Clone for Signature {
    fn clone(&self) -> Self {
        note_alloc();
        Self {
            words: self.words.clone(),
            bits: self.bits,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Reuses the existing word buffer when capacities allow, so
        // this is not counted as a fresh allocation.
        self.words.clone_from(&source.words);
        self.bits = source.bits;
    }
}

impl Signature {
    /// All-zero signature of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a positive multiple of 64 (keeping every
    /// word fully populated removes all masking corner cases).
    pub fn zeros(bits: usize) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(64),
            "bits must be a positive multiple of 64"
        );
        note_alloc();
        Self {
            words: vec![0; bits / 64],
            bits,
        }
    }

    /// Builds a signature from raw words (one bit per vector, low bit
    /// of word 0 is vector 0).
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn from_words(words: Vec<u64>) -> Self {
        assert!(!words.is_empty(), "signature needs at least one word");
        note_alloc();
        let bits = words.len() * 64;
        Self { words, bits }
    }

    /// All-one signature.
    ///
    /// # Panics
    ///
    /// Same as [`Signature::zeros`].
    pub fn ones(bits: usize) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(64),
            "bits must be a positive multiple of 64"
        );
        note_alloc();
        Self {
            words: vec![u64::MAX; bits / 64],
            bits,
        }
    }

    /// Uniformly random signature.
    ///
    /// # Panics
    ///
    /// Same as [`Signature::zeros`].
    pub fn random(bits: usize, rng: &mut Xoshiro256) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(64),
            "bits must be a positive multiple of 64"
        );
        note_alloc();
        Self {
            words: (0..bits / 64).map(|_| rng.next_u64()).collect(),
            bits,
        }
    }

    /// Number of bits (`K`).
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the signature has zero bits (never true for constructed
    /// signatures; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fraction of set bits.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.bits as f64
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets one bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.bits);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Bitwise AND.
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a ^ b)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        note_alloc();
        Self {
            words: self.words.iter().map(|w| !w).collect(),
            bits: self.bits,
        }
    }

    /// In-place OR (the hot operation of ODC accumulation).
    pub fn or_assign(&mut self, other: &Self) {
        debug_assert_eq!(self.bits, other.bits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.bits, other.bits, "signature width mismatch");
        note_alloc();
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            bits: self.bits,
        }
    }

    /// Raw words (low bit of word 0 is vector 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig[{} bits, {} ones]", self.bits, self.count_ones())
    }
}

/// Evaluates a gate function over fanin signatures.
///
/// # Panics
///
/// Panics if the fanin count is outside the gate kind's arity, or on a
/// width mismatch.
pub fn eval_gate(kind: GateKind, fanins: &[&Signature], bits: usize) -> Signature {
    let (lo, hi) = kind.arity();
    assert!(
        fanins.len() >= lo && fanins.len() <= hi,
        "{kind} got {} fanins",
        fanins.len()
    );
    match kind {
        GateKind::Input => Signature::zeros(bits),
        GateKind::Const0 => Signature::zeros(bits),
        GateKind::Const1 => Signature::ones(bits),
        GateKind::Output | GateKind::Buf | GateKind::Dff => fanins[0].clone(),
        GateKind::Not => fanins[0].not(),
        GateKind::And => fold(fanins, bits, true, |a, b| a & b),
        GateKind::Nand => fold(fanins, bits, true, |a, b| a & b).not(),
        GateKind::Or => fold(fanins, bits, false, |a, b| a | b),
        GateKind::Nor => fold(fanins, bits, false, |a, b| a | b).not(),
        GateKind::Xor => fold(fanins, bits, false, |a, b| a ^ b),
        GateKind::Xnor => fold(fanins, bits, false, |a, b| a ^ b).not(),
        GateKind::Mux => {
            let sel = fanins[0];
            let a = fanins[1];
            let b = fanins[2];
            // sel ? b : a
            sel.and(b).or(&sel.not().and(a))
        }
    }
}

/// Evaluates a gate function over fanin word slices, writing into
/// `out` — the allocation-free kernel behind the arena engine. All
/// slices must have equal length; fanin arity is the caller's
/// responsibility (the circuit builder validates it at construction).
pub(crate) fn eval_gate_words(kind: GateKind, fanins: &[&[u64]], out: &mut [u64]) {
    match kind {
        GateKind::Input | GateKind::Const0 => out.fill(0),
        GateKind::Const1 => out.fill(u64::MAX),
        GateKind::Output | GateKind::Buf | GateKind::Dff => out.copy_from_slice(fanins[0]),
        GateKind::Not => {
            for (o, a) in out.iter_mut().zip(fanins[0]) {
                *o = !a;
            }
        }
        GateKind::And => fold_words(fanins, out, u64::MAX, false, |a, b| a & b),
        GateKind::Nand => fold_words(fanins, out, u64::MAX, true, |a, b| a & b),
        GateKind::Or => fold_words(fanins, out, 0, false, |a, b| a | b),
        GateKind::Nor => fold_words(fanins, out, 0, true, |a, b| a | b),
        GateKind::Xor => fold_words(fanins, out, 0, false, |a, b| a ^ b),
        GateKind::Xnor => fold_words(fanins, out, 0, true, |a, b| a ^ b),
        GateKind::Mux => {
            let (sel, a, b) = (fanins[0], fanins[1], fanins[2]);
            for (w, o) in out.iter_mut().enumerate() {
                *o = (sel[w] & b[w]) | (!sel[w] & a[w]);
            }
        }
    }
}

fn fold_words(
    fanins: &[&[u64]],
    out: &mut [u64],
    identity: u64,
    invert: bool,
    f: impl Fn(u64, u64) -> u64 + Copy,
) {
    match fanins.split_first() {
        None => out.fill(if invert { !identity } else { identity }),
        Some((first, rest)) => {
            out.copy_from_slice(first);
            for fanin in rest {
                for (o, b) in out.iter_mut().zip(*fanin) {
                    *o = f(*o, *b);
                }
            }
            if invert {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
    }
}

/// Evaluates one word of a gate function over `(words, flip)` fanins,
/// where `flip` complements that fanin — the kernel of the fused ODC
/// sensitivity computation (re-evaluate a gate with one input signal
/// inverted, without materializing the flipped signature).
pub(crate) fn eval_gate_word(kind: GateKind, fanins: &[(&[u64], bool)], w: usize) -> u64 {
    #[inline]
    fn read(fanins: &[(&[u64], bool)], i: usize, w: usize) -> u64 {
        let (words, flip) = fanins[i];
        if flip {
            !words[w]
        } else {
            words[w]
        }
    }
    match kind {
        GateKind::Input | GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Output | GateKind::Buf | GateKind::Dff => read(fanins, 0, w),
        GateKind::Not => !read(fanins, 0, w),
        GateKind::And => (0..fanins.len()).fold(u64::MAX, |acc, i| acc & read(fanins, i, w)),
        GateKind::Nand => !(0..fanins.len()).fold(u64::MAX, |acc, i| acc & read(fanins, i, w)),
        GateKind::Or => (0..fanins.len()).fold(0, |acc, i| acc | read(fanins, i, w)),
        GateKind::Nor => !(0..fanins.len()).fold(0, |acc, i| acc | read(fanins, i, w)),
        GateKind::Xor => (0..fanins.len()).fold(0, |acc, i| acc ^ read(fanins, i, w)),
        GateKind::Xnor => !(0..fanins.len()).fold(0, |acc, i| acc ^ read(fanins, i, w)),
        GateKind::Mux => {
            let sel = read(fanins, 0, w);
            let a = read(fanins, 1, w);
            let b = read(fanins, 2, w);
            (sel & b) | (!sel & a)
        }
    }
}

/// All-ones when `flip` is set, zero otherwise — turns the per-fanin
/// complement of the ODC sensitivity evaluation into a branch-free XOR
/// mask that loops over whole signature rows can hoist.
#[inline]
fn flip_mask(flip: bool) -> u64 {
    (flip as u64).wrapping_neg()
}

/// Accumulates one fanout's ODC sensitivity contribution over a whole
/// signature row:
///
/// ```text
/// acc[w] |= h_odc[w] & (faulty(w) ^ h_val[w])
/// ```
///
/// where `faulty` re-evaluates the fanout gate with its `flip`-marked
/// fanins complemented — the batched (row-at-a-time) form of
/// [`eval_gate_word`]. The gate-kind dispatch is hoisted out of the
/// word loop and flips become XOR masks, so the common one-, two- and
/// three-fanin shapes compile to straight-line word loops the backend
/// can vectorize. `eval_gate_word` remains the per-word oracle: debug
/// builds re-derive every word and assert bit-identity in place.
///
/// All slices must have the same length (one block of a signature
/// row); fanin arity is validated by the circuit builder upstream.
pub(crate) fn accumulate_sensitivity(
    kind: GateKind,
    fanins: &[(&[u64], bool)],
    h_odc: &[u64],
    h_val: &[u64],
    acc: &mut [u64],
) {
    #[cfg(debug_assertions)]
    let before: Vec<u64> = acc.to_vec();
    match (kind, fanins) {
        (GateKind::Output | GateKind::Buf | GateKind::Dff, [(a, fa)]) => {
            let ma = flip_mask(*fa);
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & ((a[w] ^ ma) ^ h_val[w]);
            }
        }
        (GateKind::Not, [(a, fa)]) => {
            let ma = !flip_mask(*fa);
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & ((a[w] ^ ma) ^ h_val[w]);
            }
        }
        (GateKind::And, [(a, fa), (b, fb)]) => {
            let (ma, mb) = (flip_mask(*fa), flip_mask(*fb));
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & (((a[w] ^ ma) & (b[w] ^ mb)) ^ h_val[w]);
            }
        }
        (GateKind::Nand, [(a, fa), (b, fb)]) => {
            let (ma, mb) = (flip_mask(*fa), flip_mask(*fb));
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & (!((a[w] ^ ma) & (b[w] ^ mb)) ^ h_val[w]);
            }
        }
        (GateKind::Or, [(a, fa), (b, fb)]) => {
            let (ma, mb) = (flip_mask(*fa), flip_mask(*fb));
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & (((a[w] ^ ma) | (b[w] ^ mb)) ^ h_val[w]);
            }
        }
        (GateKind::Nor, [(a, fa), (b, fb)]) => {
            let (ma, mb) = (flip_mask(*fa), flip_mask(*fb));
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & (!((a[w] ^ ma) | (b[w] ^ mb)) ^ h_val[w]);
            }
        }
        (GateKind::Xor, [(a, fa), (b, fb)]) => {
            let m = flip_mask(*fa) ^ flip_mask(*fb);
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & ((a[w] ^ b[w] ^ m) ^ h_val[w]);
            }
        }
        (GateKind::Xnor, [(a, fa), (b, fb)]) => {
            let m = !(flip_mask(*fa) ^ flip_mask(*fb));
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & ((a[w] ^ b[w] ^ m) ^ h_val[w]);
            }
        }
        (GateKind::Mux, [(s, fs), (a, fa), (b, fb)]) => {
            let (ms, ma, mb) = (flip_mask(*fs), flip_mask(*fa), flip_mask(*fb));
            for (w, acc_w) in acc.iter_mut().enumerate() {
                let sel = s[w] ^ ms;
                let v = (sel & (b[w] ^ mb)) | (!sel & (a[w] ^ ma));
                *acc_w |= h_odc[w] & (v ^ h_val[w]);
            }
        }
        // Uncommon arities (wide ANDs/ORs/XORs, degenerate shapes):
        // fall back to the per-word oracle itself.
        _ => {
            for (w, acc_w) in acc.iter_mut().enumerate() {
                *acc_w |= h_odc[w] & (eval_gate_word(kind, fanins, w) ^ h_val[w]);
            }
        }
    }
    #[cfg(debug_assertions)]
    for w in 0..acc.len() {
        let oracle = h_odc[w] & (eval_gate_word(kind, fanins, w) ^ h_val[w]);
        debug_assert_eq!(
            acc[w],
            before[w] | oracle,
            "batched sensitivity kernel diverged from the word oracle ({kind}, word {w})"
        );
    }
}

fn fold(
    fanins: &[&Signature],
    bits: usize,
    identity_ones: bool,
    f: impl Fn(u64, u64) -> u64 + Copy,
) -> Signature {
    let mut acc = if identity_ones {
        Signature::ones(bits)
    } else {
        Signature::zeros(bits)
    };
    for s in fanins {
        assert_eq!(s.len(), bits, "signature width mismatch");
        for (a, b) in acc.words.iter_mut().zip(&s.words) {
            *a = f(*a, *b);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counting() {
        assert_eq!(Signature::zeros(192).count_ones(), 0);
        assert_eq!(Signature::ones(192).count_ones(), 192);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let s = Signature::random(1024, &mut rng);
        let ones = s.count_ones();
        assert!((384..640).contains(&ones), "density far from 1/2: {ones}");
    }

    #[test]
    fn bit_addressing_round_trip() {
        let mut s = Signature::zeros(128);
        s.set_bit(0, true);
        s.set_bit(64, true);
        s.set_bit(127, true);
        assert!(s.bit(0) && s.bit(64) && s.bit(127));
        assert!(!s.bit(1) && !s.bit(65));
        assert_eq!(s.count_ones(), 3);
        s.set_bit(64, false);
        assert!(!s.bit(64));
    }

    #[test]
    fn boolean_identities() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let a = Signature::random(256, &mut rng);
        let b = Signature::random(256, &mut rng);
        assert_eq!(a.xor(&a).count_ones(), 0);
        assert_eq!(a.and(&a), a);
        assert_eq!(a.or(&a.not()).count_ones(), 256);
        // De Morgan
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
    }

    #[test]
    fn eval_matches_bool_semantics() {
        use GateKind::*;
        let bits = 64;
        let mut rng = Xoshiro256::seed_from_u64(3);
        let sigs: Vec<Signature> = (0..3).map(|_| Signature::random(bits, &mut rng)).collect();
        let refs: Vec<&Signature> = sigs.iter().collect();
        for kind in [And, Nand, Or, Nor, Xor, Xnor, Mux] {
            let out = eval_gate(kind, &refs, bits);
            for i in 0..bits {
                let ins: Vec<bool> = sigs.iter().map(|s| s.bit(i)).collect();
                assert_eq!(out.bit(i), kind.eval_bool(&ins), "{kind} bit {i}");
            }
        }
        let out = eval_gate(Not, &refs[..1], bits);
        for i in 0..bits {
            assert_eq!(out.bit(i), !sigs[0].bit(i));
        }
    }

    #[test]
    fn or_assign_accumulates() {
        let mut acc = Signature::zeros(128);
        let mut one = Signature::zeros(128);
        one.set_bit(77, true);
        acc.or_assign(&one);
        assert!(acc.bit(77));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn non_word_width_panics() {
        Signature::zeros(100);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = Signature::zeros(64);
        let b = Signature::zeros(128);
        let _ = a.and(&b);
    }

    #[test]
    fn word_kernels_match_signature_eval() {
        use GateKind::*;
        let bits = 192;
        let mut rng = Xoshiro256::seed_from_u64(9);
        let sigs: Vec<Signature> = (0..3).map(|_| Signature::random(bits, &mut rng)).collect();
        let refs: Vec<&Signature> = sigs.iter().collect();
        let word_refs: Vec<&[u64]> = sigs.iter().map(|s| s.as_words()).collect();
        for kind in [And, Nand, Or, Nor, Xor, Xnor, Mux, Not, Buf] {
            let n = match kind {
                Mux => 3,
                Not | Buf => 1,
                _ => 3,
            };
            let expect = eval_gate(kind, &refs[..n], bits);
            let mut out = vec![0u64; bits / 64];
            eval_gate_words(kind, &word_refs[..n], &mut out);
            assert_eq!(out.as_slice(), expect.as_words(), "{kind} slice kernel");
            let flat: Vec<(&[u64], bool)> = word_refs[..n].iter().map(|&ws| (ws, false)).collect();
            for w in 0..bits / 64 {
                assert_eq!(
                    eval_gate_word(kind, &flat, w),
                    expect.as_words()[w],
                    "{kind} word kernel at {w}"
                );
            }
        }
    }

    #[test]
    fn flipped_word_kernel_matches_explicit_not() {
        let bits = 128;
        let mut rng = Xoshiro256::seed_from_u64(10);
        let a = Signature::random(bits, &mut rng);
        let b = Signature::random(bits, &mut rng);
        let expect = eval_gate(GateKind::And, &[&a.not(), &b], bits);
        let flat = [(a.as_words(), true), (b.as_words(), false)];
        for w in 0..bits / 64 {
            assert_eq!(
                eval_gate_word(GateKind::And, &flat, w),
                expect.as_words()[w]
            );
        }
    }

    #[test]
    fn batched_sensitivity_matches_word_oracle() {
        use GateKind::*;
        let bits = 192;
        let mut rng = Xoshiro256::seed_from_u64(11);
        let sigs: Vec<Signature> = (0..3).map(|_| Signature::random(bits, &mut rng)).collect();
        let h_odc = Signature::random(bits, &mut rng);
        let h_val = Signature::random(bits, &mut rng);
        let start = Signature::random(bits, &mut rng);
        for kind in [And, Nand, Or, Nor, Xor, Xnor, Mux, Not, Buf, Output] {
            let n = match kind {
                Not | Buf | Output => 1,
                _ => 3, // Mux is ternary; the folds exercise the n-ary fallback
            };
            // Every flip combination of the fanins.
            for flips in 0..(1u32 << n) {
                let pairs: Vec<(&[u64], bool)> = (0..n)
                    .map(|i| (sigs[i].as_words(), flips >> i & 1 == 1))
                    .collect();
                let mut acc = start.as_words().to_vec();
                accumulate_sensitivity(kind, &pairs, h_odc.as_words(), h_val.as_words(), &mut acc);
                for (w, &got) in acc.iter().enumerate() {
                    let oracle = h_odc.as_words()[w]
                        & (eval_gate_word(kind, &pairs, w) ^ h_val.as_words()[w]);
                    assert_eq!(
                        got,
                        start.as_words()[w] | oracle,
                        "{kind} flips={flips:b} word {w}"
                    );
                }
            }
        }
        // The binary specializations too (the loop above hits the
        // ternary fallback for And/Or/...).
        for kind in [And, Nand, Or, Nor, Xor, Xnor] {
            for flips in 0..4u32 {
                let pairs: Vec<(&[u64], bool)> = (0..2)
                    .map(|i| (sigs[i].as_words(), flips >> i & 1 == 1))
                    .collect();
                let mut acc = start.as_words().to_vec();
                accumulate_sensitivity(kind, &pairs, h_odc.as_words(), h_val.as_words(), &mut acc);
                for (w, &got) in acc.iter().enumerate() {
                    let oracle = h_odc.as_words()[w]
                        & (eval_gate_word(kind, &pairs, w) ^ h_val.as_words()[w]);
                    assert_eq!(
                        got,
                        start.as_words()[w] | oracle,
                        "{kind} binary flips={flips:b} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn allocation_counter_moves() {
        let before = signature_allocs();
        let s = Signature::zeros(128);
        let _c = s.clone();
        let _n = s.not();
        assert!(signature_allocs() >= before + 3);
    }

    #[test]
    fn from_words_round_trip() {
        let s = Signature::from_words(vec![0xDEAD_BEEF, u64::MAX]);
        assert_eq!(s.len(), 128);
        assert_eq!(s.as_words(), &[0xDEAD_BEEF, u64::MAX]);
    }
}
