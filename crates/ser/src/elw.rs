//! Error-latching windows (ELW): exact interval-set computation of the
//! paper's eq. (3), the timing-masking half of the SER model.
//!
//! `ELW(g)` is the set of time points (within a clock cycle, measured
//! at `g`'s output) at which a transient glitch, if logically
//! propagated, arrives in some downstream register's latching window
//! `[Φ−T_s, Φ+T_h]`. It is computed backward from register inputs and
//! primary outputs:
//!
//! ```text
//! ELW(g) = [Φ−T_s, Φ+T_h]                       if g ∈ RO
//!          ∪_{f ∈ fanout(g)} (ELW(f) − d(f))    otherwise
//! ```
//!
//! and may consist of multiple disjoint intervals.

use retime::timing::{is_combinational_edge, zero_weight_topo};
use retime::{EdgeId, ElwParams, RetimeGraph, Retiming, VertexId};
use std::fmt;

/// A set of disjoint, sorted, half-open-free (closed) intervals on the
/// integer time axis.
///
/// # Examples
///
/// ```
/// use ser_engine::IntervalSet;
/// let mut s = IntervalSet::new();
/// s.insert(10, 12);
/// s.insert(15, 18);
/// s.insert(11, 16); // bridges the gap
/// assert_eq!(s.total_length(), 8);
/// assert_eq!(s.intervals(), &[(10, 18)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct IntervalSet {
    intervals: Vec<(i64, i64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn of(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "interval bounds out of order");
        Self {
            intervals: vec![(lo, hi)],
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The disjoint intervals in ascending order.
    pub fn intervals(&self) -> &[(i64, i64)] {
        &self.intervals
    }

    /// `Σᵢ (Rᵢ − Lᵢ)` — the paper's `|ELW(g)|`.
    pub fn total_length(&self) -> i64 {
        self.intervals.iter().map(|(l, r)| r - l).sum()
    }

    /// The smallest left endpoint (`L₁` of eq. (2)).
    pub fn left(&self) -> Option<i64> {
        self.intervals.first().map(|&(l, _)| l)
    }

    /// The largest right endpoint (`R_l` of eq. (2)).
    pub fn right(&self) -> Option<i64> {
        self.intervals.last().map(|&(_, r)| r)
    }

    /// Inserts `[lo, hi]`, merging overlapping or touching intervals.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn insert(&mut self, lo: i64, hi: i64) {
        assert!(lo <= hi, "interval bounds out of order");
        let start = self.intervals.partition_point(|&(_, r)| r < lo);
        let end = self.intervals.partition_point(|&(l, _)| l <= hi);
        if start == end {
            self.intervals.insert(start, (lo, hi));
        } else {
            let merged_lo = lo.min(self.intervals[start].0);
            let merged_hi = hi.max(self.intervals[end - 1].1);
            self.intervals.drain(start..end);
            self.intervals.insert(start, (merged_lo, merged_hi));
        }
    }

    /// Unions another set into this one.
    pub fn union_assign(&mut self, other: &Self) {
        for &(l, r) in &other.intervals {
            self.insert(l, r);
        }
    }

    /// The set shifted by `delta` (`ELW(f) − d(f)` uses `delta = −d`).
    pub fn shifted(&self, delta: i64) -> Self {
        Self {
            intervals: self
                .intervals
                .iter()
                .map(|&(l, r)| (l + delta, r + delta))
                .collect(),
        }
    }

    /// Whether `t` lies in the set.
    pub fn contains(&self, t: i64) -> bool {
        self.intervals
            .binary_search_by(|&(l, r)| {
                if t < l {
                    std::cmp::Ordering::Greater
                } else if t > r {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of disjoint intervals (`l` of eq. (2)).
    pub fn count(&self) -> usize {
        self.intervals.len()
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        let parts: Vec<String> = self
            .intervals
            .iter()
            .map(|(l, r)| format!("[{l}, {r}]"))
            .collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

/// Exact per-vertex error-latching windows of a retimed graph
/// (eq. (3) with true interval unions, as used by the paper when
/// *measuring* SER — the optimizer uses only the `L`/`R` bounds).
///
/// Returns one [`IntervalSet`] per vertex (empty for the host and for
/// vertices from which no register/PO is reachable).
///
/// # Errors
///
/// Returns [`retime::RetimeError::ZeroWeightCycle`] for invalid
/// retimings.
pub fn compute_elws(
    graph: &RetimeGraph,
    r: &Retiming,
    params: ElwParams,
) -> Result<Vec<IntervalSet>, retime::RetimeError> {
    let order = zero_weight_topo(graph, r)?;
    let mut elw: Vec<IntervalSet> = vec![IntervalSet::new(); graph.num_vertices()];
    for &u in order.iter().rev() {
        let mut acc = IntervalSet::new();
        let mut is_ro = false;
        for &e in graph.out_edges(u) {
            let edge = graph.edge(e);
            if edge.to.is_host() || graph.retimed_weight(e, r) > 0 {
                is_ro = true;
            } else if is_combinational_edge(graph, e, r) {
                let f = edge.to;
                acc.union_assign(&elw[f.index()].shifted(-graph.delay(f)));
            }
        }
        if is_ro {
            acc.insert(params.window_left(), params.window_right());
        }
        elw[u.index()] = acc;
    }
    Ok(elw)
}

/// Checks Theorem 1 of the paper on a concrete instance: the `L`/`R`
/// labels bound every vertex's exact ELW. Returns the first violating
/// vertex, if any (used by tests; `None` means the theorem holds).
pub fn check_theorem1(
    graph: &RetimeGraph,
    r: &Retiming,
    params: ElwParams,
) -> Result<Option<VertexId>, retime::RetimeError> {
    let labels = retime::LrLabels::compute(graph, r, params)?;
    let elws = compute_elws(graph, r, params)?;
    for v in graph.vertices() {
        let set = &elws[v.index()];
        match (labels.l(v), labels.r(v), set.left(), set.right()) {
            (Some(l), Some(rr), Some(sl), Some(sr)) => {
                if l != sl || rr != sr {
                    return Ok(Some(v));
                }
            }
            (None, None, None, None) => {}
            _ => return Ok(Some(v)),
        }
    }
    Ok(None)
}

/// Marks every edge `e = (u, v)` whose retimed weight is positive with
/// the ELW-derived shortest-path value `d(v) + Φ + T_h − R(v)`; helper
/// for diagnostics and tests.
pub fn registered_edge_short_paths(
    graph: &RetimeGraph,
    r: &Retiming,
    params: ElwParams,
) -> Result<Vec<(EdgeId, i64)>, retime::RetimeError> {
    let labels = retime::LrLabels::compute(graph, r, params)?;
    let mut out = Vec::new();
    for (i, edge) in graph.edges().iter().enumerate() {
        let e = EdgeId::new(i);
        if edge.to.is_host() || graph.retimed_weight(e, r) <= 0 {
            continue;
        }
        if let Some(sp) = labels.short_path(graph, edge.to) {
            out.push((e, sp));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, DelayModel};

    #[test]
    fn interval_insert_and_merge() {
        let mut s = IntervalSet::new();
        s.insert(5, 7);
        s.insert(1, 2);
        s.insert(10, 12);
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_length(), 2 + 1 + 2);
        s.insert(2, 5); // touches both [1,2] and [5,7]
        assert_eq!(s.intervals(), &[(1, 7), (10, 12)]);
        s.insert(0, 20);
        assert_eq!(s.intervals(), &[(0, 20)]);
    }

    #[test]
    fn interval_contains_and_shift() {
        let s = IntervalSet::of(10, 14).shifted(-4);
        assert!(s.contains(6) && s.contains(10));
        assert!(!s.contains(5) && !s.contains(11));
        assert_eq!(s.left(), Some(6));
        assert_eq!(s.right(), Some(10));
    }

    #[test]
    fn touching_intervals_merge() {
        let mut s = IntervalSet::new();
        s.insert(0, 5);
        s.insert(5, 9);
        assert_eq!(s.intervals(), &[(0, 9)]);
    }

    #[test]
    fn elw_of_register_driver_is_latching_window() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let params = ElwParams::with_phi(10);
        let elws = compute_elws(&g, &r, params).unwrap();
        let s2 = g.vertex_of(c.find("s2").unwrap()).unwrap();
        assert_eq!(elws[s2.index()].intervals(), &[(10, 12)]);
    }

    #[test]
    fn elw_unions_disjoint_windows() {
        // A gate feeding both a register directly and a long path to a
        // second register gets two disjoint windows.
        let mut b = netlist::CircuitBuilder::new("split");
        b.input("a");
        b.gate("g", netlist::GateKind::Not, &["a"]).unwrap();
        b.dff("q1", "g").unwrap();
        b.gate("x1", netlist::GateKind::Not, &["g"]).unwrap();
        b.gate("x2", netlist::GateKind::Not, &["x1"]).unwrap();
        b.gate("x3", netlist::GateKind::Not, &["x2"]).unwrap();
        b.dff("q2", "x3").unwrap();
        b.gate("y", netlist::GateKind::And, &["q1", "q2"]).unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let params = ElwParams::with_phi(10); // window [10, 12]
        let elws = compute_elws(&g, &r, params).unwrap();
        let vg = g.vertex_of(c.find("g").unwrap()).unwrap();
        // Direct: [10,12]; via x1..x3 (3 unit delays): [7,9]. Disjoint.
        assert_eq!(elws[vg.index()].intervals(), &[(7, 9), (10, 12)]);
        assert_eq!(elws[vg.index()].total_length(), 4);
    }

    #[test]
    fn theorem1_holds_on_samples() {
        for c in [
            samples::s27_like(),
            samples::pipeline(9, 3),
            samples::fig1_like(),
        ] {
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            let r = Retiming::zero(&g);
            let params = ElwParams::with_phi(200);
            assert_eq!(
                check_theorem1(&g, &r, params).unwrap(),
                None,
                "{}",
                c.name()
            );
        }
    }

    #[test]
    fn theorem1_holds_on_generated_circuits() {
        for seed in 0..4 {
            let c = netlist::generator::GeneratorConfig::new("t1", seed)
                .gates(150)
                .registers(25)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            let r = Retiming::zero(&g);
            let phi = retime::timing::clock_period(&g, &r).unwrap() + 2;
            let params = ElwParams::with_phi(phi);
            assert_eq!(check_theorem1(&g, &r, params).unwrap(), None, "seed {seed}");
        }
    }

    #[test]
    fn short_paths_match_labels() {
        let c = samples::pipeline(9, 3);
        let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
        let r = Retiming::zero(&g);
        let sps = registered_edge_short_paths(&g, &r, ElwParams::with_phi(10)).unwrap();
        assert!(!sps.is_empty());
        for (_, sp) in sps {
            assert_eq!(sp, 3, "balanced 3-stage segments");
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_interval_panics() {
        IntervalSet::of(3, 1);
    }
}
