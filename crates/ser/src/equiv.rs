//! Bounded sequential equivalence checking between a circuit and its
//! retimed version.
//!
//! Retiming preserves functionality in the steady state: both circuits
//! compute the same primary-output streams once the effect of their
//! (different) initial register states has flushed out. Total I/O
//! latency is also preserved — every host-to-host path keeps its
//! register count under any retiming — so the streams align with zero
//! lag. This module drives both circuits with the same bit-parallel
//! random stimulus and compares the output streams cycle by cycle
//! after a warm-up, which is the standard simulation-based sanity
//! check for retiming engines (full sequential equivalence checking is
//! PSPACE-complete; a bounded randomized check is what production
//! retimers ship).

use netlist::rng::Xoshiro256;
use netlist::{Circuit, GateId, GateKind, Levelization};

use crate::signature::Signature;
use crate::sim::{eval_slots, EvalPlan};

/// Parameters of the bounded check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EquivConfig {
    /// Parallel random vectors per cycle (multiple of 64).
    pub num_vectors: usize,
    /// Cycles compared after the warm-up.
    pub cycles: usize,
    /// Warm-up cycles excluded from comparison (must exceed the
    /// deepest register chain so initial-state differences flush).
    pub warmup: usize,
    /// Stimulus seed.
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        Self {
            num_vectors: 256,
            cycles: 48,
            warmup: 16,
            seed: 0x5EC_0513,
        }
    }
}

/// A detected output mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Cycle index (0-based, counted after the warm-up).
    pub cycle: usize,
    /// Output position (index into `outputs()` order).
    pub output: usize,
    /// Name of the observed signal in the first circuit.
    pub name: String,
    /// Number of differing vectors in that cycle.
    pub differing_vectors: u32,
}

/// Result of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No mismatch across all compared cycles.
    Equivalent,
    /// The circuits disagree; the first mismatch is reported.
    Mismatch(Mismatch),
    /// The circuits cannot be compared (different I/O counts).
    IncompatibleInterface {
        /// (inputs, outputs) of the first circuit.
        left: (usize, usize),
        /// (inputs, outputs) of the second circuit.
        right: (usize, usize),
    },
}

impl EquivResult {
    /// Whether the check passed.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Runs the bounded equivalence check. Inputs are matched by position
/// (`inputs()` order) and outputs likewise — the order [`retime::apply`]
/// preserves.
pub fn check_equivalence(a: &Circuit, b: &Circuit, config: EquivConfig) -> EquivResult {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return EquivResult::IncompatibleInterface {
            left: (a.inputs().len(), a.outputs().len()),
            right: (b.inputs().len(), b.outputs().len()),
        };
    }
    let bits = config.num_vectors;
    let mut rng = Xoshiro256::seed_from_u64(config.seed);
    let mut sim_a = SimState::new(a, bits);
    let mut sim_b = SimState::new(b, bits);

    for cycle in 0..config.warmup + config.cycles {
        let stimulus: Vec<Signature> = (0..a.inputs().len())
            .map(|_| Signature::random(bits, &mut rng))
            .collect();
        sim_a.step(a, &stimulus);
        sim_b.step(b, &stimulus);
        if cycle < config.warmup {
            continue;
        }
        for (k, (&pa, &pb)) in a.outputs().iter().zip(b.outputs()).enumerate() {
            let va = sim_a.value(pa);
            let vb = sim_b.value(pb);
            let diff: u32 = va.iter().zip(vb).map(|(x, y)| (x ^ y).count_ones()).sum();
            if diff > 0 {
                return EquivResult::Mismatch(Mismatch {
                    cycle: cycle - config.warmup,
                    output: k,
                    name: a.gate(pa).name().to_string(),
                    differing_vectors: diff,
                });
            }
        }
    }
    EquivResult::Equivalent
}

/// Minimal per-circuit simulation state (registers reset to zero, so
/// the check is deterministic across runs). Values live in one flat
/// `slots × words` buffer in levelization slot order, evaluated level
/// by level — no per-cycle `Signature` allocations.
struct SimState {
    levels: Levelization,
    plan: EvalPlan,
    frame: Vec<u64>,
    state: Vec<u64>,
    wps: usize,
}

impl SimState {
    fn new(circuit: &Circuit, bits: usize) -> Self {
        let levels = circuit.levelize();
        let plan = EvalPlan::new(circuit, &levels);
        let wps = bits / 64;
        Self {
            frame: vec![0u64; levels.num_gates() * wps],
            state: vec![0u64; circuit.registers().len() * wps],
            levels,
            plan,
            wps,
        }
    }

    fn step(&mut self, _circuit: &Circuit, stimulus: &[Signature]) {
        let wps = self.wps;
        let r = self.plan.num_registers;
        self.frame[..r * wps].copy_from_slice(&self.state);
        for (k, sig) in stimulus.iter().enumerate() {
            let s = r + k;
            self.frame[s * wps..(s + 1) * wps].copy_from_slice(sig.as_words());
        }
        for s in (r + self.plan.num_inputs)..self.plan.num_sources {
            let v = if self.plan.kinds[s] == GateKind::Const1 {
                u64::MAX
            } else {
                0
            };
            self.frame[s * wps..(s + 1) * wps].fill(v);
        }
        for l in 1..self.levels.num_levels() {
            let lr = self.levels.level_slots(l);
            let (prev, rest) = self.frame.split_at_mut(lr.start * wps);
            let cur = &mut rest[..(lr.end - lr.start) * wps];
            eval_slots(&self.plan, wps, prev, cur, lr.start);
        }
        for (i, &d) in self.plan.reg_d_slots.iter().enumerate() {
            self.state[i * wps..(i + 1) * wps].copy_from_slice(&self.frame[d * wps..(d + 1) * wps]);
        }
    }

    fn value(&self, gate: GateId) -> &[u64] {
        let s = self.levels.slot_of(gate);
        &self.frame[s * self.wps..(s + 1) * self.wps]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, CircuitBuilder, DelayModel};
    use retime::apply::apply_retiming;
    use retime::RetimeGraph;

    #[test]
    fn circuit_equals_itself() {
        let c = samples::s27_like();
        assert!(check_equivalence(&c, &c, EquivConfig::default()).is_equivalent());
    }

    #[test]
    fn min_period_retiming_is_equivalent() {
        // two_stage_loop is deliberately absent: its NAND feedback loop
        // has input patterns that never synchronize the state, so the
        // original and retimed circuits stay phase-shifted forever on
        // those vectors — the classical retiming initial-state caveat
        // this bounded check cannot (and should not) paper over.
        for (name, c) in [
            ("pipeline", samples::pipeline(9, 3)),
            ("s27", samples::s27_like()),
            ("fig1", samples::fig1_like()),
        ] {
            let g = RetimeGraph::from_circuit(&c, &DelayModel::unit()).unwrap();
            let res = retime::minperiod::min_period(&g).unwrap();
            let rebuilt = apply_retiming(&c, &g, &res.retiming).unwrap();
            let verdict = check_equivalence(&c, &rebuilt, EquivConfig::default());
            assert!(verdict.is_equivalent(), "{name}: {verdict:?}");
        }
    }

    #[test]
    fn generated_circuits_equivalent_after_min_period_retiming() {
        for seed in 0..4 {
            let c = netlist::generator::GeneratorConfig::new("eq", seed)
                .gates(120)
                .registers(30)
                .build();
            let g = RetimeGraph::from_circuit(&c, &DelayModel::default()).unwrap();
            let res = retime::minperiod::min_period(&g).unwrap();
            let rebuilt = apply_retiming(&c, &g, &res.retiming).unwrap();
            let verdict = check_equivalence(&c, &rebuilt, EquivConfig::default());
            assert!(verdict.is_equivalent(), "seed {seed}: {verdict:?}");
        }
    }

    #[test]
    fn mutated_circuit_detected() {
        let c = samples::s27_like();
        // Flip the PO driver (G17, fully observable); deeper gates like
        // G10 are logically masked in this circuit's steady state and a
        // mutation there is genuinely unobservable.
        let mut b = CircuitBuilder::new("mutant");
        for (_, gate) in c.iter() {
            match gate.kind() {
                netlist::GateKind::Input => {
                    b.input(gate.name());
                }
                netlist::GateKind::Output => {
                    let observed = c.gate(gate.fanins()[0]).name();
                    b.output(observed).unwrap();
                }
                netlist::GateKind::Dff => {
                    let d = c.gate(gate.fanins()[0]).name();
                    b.dff(gate.name(), d).unwrap();
                }
                kind => {
                    let fanins: Vec<&str> =
                        gate.fanins().iter().map(|&f| c.gate(f).name()).collect();
                    let kind = if gate.name() == "G17" {
                        netlist::GateKind::Buf
                    } else {
                        kind
                    };
                    b.gate(gate.name(), kind, &fanins).unwrap();
                }
            }
        }
        let mutant = b.build().unwrap();
        let verdict = check_equivalence(&c, &mutant, EquivConfig::default());
        assert!(!verdict.is_equivalent(), "mutation must be caught");
    }

    #[test]
    fn interface_mismatch_reported() {
        let a = samples::s27_like();
        let b = samples::pipeline(4, 2);
        assert!(matches!(
            check_equivalence(&a, &b, EquivConfig::default()),
            EquivResult::IncompatibleInterface { .. }
        ));
    }
}
