//! The [`SerEstimator`] trait: one front door over every SER engine.
//!
//! Four structurally independent estimators of the paper's eq. (4)
//! live in this workspace:
//!
//! | engine       | logic masking                         | crate      |
//! |--------------|---------------------------------------|------------|
//! | `analytic`   | backward ODC mask composition         | `ser`      |
//! | `propprob`   | propagation-probability products      | `ser`      |
//! | `exact`      | full `2^S` truth-table enumeration    | `ser`      |
//! | `montecarlo` | sampled fault-injection campaigns     | `faultsim` |
//!
//! They share the simulation substrate and the exact ELW timing factor
//! but approximate logic masking in unrelated ways, so agreement among
//! them is strong evidence against a shared modeling bug — the
//! three-way cross-check built on this trait (see
//! `faultsim::agreement`) is the workspace's first-class correctness
//! oracle. The first three implementations live here; the Monte-Carlo
//! implementation lives in `faultsim` (which depends on this crate).

use std::fmt;
use std::str::FromStr;

use netlist::{Circuit, GateId};

use crate::analysis::{analyze, SerConfig, SerReport};
use crate::exact::{exact_report, DEFAULT_MAX_SOURCE_BITS};
use crate::propprob::propprob_report;
use crate::sim::EngineReport;

/// Which estimation engine produced (or should produce) an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Backward ODC mask composition (the paper's analytic model).
    Analytic,
    /// Monte-Carlo fault-injection campaigns (`faultsim`).
    MonteCarlo,
    /// Propagation-probability products (Asadi & Tahoori style).
    PropProb,
    /// Exhaustive truth-table enumeration (small circuits only).
    Exact,
}

impl EngineKind {
    /// All engines, in canonical order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Analytic,
        EngineKind::MonteCarlo,
        EngineKind::PropProb,
        EngineKind::Exact,
    ];

    /// The canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Analytic => "analytic",
            EngineKind::MonteCarlo => "montecarlo",
            EngineKind::PropProb => "propprob",
            EngineKind::Exact => "exact",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(EngineKind::Analytic),
            "montecarlo" | "monte-carlo" | "mc" => Ok(EngineKind::MonteCarlo),
            "propprob" | "prop-prob" | "pp" => Ok(EngineKind::PropProb),
            "exact" => Ok(EngineKind::Exact),
            other => Err(format!(
                "unknown engine `{other}` (use analytic, montecarlo, propprob or exact)"
            )),
        }
    }
}

/// Why an estimator could not produce an estimate.
#[derive(Debug)]
pub enum EstimateError {
    /// The circuit cannot be modeled as a retiming graph.
    Retime(retime::RetimeError),
    /// Exhaustive enumeration would exceed the source-bit cap.
    TooLarge {
        /// `R + I·n` for the requested expansion.
        source_bits: usize,
        /// The configured cap.
        cap: u32,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::Retime(e) => write!(f, "{e}"),
            EstimateError::TooLarge { source_bits, cap } => write!(
                f,
                "exhaustive enumeration needs {source_bits} source bits \
                 (registers + inputs × frames), over the cap of {cap}; \
                 use a sampled engine or fewer frames"
            ),
        }
    }
}

impl std::error::Error for EstimateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimateError::Retime(e) => Some(e),
            EstimateError::TooLarge { .. } => None,
        }
    }
}

impl From<retime::RetimeError> for EstimateError {
    fn from(e: retime::RetimeError) -> Self {
        EstimateError::Retime(e)
    }
}

/// One engine's complete estimate of a circuit's SER, in a shape every
/// engine can fill: the scalar eq. (4) total, an optional sampling
/// confidence interval, and the per-gate quantities the agreement
/// oracle and the hardening advisor compare site by site.
#[derive(Debug, Clone)]
pub struct SerEstimate {
    /// Which engine produced this estimate.
    pub engine: EngineKind,
    /// Total SER under eq. (4).
    pub ser: f64,
    /// A 95% sampling interval on `ser` (Monte-Carlo only).
    pub ser_ci: Option<(f64, f64)>,
    /// Per-gate logic-masking estimates `obs(g, n)`, indexed by
    /// [`GateId`] (registers carry their driver's value; gates the
    /// engine cannot see — e.g. rate-0 sites under Monte-Carlo —
    /// hold 0).
    pub obs: Vec<f64>,
    /// Per-gate latch probabilities `obs(g, n) · |ELW(g)|/Φ`,
    /// indexed by [`GateId`] — the per-site quantity the hardening
    /// advisor cross-scores.
    pub site_p: Vec<f64>,
    /// Clock period used.
    pub phi: i64,
    /// Engine diagnostics (threads, audits, breaker activity).
    pub report: EngineReport,
}

impl SerEstimate {
    /// Builds an estimate from a deterministic engine's [`SerReport`].
    pub fn from_report(engine: EngineKind, report: &SerReport) -> Self {
        let site_p = report
            .obs
            .iter()
            .enumerate()
            .map(|(i, &o)| o * report.elw_size[i] as f64 / report.phi as f64)
            .collect();
        Self {
            engine,
            ser: report.ser,
            ser_ci: None,
            obs: report.obs.clone(),
            site_p,
            phi: report.phi,
            report: report.engine,
        }
    }

    /// The latch probability of one gate.
    pub fn site_p(&self, gate: GateId) -> f64 {
        self.site_p[gate.index()]
    }
}

/// A source of [`SerEstimate`]s — the one front door over all four
/// engines. Implementations must be pure functions of `(circuit,
/// config)` so estimates are reproducible and cacheable.
pub trait SerEstimator {
    /// Which engine this estimator runs.
    fn kind(&self) -> EngineKind;

    /// Estimates the circuit's SER under `config`.
    ///
    /// # Errors
    ///
    /// [`EstimateError::Retime`] when the circuit cannot be modeled,
    /// [`EstimateError::TooLarge`] when an exhaustive engine is asked
    /// for an infeasibly large enumeration.
    fn estimate(&self, circuit: &Circuit, config: &SerConfig)
        -> Result<SerEstimate, EstimateError>;
}

/// The analytic ODC engine behind the [`SerEstimator`] front door.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticEstimator;

impl SerEstimator for AnalyticEstimator {
    fn kind(&self) -> EngineKind {
        EngineKind::Analytic
    }

    fn estimate(
        &self,
        circuit: &Circuit,
        config: &SerConfig,
    ) -> Result<SerEstimate, EstimateError> {
        let report = analyze(circuit, config)?;
        Ok(SerEstimate::from_report(EngineKind::Analytic, &report))
    }
}

/// The propagation-probability engine behind the front door.
#[derive(Debug, Clone, Copy, Default)]
pub struct PropProbEstimator;

impl SerEstimator for PropProbEstimator {
    fn kind(&self) -> EngineKind {
        EngineKind::PropProb
    }

    fn estimate(
        &self,
        circuit: &Circuit,
        config: &SerConfig,
    ) -> Result<SerEstimate, EstimateError> {
        let report = propprob_report(circuit, config)?;
        Ok(SerEstimate::from_report(EngineKind::PropProb, &report))
    }
}

/// The exhaustive-enumeration oracle behind the front door.
#[derive(Debug, Clone, Copy)]
pub struct ExactEstimator {
    /// Cap on `R + I·n` source bits (default
    /// [`DEFAULT_MAX_SOURCE_BITS`]).
    pub max_source_bits: u32,
}

impl Default for ExactEstimator {
    fn default() -> Self {
        Self {
            max_source_bits: DEFAULT_MAX_SOURCE_BITS,
        }
    }
}

impl SerEstimator for ExactEstimator {
    fn kind(&self) -> EngineKind {
        EngineKind::Exact
    }

    fn estimate(
        &self,
        circuit: &Circuit,
        config: &SerConfig,
    ) -> Result<SerEstimate, EstimateError> {
        let report = exact_report(circuit, config, self.max_source_bits)?;
        Ok(SerEstimate::from_report(EngineKind::Exact, &report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn engine_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.name().parse::<EngineKind>().unwrap(), kind);
        }
        assert!("warp-drive".parse::<EngineKind>().is_err());
        assert_eq!("mc".parse::<EngineKind>().unwrap(), EngineKind::MonteCarlo);
    }

    #[test]
    fn deterministic_engines_estimate_the_sample() {
        let c = samples::s27_like();
        let cfg = SerConfig::small(20);
        for est in [&AnalyticEstimator as &dyn SerEstimator, &PropProbEstimator] {
            let e = est.estimate(&c, &cfg).unwrap();
            assert_eq!(e.engine, est.kind());
            assert!(e.ser > 0.0, "{}", e.engine);
            assert!(e.ser_ci.is_none());
            assert_eq!(e.obs.len(), c.len());
            assert_eq!(e.site_p.len(), c.len());
            // site_p is obs damped by the timing factor.
            for i in 0..c.len() {
                assert!(e.site_p[i] <= e.obs[i] + 1e-12, "{}: site {i}", e.engine);
            }
        }
    }

    #[test]
    fn exact_estimator_respects_its_cap() {
        let c = samples::s27_like();
        let cfg = SerConfig {
            sim: crate::sim::SimConfig {
                frames: 2,
                ..crate::sim::SimConfig::small()
            },
            ..SerConfig::small(20)
        };
        let ok = ExactEstimator::default().estimate(&c, &cfg).unwrap();
        assert!(ok.ser > 0.0);
        let err = ExactEstimator { max_source_bits: 4 }
            .estimate(&c, &cfg)
            .unwrap_err();
        assert!(matches!(err, EstimateError::TooLarge { .. }), "{err}");
    }
}
