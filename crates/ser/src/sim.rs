//! Bit-parallel sequential logic simulation with time-frame expansion.
//!
//! The circuit is simulated for a warm-up period (to reach the "steady
//! operational state" the paper mentions) and then for `n` recorded
//! time frames. Registers carry their signature from frame to frame;
//! within a frame they act as wires of the expanded circuit.

use netlist::rng::Xoshiro256;
use netlist::{Circuit, GateId, GateKind};

use crate::signature::{eval_gate, Signature};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Number of random vectors `K` per frame (multiple of 64; the
    /// paper's analyses use a few thousand).
    pub num_vectors: usize,
    /// Number of recorded time frames `n` (the paper uses 15).
    pub frames: usize,
    /// Warm-up cycles simulated before recording.
    pub warmup: usize,
    /// PRNG seed for inputs and the initial state.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_vectors: 2048,
            frames: 15,
            warmup: 16,
            seed: 0xC0FFEE,
        }
    }
}

impl SimConfig {
    /// A light-weight configuration for unit tests.
    pub fn small() -> Self {
        Self {
            num_vectors: 256,
            frames: 6,
            warmup: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// The recorded signatures of an `n`-frame expanded simulation.
///
/// `value(frame, gate)` is the signature at the gate's output during
/// that frame; register outputs hold the state captured at the end of
/// the previous frame.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    config: SimConfig,
    num_gates: usize,
    /// `frames × gates` signatures, frame-major.
    values: Vec<Signature>,
}

impl FrameTrace {
    /// Simulates `circuit` under `config`.
    pub fn simulate(circuit: &Circuit, config: SimConfig) -> Self {
        let bits = config.num_vectors;
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let n = circuit.len();

        // Register state: random initial values, then warm up.
        let mut state: Vec<Signature> = circuit
            .registers()
            .iter()
            .map(|_| Signature::random(bits, &mut rng))
            .collect();

        let mut frame_values: Vec<Signature> = vec![Signature::zeros(bits); n];
        for _ in 0..config.warmup {
            step(circuit, bits, &mut rng, &mut state, &mut frame_values);
        }

        let mut values = Vec::with_capacity(config.frames * n);
        for _ in 0..config.frames {
            step(circuit, bits, &mut rng, &mut state, &mut frame_values);
            values.extend(frame_values.iter().cloned());
        }
        Self {
            config,
            num_gates: n,
            values,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Signature of `gate` during `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= frames`.
    pub fn value(&self, frame: usize, gate: GateId) -> &Signature {
        assert!(frame < self.config.frames, "frame out of range");
        &self.values[frame * self.num_gates + gate.index()]
    }

    /// Number of recorded frames.
    pub fn frames(&self) -> usize {
        self.config.frames
    }

    /// Signal activity of a gate: fraction of ones across all frames.
    pub fn activity(&self, gate: GateId) -> f64 {
        let total: u64 = (0..self.config.frames)
            .map(|f| self.value(f, gate).count_ones() as u64)
            .sum();
        total as f64 / (self.config.frames * self.config.num_vectors) as f64
    }
}

/// Advances the circuit by one clock cycle: fresh random inputs,
/// combinational evaluation, register update.
fn step(
    circuit: &Circuit,
    bits: usize,
    rng: &mut Xoshiro256,
    state: &mut [Signature],
    values: &mut [Signature],
) {
    // Present register state first (consumed by combinational gates).
    for (si, &reg) in circuit.registers().iter().enumerate() {
        values[reg.index()] = state[si].clone();
    }
    for &pi in circuit.inputs() {
        values[pi.index()] = Signature::random(bits, rng);
    }
    for &g in circuit.topo_order() {
        let gate = circuit.gate(g);
        match gate.kind() {
            GateKind::Input => continue,
            _ => {
                let fanins: Vec<&Signature> =
                    gate.fanins().iter().map(|&f| &values[f.index()]).collect();
                values[g.index()] = eval_gate(gate.kind(), &fanins, bits);
            }
        }
    }
    // Capture next state.
    for (si, &reg) in circuit.registers().iter().enumerate() {
        let d = circuit.gate(reg).fanins()[0];
        state[si] = values[d.index()].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, CircuitBuilder};

    #[test]
    fn deterministic_for_same_seed() {
        let c = samples::s27_like();
        let a = FrameTrace::simulate(&c, SimConfig::small());
        let b = FrameTrace::simulate(&c, SimConfig::small());
        for f in 0..a.frames() {
            for (id, _) in c.iter() {
                assert_eq!(a.value(f, id), b.value(f, id));
            }
        }
    }

    #[test]
    fn combinational_consistency_within_frames() {
        let c = samples::s27_like();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        // Every gate's recorded signature equals its function applied to
        // its fanins' recorded signatures (registers excepted).
        for f in 0..t.frames() {
            for (id, gate) in c.iter() {
                if matches!(gate.kind(), GateKind::Input | GateKind::Dff) {
                    continue;
                }
                let fanins: Vec<&Signature> =
                    gate.fanins().iter().map(|&x| t.value(f, x)).collect();
                let expect = eval_gate(gate.kind(), &fanins, t.config().num_vectors);
                assert_eq!(t.value(f, id), &expect, "{} frame {f}", gate.name());
            }
        }
    }

    #[test]
    fn registers_delay_by_one_frame() {
        let c = samples::s27_like();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        for f in 1..t.frames() {
            for &reg in c.registers() {
                let d = c.gate(reg).fanins()[0];
                assert_eq!(
                    t.value(f, reg),
                    t.value(f - 1, d),
                    "register {} at frame {f}",
                    c.gate(reg).name()
                );
            }
        }
    }

    #[test]
    fn constants_hold_their_value() {
        let mut b = CircuitBuilder::new("c");
        b.input("a");
        b.constant("one", true).unwrap();
        b.gate("x", GateKind::And, &["a", "one"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let one = c.find("one").unwrap();
        for f in 0..t.frames() {
            assert_eq!(
                t.value(f, one).count_ones() as usize,
                t.config().num_vectors
            );
        }
        // x equals a.
        let a = c.find("a").unwrap();
        let x = c.find("x").unwrap();
        for f in 0..t.frames() {
            assert_eq!(t.value(f, a), t.value(f, x));
        }
    }

    #[test]
    fn inputs_have_half_density() {
        let c = samples::s27_like();
        let t = FrameTrace::simulate(&c, SimConfig::default());
        for &pi in c.inputs() {
            let act = t.activity(pi);
            assert!((0.45..0.55).contains(&act), "activity {act}");
        }
    }
}
