//! Bit-parallel sequential logic simulation with time-frame expansion,
//! arena-backed and levelized.
//!
//! The circuit is simulated for a warm-up period (to reach the "steady
//! operational state" the paper mentions) and then for `n` recorded
//! time frames. Registers carry their signature from frame to frame;
//! within a frame they act as wires of the expanded circuit.
//!
//! # Engine
//!
//! Signatures live in one flat [`SignatureArena`] (`frames × gates ×
//! words` of `u64`) instead of per-gate heap `Signature`s, and gates
//! are evaluated level by level in the circuit's
//! [`Levelization`](netlist::Levelization) slot order. Because every
//! level is a contiguous slot range whose fanins all sit in lower
//! slots, `split_at_mut` hands each level out as a disjoint mutable
//! slice while all earlier levels stay readable — which is how the
//! multi-threaded path (`SimConfig::threads`, `SER_THREADS`)
//! partitions a level across `std::thread::scope` workers without any
//! `unsafe`.
//!
//! # Determinism and the bit-identity oracle
//!
//! The parallel engine is bit-for-bit identical to the scalar
//! reference in [`crate::scalar`]: all gate functions are exact
//! bitwise operations, workers write disjoint slots, and every RNG
//! draw (initial register state, per-frame inputs) happens serially in
//! the original order before any worker starts. Three mechanisms
//! enforce this instead of assuming it:
//!
//! * in debug builds, every parallel level is re-evaluated serially
//!   and `debug_assert!`-compared in-loop;
//! * in all builds, one sampled level per recorded frame is audited
//!   the same way ([`EngineReport::audited_layers`]);
//! * an audit mismatch trips a circuit breaker: the run is discarded,
//!   recomputed with the scalar engine, and the trip is recorded
//!   ([`EngineReport::trips`], [`EngineReport::scalar_fallback`]) so
//!   the supervisor's degradation report can surface it.

use netlist::parallel;
use netlist::rng::Xoshiro256;
use netlist::{Circuit, GateId, GateKind, Levelization};

use crate::arena::{SigRef, SignatureArena};
use crate::scalar::ScalarTrace;
use crate::signature::eval_gate_words;

/// Magic seed that makes a multi-threaded simulation deliberately
/// corrupt one worker's output in the audited layer of frame 0 —
/// a test hook for the circuit-breaker fallback path. Chosen as a
/// constant (rather than a global flag) so concurrently running tests
/// cannot poison each other.
#[doc(hidden)]
pub const SABOTAGE_SIM_SEED: u64 = 0x5AB0_7A6E_0051;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Number of random vectors `K` per frame (multiple of 64; the
    /// paper's analyses use a few thousand).
    pub num_vectors: usize,
    /// Number of recorded time frames `n` (the paper uses 15).
    pub frames: usize,
    /// Warm-up cycles simulated before recording.
    pub warmup: usize,
    /// PRNG seed for inputs and the initial state.
    pub seed: u64,
    /// Worker threads for the levelized passes: explicit count, or 0
    /// to resolve via `SER_THREADS` / available parallelism (see
    /// [`netlist::parallel::resolve_workers`]). The result is
    /// bit-identical for every thread count.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_vectors: 2048,
            frames: 15,
            warmup: 16,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

impl SimConfig {
    /// A light-weight configuration for unit tests.
    pub fn small() -> Self {
        Self {
            num_vectors: 256,
            frames: 6,
            warmup: 4,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// What the arena engine did on a run: thread count, audit volume and
/// circuit-breaker activity. Clean runs have `trips == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Resolved worker count used for the levelized passes.
    pub threads: usize,
    /// Sampled layers re-verified against the serial evaluation.
    pub audited_layers: u64,
    /// Audit mismatches (each one triggered a scalar fallback).
    pub trips: u64,
    /// Whether any result was recomputed by the scalar engine.
    pub scalar_fallback: bool,
}

impl EngineReport {
    /// Combines two reports (sim + ODC) into one.
    pub fn merged(self, other: EngineReport) -> EngineReport {
        EngineReport {
            threads: self.threads.max(other.threads),
            audited_layers: self.audited_layers + other.audited_layers,
            trips: self.trips + other.trips,
            scalar_fallback: self.scalar_fallback || other.scalar_fallback,
        }
    }

    /// Whether the parallel engine ran without breaker activity.
    pub fn is_clean(&self) -> bool {
        self.trips == 0 && !self.scalar_fallback
    }
}

/// Per-slot evaluation metadata in levelization slot order: gate kinds
/// and flattened fanin slot lists, plus the register wiring. Shared by
/// the forward simulator, the exact fault injector and the equivalence
/// checker.
#[derive(Debug)]
pub(crate) struct EvalPlan {
    /// Gate kind per slot.
    pub kinds: Vec<GateKind>,
    /// `fanin_slots[fanin_offsets[s]..fanin_offsets[s + 1]]` are the
    /// fanin slots of slot `s`.
    pub fanin_offsets: Vec<u32>,
    /// Flattened fanin slots.
    pub fanin_slots: Vec<u32>,
    /// Per register (in `registers()` order): the slot of its D fanin.
    pub reg_d_slots: Vec<usize>,
    /// Slots of primary-output markers (in `outputs()` order).
    pub output_slots: Vec<usize>,
    /// Number of registers (slots `0..num_registers`).
    pub num_registers: usize,
    /// Number of primary inputs (slots `num_registers..+num_inputs`).
    pub num_inputs: usize,
    /// End of the level-0 slot range.
    pub num_sources: usize,
}

impl EvalPlan {
    pub(crate) fn new(circuit: &Circuit, levels: &Levelization) -> Self {
        let n = circuit.len();
        let mut kinds = Vec::with_capacity(n);
        let mut fanin_offsets = Vec::with_capacity(n + 1);
        let mut fanin_slots = Vec::new();
        fanin_offsets.push(0);
        for slot in 0..n {
            let id = levels.gate_at(slot);
            let gate = circuit.gate(id);
            kinds.push(gate.kind());
            for &f in gate.fanins() {
                fanin_slots.push(levels.slot_of(f) as u32);
            }
            fanin_offsets.push(fanin_slots.len() as u32);
        }
        let reg_d_slots = circuit
            .registers()
            .iter()
            .map(|&q| levels.slot_of(circuit.gate(q).fanins()[0]))
            .collect();
        let output_slots = circuit
            .outputs()
            .iter()
            .map(|&po| levels.slot_of(po))
            .collect();
        Self {
            kinds,
            fanin_offsets,
            fanin_slots,
            reg_d_slots,
            output_slots,
            num_registers: circuit.num_registers(),
            num_inputs: circuit.inputs().len(),
            num_sources: levels.level_slots(0).end,
        }
    }

    #[inline]
    pub(crate) fn fanins_of(&self, slot: usize) -> &[u32] {
        &self.fanin_slots[self.fanin_offsets[slot] as usize..self.fanin_offsets[slot + 1] as usize]
    }
}

/// Serially evaluates slots `lo..hi` (one level, or a chunk of one),
/// reading fanins from `prev` (the words of slots `0..lo`) and writing
/// into `cur` (the words of slots `lo..hi`).
pub(crate) fn eval_slots(plan: &EvalPlan, wps: usize, prev: &[u64], cur: &mut [u64], lo: usize) {
    let mut fanins: Vec<&[u64]> = Vec::with_capacity(8);
    let slots = cur.len() / wps;
    for i in 0..slots {
        let s = lo + i;
        fanins.clear();
        for &f in plan.fanins_of(s) {
            let off = f as usize * wps;
            fanins.push(&prev[off..off + wps]);
        }
        eval_gate_words(plan.kinds[s], &fanins, &mut cur[i * wps..(i + 1) * wps]);
    }
}

/// Evaluates one level of `frame` in place, fanning the level across
/// `workers` scoped threads when it is large enough. `sabotage`
/// deliberately corrupts the first worker's chunk (test hook).
pub(crate) fn eval_level(
    plan: &EvalPlan,
    wps: usize,
    frame: &mut [u64],
    lo: usize,
    hi: usize,
    workers: usize,
    sabotage: bool,
) {
    let (prev, rest) = frame.split_at_mut(lo * wps);
    let cur = &mut rest[..(hi - lo) * wps];
    let n = hi - lo;
    let workers = parallel::clamp_workers(workers, n);
    if workers <= 1 {
        eval_slots(plan, wps, prev, cur, lo);
        if sabotage {
            cur[0] ^= 1;
        }
        return;
    }
    let chunk_slots = n.div_ceil(workers);
    let prev: &[u64] = prev;
    std::thread::scope(|scope| {
        for (ci, chunk) in cur.chunks_mut(chunk_slots * wps).enumerate() {
            let start = lo + ci * chunk_slots;
            scope.spawn(move || {
                eval_slots(plan, wps, prev, chunk, start);
                if sabotage && ci == 0 {
                    chunk[0] ^= 1;
                }
            });
        }
    });
}

/// Deterministically samples the level to audit for a frame: `None`
/// when the circuit has no combinational level to check.
fn audit_level(frame: usize, num_levels: usize) -> Option<usize> {
    if num_levels <= 1 {
        return None;
    }
    // Weyl-style stride so successive frames visit different levels.
    Some(1 + (frame.wrapping_mul(0x9E37_79B9)) % (num_levels - 1))
}

/// Re-evaluates one level serially and compares it with what the
/// (possibly parallel) pass wrote. Returns `true` when identical.
fn verify_level(plan: &EvalPlan, wps: usize, frame: &[u64], lo: usize, hi: usize) -> bool {
    let mut check = vec![0u64; (hi - lo) * wps];
    eval_slots(plan, wps, &frame[..lo * wps], &mut check, lo);
    frame[lo * wps..hi * wps] == check[..]
}

/// The recorded signatures of an `n`-frame expanded simulation.
///
/// `value(frame, gate)` is the signature at the gate's output during
/// that frame; register outputs hold the state captured at the end of
/// the previous frame. Values live in a [`SignatureArena`] in
/// levelization slot order; `value` translates gate ids transparently.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    config: SimConfig,
    levels: Levelization,
    arena: SignatureArena,
    engine: EngineReport,
}

impl FrameTrace {
    /// Simulates `circuit` under `config`.
    pub fn simulate(circuit: &Circuit, config: SimConfig) -> Self {
        let bits = config.num_vectors;
        assert!(config.frames > 0, "at least one recorded frame required");
        let levels = circuit.levelize();
        let plan = EvalPlan::new(circuit, &levels);
        let threads = parallel::resolve_workers(config.threads);
        let sabotage = config.seed == SABOTAGE_SIM_SEED && threads > 1;
        let wps = bits / 64;
        let slots = levels.num_gates();
        let num_levels = levels.num_levels();
        let mut engine = EngineReport {
            threads,
            ..EngineReport::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let mut arena = SignatureArena::new(config.frames, slots, bits);

        // Initial register state: same draw order as the scalar engine
        // (register-major, words in ascending order).
        let mut state = vec![0u64; plan.num_registers * wps];
        for w in state.iter_mut() {
            *w = rng.next_u64();
        }

        let mut warm = vec![0u64; slots * wps];
        for _ in 0..config.warmup {
            step(
                &plan, &levels, wps, &mut rng, &mut state, &mut warm, threads, None,
            );
        }

        let mut tripped = false;
        for f in 0..config.frames {
            let sab_level = if sabotage && f == 0 {
                audit_level(f, num_levels)
            } else {
                None
            };
            step(
                &plan,
                &levels,
                wps,
                &mut rng,
                &mut state,
                arena.frame_mut(f),
                threads,
                sab_level,
            );
            if threads > 1 {
                if let Some(al) = audit_level(f, num_levels) {
                    engine.audited_layers += 1;
                    let r = levels.level_slots(al);
                    if !verify_level(&plan, wps, arena.frame(f), r.start, r.end) {
                        engine.trips += 1;
                        tripped = true;
                        break;
                    }
                }
            }
        }

        if tripped {
            // Circuit breaker: discard everything and recompute with
            // the scalar reference engine.
            let scalar = ScalarTrace::simulate(circuit, config);
            for f in 0..config.frames {
                for (id, _) in circuit.iter() {
                    arena
                        .sig_mut(f, levels.slot_of(id))
                        .copy_from_slice(scalar.value(f, id).as_words());
                }
            }
            engine.scalar_fallback = true;
        }

        Self {
            config,
            levels,
            arena,
            engine,
        }
    }

    /// Planning estimate (in bytes) of the simulation data plane for
    /// `circuit` under `config`: the per-frame chunked
    /// [`SignatureArena`] plus the transient working buffers (warm-up
    /// frame, register state) and the ODC pass's equally-sized mask
    /// buffer. The solver's `SolveBudget` memory caps check this
    /// *before* any allocation happens, so an over-budget instance is
    /// a structured error instead of an OOM abort.
    pub fn data_plane_bytes(circuit: &Circuit, config: &SimConfig) -> usize {
        let slots = circuit.len();
        let bits = config.num_vectors;
        let wps = bits / 64;
        let word = std::mem::size_of::<u64>();
        let arena = SignatureArena::required_bytes(config.frames.max(1), slots, bits.max(64));
        // One warm-up frame + one ODC mask frame, plus two register
        // rows (state carry and next-frame register ODCs).
        let working = 2usize
            .saturating_mul(slots.saturating_add(circuit.num_registers()))
            .saturating_mul(wps)
            .saturating_mul(word);
        arena.saturating_add(working)
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Signature of `gate` during `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= frames`.
    pub fn value(&self, frame: usize, gate: GateId) -> SigRef<'_> {
        assert!(frame < self.config.frames, "frame out of range");
        self.arena.sig(frame, self.levels.slot_of(gate))
    }

    /// Number of recorded frames.
    pub fn frames(&self) -> usize {
        self.config.frames
    }

    /// Signal activity of a gate: fraction of ones across all frames.
    pub fn activity(&self, gate: GateId) -> f64 {
        let total: u64 = (0..self.config.frames)
            .map(|f| self.value(f, gate).count_ones() as u64)
            .sum();
        total as f64 / (self.config.frames * self.config.num_vectors) as f64
    }

    /// Engine diagnostics: thread count, audits and breaker activity.
    pub fn engine(&self) -> &EngineReport {
        &self.engine
    }

    /// The levelization the arena is laid out by.
    pub(crate) fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// The raw signature arena.
    pub(crate) fn arena(&self) -> &SignatureArena {
        &self.arena
    }
}

/// Advances the circuit by one clock cycle: fresh random inputs,
/// levelized combinational evaluation, register update.
#[allow(clippy::too_many_arguments)]
fn step(
    plan: &EvalPlan,
    levels: &Levelization,
    wps: usize,
    rng: &mut Xoshiro256,
    state: &mut [u64],
    frame: &mut [u64],
    threads: usize,
    sab_level: Option<usize>,
) {
    let r = plan.num_registers;
    let ni = plan.num_inputs;
    // Present register state first (consumed by combinational gates).
    frame[..r * wps].copy_from_slice(state);
    // Fresh random inputs, drawn serially in `inputs()` order.
    for w in frame[r * wps..(r + ni) * wps].iter_mut() {
        *w = rng.next_u64();
    }
    // Constants.
    for s in (r + ni)..plan.num_sources {
        let v = if plan.kinds[s] == GateKind::Const1 {
            u64::MAX
        } else {
            0
        };
        frame[s * wps..(s + 1) * wps].fill(v);
    }
    for l in 1..levels.num_levels() {
        let range = levels.level_slots(l);
        let sab = sab_level == Some(l);
        eval_level(plan, wps, frame, range.start, range.end, threads, sab);
        #[cfg(debug_assertions)]
        if threads > 1 && !sab && sab_level.is_none() {
            debug_assert!(
                verify_level(plan, wps, frame, range.start, range.end),
                "parallel level {l} diverged from serial evaluation"
            );
        }
    }
    // Capture next state.
    for (i, &d) in plan.reg_d_slots.iter().enumerate() {
        state[i * wps..(i + 1) * wps].copy_from_slice(&frame[d * wps..(d + 1) * wps]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::ScalarTrace;
    use crate::signature::{eval_gate, Signature};
    use netlist::{samples, CircuitBuilder};

    #[test]
    fn deterministic_for_same_seed() {
        let c = samples::s27_like();
        let a = FrameTrace::simulate(&c, SimConfig::small());
        let b = FrameTrace::simulate(&c, SimConfig::small());
        for f in 0..a.frames() {
            for (id, _) in c.iter() {
                assert_eq!(a.value(f, id), b.value(f, id));
            }
        }
    }

    #[test]
    fn combinational_consistency_within_frames() {
        let c = samples::s27_like();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        // Every gate's recorded signature equals its function applied to
        // its fanins' recorded signatures (registers excepted).
        for f in 0..t.frames() {
            for (id, gate) in c.iter() {
                if matches!(gate.kind(), GateKind::Input | GateKind::Dff) {
                    continue;
                }
                let fanins: Vec<Signature> = gate
                    .fanins()
                    .iter()
                    .map(|&x| t.value(f, x).to_signature())
                    .collect();
                let fanin_refs: Vec<&Signature> = fanins.iter().collect();
                let expect = eval_gate(gate.kind(), &fanin_refs, t.config().num_vectors);
                assert_eq!(t.value(f, id), expect, "{} frame {f}", gate.name());
            }
        }
    }

    #[test]
    fn registers_delay_by_one_frame() {
        let c = samples::s27_like();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        for f in 1..t.frames() {
            for &reg in c.registers() {
                let d = c.gate(reg).fanins()[0];
                assert_eq!(
                    t.value(f, reg),
                    t.value(f - 1, d),
                    "register {} at frame {f}",
                    c.gate(reg).name()
                );
            }
        }
    }

    #[test]
    fn constants_hold_their_value() {
        let mut b = CircuitBuilder::new("c");
        b.input("a");
        b.constant("one", true).unwrap();
        b.gate("x", GateKind::And, &["a", "one"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let one = c.find("one").unwrap();
        for f in 0..t.frames() {
            assert_eq!(
                t.value(f, one).count_ones() as usize,
                t.config().num_vectors
            );
        }
        // x equals a.
        let a = c.find("a").unwrap();
        let x = c.find("x").unwrap();
        for f in 0..t.frames() {
            assert_eq!(t.value(f, a), t.value(f, x));
        }
    }

    #[test]
    fn inputs_have_half_density() {
        let c = samples::s27_like();
        let t = FrameTrace::simulate(&c, SimConfig::default());
        for &pi in c.inputs() {
            let act = t.activity(pi);
            assert!((0.45..0.55).contains(&act), "activity {act}");
        }
    }

    #[test]
    fn matches_scalar_engine_bit_for_bit() {
        for (name, c) in [
            ("s27", samples::s27_like()),
            ("fig1", samples::fig1_like()),
            ("pipeline", samples::pipeline(7, 2)),
        ] {
            let cfg = SimConfig::small();
            let arena = FrameTrace::simulate(&c, cfg);
            let scalar = ScalarTrace::simulate(&c, cfg);
            for f in 0..cfg.frames {
                for (id, _) in c.iter() {
                    assert_eq!(
                        arena.value(f, id).words(),
                        scalar.value(f, id).as_words(),
                        "{name}: {id} frame {f}"
                    );
                }
            }
            assert!(arena.engine().is_clean());
        }
    }

    #[test]
    fn threaded_simulation_is_bit_identical() {
        let c = samples::fig1_like();
        let base = FrameTrace::simulate(&c, SimConfig::small());
        for threads in [2, 3, 7] {
            let t = FrameTrace::simulate(
                &c,
                SimConfig {
                    threads,
                    ..SimConfig::small()
                },
            );
            assert_eq!(t.engine().threads, threads);
            assert!(t.engine().is_clean(), "threads={threads}");
            for f in 0..t.frames() {
                for (id, _) in c.iter() {
                    assert_eq!(base.value(f, id), t.value(f, id), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn sabotaged_worker_trips_breaker_and_falls_back() {
        let c = samples::fig1_like();
        let cfg = SimConfig {
            seed: SABOTAGE_SIM_SEED,
            threads: 2,
            ..SimConfig::small()
        };
        let t = FrameTrace::simulate(&c, cfg);
        assert_eq!(t.engine().trips, 1, "sabotage must trip the audit");
        assert!(t.engine().scalar_fallback);
        // The fallback result is the scalar engine's, bit for bit.
        let scalar = ScalarTrace::simulate(&c, cfg);
        for f in 0..cfg.frames {
            for (id, _) in c.iter() {
                assert_eq!(t.value(f, id).words(), scalar.value(f, id).as_words());
            }
        }
        // The same seed without threads is not sabotaged.
        let serial = FrameTrace::simulate(&c, SimConfig { threads: 1, ..cfg });
        assert!(serial.engine().is_clean());
        for f in 0..cfg.frames {
            for (id, _) in c.iter() {
                assert_eq!(t.value(f, id), serial.value(f, id));
            }
        }
    }
}
