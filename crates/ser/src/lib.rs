//! # ser_engine — soft error rate analysis for sequential circuits
//!
//! Published as the package `minobswin-ser`; the library (and thus the
//! import path in every example below) is `ser_engine`, and its
//! workspace siblings are imported as `netlist`, `retime`, `minobswin`
//! and `faultsim` — the doctests compile against these actual lib
//! names, not the package names.
//!
//! Substrate crate of the **minobswin** suite (a reproduction of
//! Lu & Zhou, *Retiming for Soft Error Minimization Under Error-Latching
//! Window Constraints*, DATE 2013). It implements the paper's §II SER
//! model end to end:
//!
//! * [`Signature`] and [`sim::FrameTrace`]: bit-parallel logic
//!   simulation with time-frame expansion (refs \[11\], \[17\], \[21\]),
//! * [`odc::Observability`]: ODC-mask observabilities `obs(g, n)` with
//!   an exact fault-injection validator,
//! * [`IntervalSet`] and [`elw::compute_elws`]: exact error-latching
//!   windows, eq. (3) (ref \[15\]),
//! * [`ErrorRateModel`]: raw per-gate rates `err(g)` (synthetic
//!   SPICE-characterization stand-in for ref \[25\]; see DESIGN.md),
//! * [`analyze`]: the full SER of a sequential circuit, eq. (4),
//! * [`propprob::PropProb`]: an independent propagation-probability
//!   estimator (Asadi & Tahoori style) of the same quantity,
//! * [`exact::exact_report`]: an exhaustive truth-table oracle for
//!   small circuits,
//! * [`SerEstimator`]: the one trait all estimation engines (including
//!   `faultsim`'s Monte-Carlo engine) stand behind.
//!
//! # Examples
//!
//! ```
//! use netlist::samples;
//! use ser_engine::{analyze, SerConfig};
//! # fn main() -> Result<(), retime::RetimeError> {
//! let circuit = samples::s27_like();
//! let report = analyze(&circuit, &SerConfig::small(20))?;
//! println!("SER = {:.3e}", report.ser);
//! assert!(report.ser > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod arena;
pub mod elw;
pub mod equiv;
mod error_rate;
pub mod estimate;
pub mod exact;
pub mod odc;
pub mod propprob;
pub mod scalar;
mod signature;
pub mod sim;

pub use analysis::{
    analyze, analyze_with_observability, register_driver, report_from_observabilities,
    vertex_observabilities, SerConfig, SerReport,
};
pub use arena::{SigRef, SignatureArena};
pub use elw::IntervalSet;
pub use error_rate::ErrorRateModel;
pub use estimate::{
    AnalyticEstimator, EngineKind, EstimateError, ExactEstimator, PropProbEstimator, SerEstimate,
    SerEstimator,
};
pub use exact::{exact_feasible, exact_report, exact_source_bits, DEFAULT_MAX_SOURCE_BITS};
pub use odc::SABOTAGE_ODC_SEED;
pub use propprob::{
    propprob_report, propprob_report_with_trace, PropProb, SABOTAGE_ESTIMATE_SEED,
    SABOTAGE_PROP_SEED,
};
pub use signature::{eval_gate, signature_allocs, Signature};
pub use sim::{EngineReport, SABOTAGE_SIM_SEED};
