//! Flat signature storage: a `frames × slots × words` buffer replacing
//! the O(frames × gates) individual [`Signature`] heap allocations of
//! the original engine.
//!
//! # Layout invariant
//!
//! The arena is **frame-major, then slot, then word**:
//!
//! ```text
//! offset(frame, slot) = (frame * slots + slot) * words_per_sig
//! ```
//!
//! Physically the words are allocated **one chunk per frame** rather
//! than as a single contiguous block: at 50k gates × 2048 vectors × 15
//! frames the flat buffer is ~200 MB, and a monolithic allocation of
//! that size is both fragile (one contiguous region or abort) and
//! wasteful to grow. No engine code ever indexes across a frame
//! boundary — the simulator writes through [`frame_mut`]
//! (register carry lives in a separate state buffer) and the ODC pass
//! reads whole frames — so chunking is invisible behind the accessors.
//! [`SignatureArena::offset`] remains the *logical* flat offset;
//! [`SignatureArena::required_bytes`] and
//! [`SignatureArena::footprint_bytes`] make the footprint a number the
//! solve budget can check before allocation instead of an OOM abort.
//!
//! [`frame_mut`]: SignatureArena::frame_mut
//!
//! * `frame` is the recorded time frame (0-based),
//! * `slot` is a gate's position in the circuit's
//!   [`Levelization`](netlist::Levelization) *slot order* — NOT its
//!   [`GateId`](netlist::GateId). Level 0 (registers, then inputs,
//!   then constants) occupies the lowest slots and every level is a
//!   contiguous slot range, so `split_at_mut` on a frame hands a
//!   level out as one disjoint mutable slice while all lower levels
//!   stay immutably readable — the basis of the safe-Rust parallel
//!   evaluation (`#![forbid(unsafe_code)]` holds for this crate),
//! * `word` packs 64 simulation vectors, low bit of word 0 is
//!   vector 0 (same convention as [`Signature::as_words`]).
//!
//! `FrameTrace::values` in the original engine was frame-major too
//! (frame outer, gate inner), while the ODC pass walks gate-major
//! *within* one frame — the layout keeps each frame contiguous so
//! both access patterns stay within one `slots × words` window.
//! [`SignatureArena::locate`] is the inverse of
//! [`SignatureArena::offset`]; the unit tests below pin the
//! round-trip at the word-boundary corner cases.

use crate::signature::Signature;

/// Borrowed read-only view of one signature inside an arena (or any
/// word slice). All words are fully populated: the bit width is
/// `words.len() * 64`.
#[derive(Debug, Clone, Copy)]
pub struct SigRef<'a> {
    words: &'a [u64],
}

impl<'a> SigRef<'a> {
    /// Wraps a word slice.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words }
    }

    /// The underlying words (low bit of word 0 is vector 0).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Number of bits (`K`).
    pub fn len(&self) -> usize {
        self.words.len() * 64
    }

    /// Whether the view has zero bits.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fraction of set bits.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.len() as f64
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len());
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Copies the view into an owned [`Signature`].
    pub fn to_signature(&self) -> Signature {
        Signature::from_words(self.words.to_vec())
    }
}

impl PartialEq for SigRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words
    }
}

impl Eq for SigRef<'_> {}

impl PartialEq<Signature> for SigRef<'_> {
    fn eq(&self, other: &Signature) -> bool {
        self.words == other.as_words()
    }
}

impl PartialEq<SigRef<'_>> for Signature {
    fn eq(&self, other: &SigRef<'_>) -> bool {
        self.as_words() == other.words
    }
}

/// The `frames × slots × words` signature buffer, allocated one chunk
/// per frame. See the module docs for the layout invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureArena {
    chunks: Vec<Vec<u64>>,
    frames: usize,
    slots: usize,
    wps: usize,
}

impl SignatureArena {
    /// Allocates a zeroed arena.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a positive multiple of 64, or if
    /// `frames`/`slots` is zero.
    pub fn new(frames: usize, slots: usize, bits: usize) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(64),
            "bits must be a positive multiple of 64"
        );
        assert!(frames > 0 && slots > 0, "arena dimensions must be positive");
        let wps = bits / 64;
        Self {
            chunks: (0..frames).map(|_| vec![0u64; slots * wps]).collect(),
            frames,
            slots,
            wps,
        }
    }

    /// Bytes an arena of these dimensions will occupy (saturating) —
    /// the planning estimate the solve budget checks *before* the
    /// allocation happens.
    pub fn required_bytes(frames: usize, slots: usize, bits: usize) -> usize {
        frames
            .saturating_mul(slots)
            .saturating_mul(bits / 64)
            .saturating_mul(std::mem::size_of::<u64>())
    }

    /// Bytes of signature payload this arena holds.
    pub fn footprint_bytes(&self) -> usize {
        Self::required_bytes(self.frames, self.slots, self.wps * 64)
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Number of slots per frame.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Words per signature.
    pub fn words_per_sig(&self) -> usize {
        self.wps
    }

    /// Bits per signature (`K`).
    pub fn bits(&self) -> usize {
        self.wps * 64
    }

    /// Logical word offset of `(frame, slot)` — the layout invariant
    /// in executable form. (Within the per-frame chunk, the word
    /// offset is `offset(frame, slot) - offset(frame, 0)`.)
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `frame`/`slot` is out of range.
    pub fn offset(&self, frame: usize, slot: usize) -> usize {
        debug_assert!(frame < self.frames && slot < self.slots);
        (frame * self.slots + slot) * self.wps
    }

    /// Inverse of [`SignatureArena::offset`]: maps a logical word
    /// offset back to `(frame, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn locate(&self, offset: usize) -> (usize, usize) {
        assert!(
            offset < self.frames * self.slots * self.wps,
            "offset out of range"
        );
        let sig = offset / self.wps;
        (sig / self.slots, sig % self.slots)
    }

    /// Read-only view of one signature.
    pub fn sig(&self, frame: usize, slot: usize) -> SigRef<'_> {
        let o = slot * self.wps;
        SigRef::new(&self.chunks[frame][o..o + self.wps])
    }

    /// Mutable words of one signature.
    pub fn sig_mut(&mut self, frame: usize, slot: usize) -> &mut [u64] {
        let o = slot * self.wps;
        &mut self.chunks[frame][o..o + self.wps]
    }

    /// All words of one frame (`slots × words_per_sig`), slot-major.
    pub fn frame(&self, frame: usize) -> &[u64] {
        &self.chunks[frame]
    }

    /// Mutable words of one frame.
    pub fn frame_mut(&mut self, frame: usize) -> &mut [u64] {
        &mut self.chunks[frame]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_math_round_trips_at_word_boundaries() {
        // Deliberately awkward dimensions: wps > 1 so a signature
        // spans several words, slots not a power of two.
        let a = SignatureArena::new(3, 5, 192); // wps = 3
        for frame in 0..3 {
            for slot in 0..5 {
                let o = a.offset(frame, slot);
                // Start of the signature maps back exactly...
                assert_eq!(a.locate(o), (frame, slot));
                // ...and so does every interior word of it.
                for w in 1..a.words_per_sig() {
                    assert_eq!(a.locate(o + w), (frame, slot), "interior word {w}");
                }
            }
        }
        // The extreme corners.
        assert_eq!(a.locate(0), (0, 0));
        let last = a.offset(2, 4) + a.words_per_sig() - 1;
        assert_eq!(a.locate(last), (2, 4));
    }

    #[test]
    fn offsets_are_contiguous_frame_major() {
        let a = SignatureArena::new(2, 4, 128); // wps = 2
                                                // Next slot in the same frame is wps words later.
        assert_eq!(a.offset(0, 1), a.offset(0, 0) + 2);
        // Next frame starts right after the last slot of the previous.
        assert_eq!(a.offset(1, 0), a.offset(0, 3) + 2);
        // Frame slices tile the buffer exactly.
        assert_eq!(a.frame(0).len(), 4 * 2);
        assert_eq!(a.offset(1, 0), a.frame(0).len());
    }

    #[test]
    fn single_word_signatures() {
        // wps = 1: the tightest packing, offset == sig index.
        let a = SignatureArena::new(2, 3, 64);
        assert_eq!(a.offset(1, 2), 5);
        assert_eq!(a.locate(5), (1, 2));
    }

    #[test]
    fn sig_views_read_written_words() {
        let mut a = SignatureArena::new(2, 2, 128);
        a.sig_mut(1, 1).copy_from_slice(&[0xAB, 0xCD]);
        assert_eq!(a.sig(1, 1).words(), &[0xAB, 0xCD]);
        assert_eq!(a.sig(0, 0).count_ones(), 0);
        let s = a.sig(1, 1).to_signature();
        assert_eq!(a.sig(1, 1), s);
    }

    #[test]
    fn sigref_bit_and_density() {
        let words = [1u64 << 63, 1u64];
        let r = SigRef::new(&words);
        assert_eq!(r.len(), 128);
        assert!(r.bit(63));
        assert!(r.bit(64));
        assert!(!r.bit(0));
        assert_eq!(r.count_ones(), 2);
        assert!((r.density() - 2.0 / 128.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        SignatureArena::new(1, 1, 64).locate(1);
    }

    #[test]
    fn footprint_accounting_matches_dimensions() {
        let a = SignatureArena::new(3, 5, 192); // wps = 3
        assert_eq!(a.footprint_bytes(), 3 * 5 * 3 * 8);
        assert_eq!(
            SignatureArena::required_bytes(3, 5, 192),
            a.footprint_bytes()
        );
        // Saturates instead of overflowing on absurd dimensions.
        assert_eq!(
            SignatureArena::required_bytes(usize::MAX, usize::MAX, 128),
            usize::MAX
        );
    }

    #[test]
    fn frames_are_independent_chunks() {
        let mut a = SignatureArena::new(2, 2, 64);
        a.frame_mut(0).fill(u64::MAX);
        assert!(a.frame(1).iter().all(|&w| w == 0), "frame 1 untouched");
        assert_eq!(a.frame(0).len(), 2);
        assert_eq!(a.frame(1).len(), 2);
    }
}
