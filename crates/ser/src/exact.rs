//! Exhaustive ground-truth SER oracle for small circuits.
//!
//! Every estimator in this workspace approximates the logic-masking
//! term `obs(g, n)` somehow: the analytic engine composes ODC masks
//! (approximate under reconvergence), the propagation-probability
//! engine multiplies independence products, the Monte-Carlo engine
//! samples. This module removes the approximation entirely on circuits
//! small enough to afford it: it enumerates **all** assignments of the
//! expansion's source bits — initial register state plus one fresh
//! copy of every primary input per frame — and measures each gate's
//! observability by exact fault injection over the full truth table.
//!
//! With `R` registers, `I` inputs and `n` frames the enumeration has
//! `S = R + I·n` source bits and `2^S` vectors; [`exact_source_bits`]
//! and the `max_source_bits` cap (default
//! [`DEFAULT_MAX_SOURCE_BITS`]) keep it honest. The timing-masking
//! factor `|ELW(g)|/Φ` is already exact (interval arithmetic, eq. (3)),
//! so an [`exact_report`] is ground truth for the *whole* eq. (4)
//! model — the only quantity any other estimator can legitimately
//! disagree with it on is logic masking.
//!
//! The forward semantics deliberately reuse the public
//! [`eval_gate`](crate::eval_gate) kernel but none of the arena or
//! levelization machinery, keeping the oracle structurally independent
//! of the engines it judges.

use netlist::{Circuit, GateId, GateKind};

use crate::analysis::{report_from_observabilities, SerConfig, SerReport};
use crate::estimate::EstimateError;
use crate::signature::{eval_gate, Signature};
use crate::sim::EngineReport;

/// Default cap on `R + I·n` enumeration bits (2^20 ≈ 1M vectors).
pub const DEFAULT_MAX_SOURCE_BITS: u32 = 20;

/// `S = R + I·n`: the number of free source bits in the `n`-frame
/// expansion of `circuit`.
pub fn exact_source_bits(circuit: &Circuit, frames: usize) -> usize {
    circuit.num_registers() + circuit.inputs().len() * frames
}

/// Whether exhaustive enumeration of `circuit` over `frames` frames
/// fits under `max_source_bits`.
pub fn exact_feasible(circuit: &Circuit, frames: usize, max_source_bits: u32) -> bool {
    exact_source_bits(circuit, frames) <= max_source_bits as usize
}

/// The enumeration signature of source bit `j`: bit `v` of the
/// signature is `(v >> j) & 1`, the standard truth-table column. Below
/// 64 total vectors the 64-bit signature repeats the enumeration a
/// whole number of times, which leaves every density exact.
fn enum_signature(j: usize, bits: usize) -> Signature {
    let wps = bits / 64;
    let mut words = vec![0u64; wps];
    if j < 6 {
        let mut pattern = 0u64;
        for i in 0..64u64 {
            if (i >> j) & 1 == 1 {
                pattern |= 1 << i;
            }
        }
        words.fill(pattern);
    } else {
        for (w, word) in words.iter_mut().enumerate() {
            if (w * 64) >> j & 1 == 1 {
                *word = u64::MAX;
            }
        }
    }
    Signature::from_words(words)
}

/// The exhaustively enumerated nominal trace: per frame, per gate (by
/// [`GateId`] index), the gate's exact truth-table signature.
struct EnumTrace {
    bits: usize,
    frames: usize,
    values: Vec<Vec<Signature>>,
}

impl EnumTrace {
    fn simulate(circuit: &Circuit, frames: usize) -> Self {
        let s = exact_source_bits(circuit, frames);
        let bits = (1usize << s).max(64);
        let n = circuit.len();
        let r = circuit.num_registers();
        let mut values: Vec<Vec<Signature>> = Vec::with_capacity(frames);
        for f in 0..frames {
            let mut frame = vec![Signature::zeros(bits); n];
            // Sources: frame-0 register state takes bits 0..R, the
            // frame-f input copies take bits R + f·I ..
            for (ri, &q) in circuit.registers().iter().enumerate() {
                frame[q.index()] = if f == 0 {
                    enum_signature(ri, bits)
                } else {
                    let d = circuit.gate(q).fanins()[0];
                    values[f - 1][d.index()].clone()
                };
            }
            for (ii, &pi) in circuit.inputs().iter().enumerate() {
                frame[pi.index()] = enum_signature(r + f * circuit.inputs().len() + ii, bits);
            }
            for &id in circuit.topo_order() {
                let gate = circuit.gate(id);
                match gate.kind() {
                    GateKind::Input | GateKind::Dff => {}
                    kind => {
                        let fanins: Vec<&Signature> =
                            gate.fanins().iter().map(|&x| &frame[x.index()]).collect();
                        frame[id.index()] = eval_gate(kind, &fanins, bits);
                    }
                }
            }
            values.push(frame);
        }
        Self {
            bits,
            frames,
            values,
        }
    }
}

/// Resimulates the full window with `victim` flipped in frame 0 and
/// returns the exact detection density (primary outputs of every
/// frame, register inputs of the last frame).
fn inject(circuit: &Circuit, trace: &EnumTrace, victim: GateId) -> f64 {
    if circuit.gate(victim).kind() == GateKind::Output {
        return 1.0;
    }
    let bits = trace.bits;
    let mut detected = Signature::zeros(bits);
    let mut faulty: Vec<Signature> = Vec::new();
    let mut prev: Vec<Signature> = Vec::new();
    for f in 0..trace.frames {
        let nominal = &trace.values[f];
        if f == 0 {
            faulty = nominal.clone();
            faulty[victim.index()] = faulty[victim.index()].not();
        } else {
            std::mem::swap(&mut prev, &mut faulty);
            faulty.clone_from(nominal);
            for &q in circuit.registers() {
                let d = circuit.gate(q).fanins()[0];
                faulty[q.index()] = prev[d.index()].clone();
            }
        }
        for &id in circuit.topo_order() {
            let gate = circuit.gate(id);
            match gate.kind() {
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => {}
                kind => {
                    let fanins: Vec<&Signature> =
                        gate.fanins().iter().map(|&x| &faulty[x.index()]).collect();
                    let mut v = eval_gate(kind, &fanins, bits);
                    if f == 0 && id == victim {
                        v = v.not();
                    }
                    faulty[id.index()] = v;
                }
            }
        }
        for &po in circuit.outputs() {
            detected.or_assign(&faulty[po.index()].xor(&nominal[po.index()]));
        }
        if f == trace.frames - 1 {
            for &q in circuit.registers() {
                let d = circuit.gate(q).fanins()[0];
                detected.or_assign(&faulty[d.index()].xor(&nominal[d.index()]));
            }
        }
    }
    detected.count_ones() as f64 / bits as f64
}

/// Exact per-gate observabilities over the full `2^S` enumeration.
///
/// # Errors
///
/// [`EstimateError::TooLarge`] when `R + I·n` exceeds
/// `max_source_bits`.
pub fn exact_observability(
    circuit: &Circuit,
    frames: usize,
    max_source_bits: u32,
) -> Result<Vec<f64>, EstimateError> {
    let source_bits = exact_source_bits(circuit, frames);
    if source_bits > max_source_bits as usize {
        return Err(EstimateError::TooLarge {
            source_bits,
            cap: max_source_bits,
        });
    }
    let trace = EnumTrace::simulate(circuit, frames);
    Ok(circuit
        .iter()
        .map(|(id, _)| inject(circuit, &trace, id))
        .collect())
}

/// The full eq. (4) report with exact logic masking: ground truth for
/// every other estimator on circuits small enough to enumerate.
///
/// # Errors
///
/// [`EstimateError::TooLarge`] past the cap, or a wrapped
/// [`retime::RetimeError`] if the circuit cannot be modeled as a
/// retiming graph.
pub fn exact_report(
    circuit: &Circuit,
    config: &SerConfig,
    max_source_bits: u32,
) -> Result<SerReport, EstimateError> {
    let obs = exact_observability(circuit, config.sim.frames, max_source_bits)?;
    let engine = EngineReport {
        threads: 1,
        ..EngineReport::default()
    };
    report_from_observabilities(circuit, config, &obs, engine).map_err(EstimateError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::odc::exact_fault_injection;
    use crate::sim::SimConfig;
    use netlist::{samples, CircuitBuilder};

    #[test]
    fn enumeration_columns_have_exact_density() {
        for j in [0, 1, 5, 6, 8] {
            let sig = enum_signature(j, 1 << 10);
            assert_eq!(sig.count_ones() as usize, 1 << 9, "bit {j}");
        }
        // Sub-64 enumerations replicate and keep half density.
        let sig = enum_signature(2, 64);
        assert_eq!(sig.count_ones(), 32);
    }

    #[test]
    fn feasibility_gate() {
        let c = samples::s27_like();
        // 3 registers + 4 inputs × 2 frames = 11 bits.
        assert_eq!(exact_source_bits(&c, 2), 11);
        assert!(exact_feasible(&c, 2, 20));
        assert!(!exact_feasible(&c, 2, 10));
        let err = exact_observability(&c, 2, 10).unwrap_err();
        assert!(err.to_string().contains("11"), "{err}");
    }

    #[test]
    fn tree_circuit_matches_hand_computation() {
        // AND(a, b) → output: a is observable exactly when b = 1, which
        // is half the enumerated vectors.
        let mut b = CircuitBuilder::new("and");
        b.input("a");
        b.input("b2");
        b.gate("x", GateKind::And, &["a", "b2"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let obs = exact_observability(&c, 1, 20).unwrap();
        assert_eq!(obs[c.find("a").unwrap().index()], 0.5);
        assert_eq!(obs[c.find("b2").unwrap().index()], 0.5);
        assert_eq!(obs[c.find("x").unwrap().index()], 1.0);
    }

    #[test]
    fn reconvergent_xor_cancellation_is_exact() {
        // g fans out to two XOR paths that reconverge: flipping g flips
        // both XOR inputs, so the fault cancels exactly — obs(g) = 0.
        // (The propagation-probability estimator gets this wrong by
        // construction; the oracle must not.)
        let mut b = CircuitBuilder::new("cancel");
        b.input("a");
        b.input("b2");
        b.gate("g", GateKind::And, &["a", "b2"]).unwrap();
        b.gate("p", GateKind::Buf, &["g"]).unwrap();
        b.gate("q", GateKind::Buf, &["g"]).unwrap();
        b.gate("z", GateKind::Xor, &["p", "q"]).unwrap();
        b.output("z").unwrap();
        let c = b.build().unwrap();
        let obs = exact_observability(&c, 1, 20).unwrap();
        assert_eq!(obs[c.find("g").unwrap().index()], 0.0);
        // But each buffer alone is fully observable.
        assert_eq!(obs[c.find("p").unwrap().index()], 1.0);
    }

    #[test]
    fn sequential_oracle_agrees_with_sampled_injection_on_full_sampling() {
        // With the simulation drawing 2^S-plus vectors the sampled
        // exact injector converges toward the enumerated answer;
        // check loose agreement on the small sequential sample.
        let c = samples::s27_like();
        let frames = 2;
        let obs = exact_observability(&c, frames, 20).unwrap();
        let sampled = exact_fault_injection(
            &c,
            SimConfig {
                num_vectors: 4096,
                frames,
                warmup: 0,
                seed: 7,
                threads: 1,
            },
        );
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            let d = (obs[id.index()] - sampled[id.index()]).abs();
            assert!(
                d < 0.2,
                "{}: enumerated {} vs sampled {}",
                gate.name(),
                obs[id.index()],
                sampled[id.index()]
            );
        }
    }

    #[test]
    fn exact_report_assembles_eq4() {
        let c = samples::s27_like();
        let cfg = SerConfig {
            sim: SimConfig {
                frames: 2,
                ..SimConfig::small()
            },
            ..SerConfig::small(20)
        };
        let report = exact_report(&c, &cfg, 20).unwrap();
        assert!(report.ser > 0.0);
        assert!(report.ser <= report.ser_logic_only + 1e-12);
    }
}
